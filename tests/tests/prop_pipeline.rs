//! Property-based end-to-end tests: arbitrary generator configurations must
//! produce programs that compile, execute, and are soundly analyzed by every
//! configuration of Cut-Shortcut.

use csc_core::{run_analysis, Analysis, Budget, CscConfig};
use csc_interp::{check_recall, execute, InterpConfig};
use csc_workloads::GenConfig;
use proptest::prelude::*;

fn small_config() -> impl Strategy<Value = GenConfig> {
    (
        any::<u64>(),
        2usize..6,                           // data classes
        1usize..4,                           // entities
        1usize..4,                           // fields per entity
        1usize..4,                           // wrappers
        1usize..4,                           // selects
        1usize..3,                           // chains
        2usize..5,                           // chain depth
        1usize..4,                           // scenarios per kind
        0usize..4,                           // registry every (0 = off)
        (0.0f64..1.0, 0usize..3, 0usize..5), // factory prob / cycle groups / ring len
    )
        .prop_map(
            |(seed, data, ent, fields, wraps, sels, chains, depth, scen, reg, (fac, cyc, ring))| {
                GenConfig {
                    seed,
                    data_classes: data,
                    entities: ent,
                    fields_per_entity: fields,
                    wrappers: wraps,
                    selects: sels,
                    chains,
                    chain_depth: depth,
                    scenarios_per_kind: scen,
                    loop_iters: 2,
                    registry_every: reg,
                    factory_prob: fac,
                    cycle_groups: cyc,
                    ring_len: ring,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated program compiles, runs to completion, and every
    /// Cut-Shortcut configuration fully recalls the dynamic ground truth
    /// and stays within CI's result.
    #[test]
    fn generated_programs_sound_under_csc(cfg in small_config()) {
        let src = csc_workloads::generate(&cfg);
        let program = csc_frontend::compile(&src)
            .unwrap_or_else(|e| panic!("generated program must compile: {e}"));
        let trace = execute(&program, InterpConfig::default())
            .unwrap_or_else(|e| panic!("bounded execution: {e}"));
        let ci = run_analysis(&program, Analysis::Ci, Budget::unlimited());
        let ci_methods = ci.result.state.reachable_methods_projected();
        let ci_edges = ci.result.state.call_edges_projected();
        for cfg in [CscConfig::all(), CscConfig::doop(), CscConfig::only_container()] {
            let out = run_analysis(&program, Analysis::CutShortcutWith(cfg), Budget::unlimited());
            prop_assert!(out.completed());
            let methods = out.result.state.reachable_methods_projected();
            let edges = out.result.state.call_edges_projected();
            let report = check_recall(&trace, &methods, &edges);
            prop_assert!(report.full_recall(),
                "missed methods: {:?}, missed edges: {:?}",
                report.missed_methods, report.missed_edges);
            prop_assert!(methods.is_subset(&ci_methods));
            prop_assert!(edges.is_subset(&ci_edges));
        }
    }

    /// Conventional context sensitivity is likewise sound on arbitrary
    /// generated programs.
    #[test]
    fn generated_programs_sound_under_context_sensitivity(cfg in small_config()) {
        let src = csc_workloads::generate(&cfg);
        let program = csc_frontend::compile(&src).unwrap();
        let trace = execute(&program, InterpConfig::default()).unwrap();
        for a in [Analysis::KObj(2), Analysis::KType(2), Analysis::ZipperE, Analysis::CscHybrid] {
            let out = run_analysis(&program, a, Budget::unlimited());
            prop_assert!(out.completed());
            let report = check_recall(
                &trace,
                &out.result.state.reachable_methods_projected(),
                &out.result.state.call_edges_projected(),
            );
            prop_assert!(report.full_recall());
        }
    }
}
