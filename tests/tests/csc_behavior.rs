//! Behavioral tests for the Cut-Shortcut plugin: relay edges, the dynamic
//! `[CutPropLoad]` recursion, mixed-return soundness, swap methods, pattern
//! interaction, and Doop mode.

use csc_core::{run_analysis, Analysis, Budget, CscConfig};
use csc_ir::Program;

fn compile(src: &str) -> Program {
    csc_frontend::compile(src).expect("compiles")
}

fn pt_len(out: &csc_core::AnalysisOutcome<'_>, p: &Program, var: &str) -> usize {
    let v = p
        .method(p.entry())
        .vars()
        .iter()
        .copied()
        .find(|&v| p.var(v).name() == var)
        .unwrap_or_else(|| panic!("no var {var}"));
    out.result.state.pt_var_projected(v).len()
}

/// A getter whose return can also be a parameter default: the load part is
/// cut and shortcut precisely, the default flows through a relay edge —
/// both must arrive.
#[test]
fn relay_preserves_non_load_returns() {
    let src = r#"
        class Box {
            Object f;
            void set(Object v) { this.f = v; }
            Object getOr(Object dflt) {
                Object r;
                r = this.f;
                if (r == null) { r = dflt; }
                return r;
            }
        }
        class Marker { void m() { } }
        class Fallback { void fb() { } }
        class Main {
            static void main() {
                Box b = new Box();
                b.set(new Marker());
                Object got = b.getOr(new Fallback());
            }
        }
    "#;
    let p = compile(src);
    let csc = run_analysis(&p, Analysis::CutShortcut, Budget::unlimited());
    // Sound: got sees both the stored Marker and the Fallback default.
    assert_eq!(pt_len(&csc, &p, "got"), 2);
    let stats = csc.csc.as_ref().unwrap();
    assert!(stats.relay_edges >= 1, "the default needs a relay edge");
}

/// Figure-3-style nesting three levels deep: ctor -> init -> setRaw.
#[test]
fn three_level_nested_store_precision() {
    let src = r#"
        class W {
            Object val;
            W(Object v) { this.init(v); }
            void init(Object v) { this.setRaw(v); }
            void setRaw(Object v) { this.val = v; }
            Object unwrap() { Object r; r = this.val; return r; }
        }
        class Main {
            static void main() {
                W w1 = new W(new Object());
                W w2 = new W(new Object());
                Object x1 = w1.unwrap();
                Object x2 = w2.unwrap();
            }
        }
    "#;
    let p = compile(src);
    let ci = run_analysis(&p, Analysis::Ci, Budget::unlimited());
    assert_eq!(pt_len(&ci, &p, "x1"), 2, "CI merges");
    let csc = run_analysis(&p, Analysis::CutShortcut, Budget::unlimited());
    assert_eq!(
        pt_len(&csc, &p, "x1"),
        1,
        "temp stores walk two call levels"
    );
    assert_eq!(pt_len(&csc, &p, "x2"), 1);
}

/// Nested getter (the dynamic/static [CutPropLoad] recursion): a wrapper
/// returning another getter's result.
#[test]
fn nested_getter_load_propagation() {
    let src = r#"
        class Box {
            Object f;
            void set(Object v) { this.f = v; }
            Object getDirect() { return this.f; }
            Object get() { return this.getDirect(); }
        }
        class Main {
            static void main() {
                Box b1 = new Box();
                b1.set(new Object());
                Object x1 = b1.get();
                Box b2 = new Box();
                b2.set(new Object());
                Object x2 = b2.get();
            }
        }
    "#;
    let p = compile(src);
    let ci = run_analysis(&p, Analysis::Ci, Budget::unlimited());
    assert_eq!(pt_len(&ci, &p, "x1"), 2);
    let csc = run_analysis(&p, Analysis::CutShortcut, Budget::unlimited());
    assert_eq!(pt_len(&csc, &p, "x1"), 1, "nested load cut + shortcut");
    assert_eq!(pt_len(&csc, &p, "x2"), 1);
}

/// swap-style methods exercise store and load halves simultaneously.
#[test]
fn swap_method_both_halves() {
    let src = r#"
        class Box {
            Object f;
            Object swap(Object v) {
                Object old;
                old = this.f;
                this.f = v;
                return old;
            }
        }
        class Main {
            static void main() {
                Box b1 = new Box();
                Object a1 = b1.swap(new Object());
                Object a2 = b1.swap(new Object());
                Box b2 = new Box();
                Object a3 = b2.swap(new Object());
            }
        }
    "#;
    let p = compile(src);
    let csc = run_analysis(&p, Analysis::CutShortcut, Budget::unlimited());
    let stats = csc.csc.as_ref().unwrap();
    assert_eq!(stats.cut_store_sites, 1);
    assert!(stats.cut_return_methods >= 1);
    // b2 only ever swaps in one object, so a3 sees at most b2's stores
    // (the first swap returns the uninitialized field = nothing).
    assert_eq!(pt_len(&csc, &p, "a3"), 1);
    // CI would let a3 see all three objects.
    let ci = run_analysis(&p, Analysis::Ci, Budget::unlimited());
    assert_eq!(pt_len(&ci, &p, "a3"), 3);
}

/// Doop mode (no load handling) still cuts stores and stays sound, but is
/// less precise than the full configuration on getter-style code.
#[test]
fn doop_mode_weaker_than_full() {
    let src = r#"
        class Box {
            Object f;
            void set(Object v) { this.f = v; }
            Object get() { Object r; r = this.f; return r; }
        }
        class Main {
            static void main() {
                Box b1 = new Box();
                b1.set(new Object());
                Object x = b1.get();
                Box b2 = new Box();
                b2.set(new Object());
                Object y = b2.get();
            }
        }
    "#;
    let p = compile(src);
    let full = run_analysis(&p, Analysis::CutShortcut, Budget::unlimited());
    let doop = run_analysis(
        &p,
        Analysis::CutShortcutWith(CscConfig::doop()),
        Budget::unlimited(),
    );
    assert_eq!(pt_len(&full, &p, "x"), 1);
    // Without load handling the getter's merged return reaches both.
    assert_eq!(pt_len(&doop, &p, "x"), 2);
    // But the *fields* are still precise (store half active): verify via
    // the full stats.
    assert!(doop.csc.as_ref().unwrap().cut_store_sites >= 1);
    assert_eq!(doop.csc.as_ref().unwrap().shortcut_load_edges, 0);
}

/// Patterns compose: a container holding wrapped values, retrieved and
/// unwrapped — needs container + field patterns together.
#[test]
fn container_of_wrappers_composes_patterns() {
    let jdk = csc_workloads::MINI_JDK;
    let src = format!(
        r#"{jdk}
        class W {{
            Object val;
            W(Object v) {{ this.val = v; }}
            Object unwrap() {{ Object r; r = this.val; return r; }}
        }}
        class Main {{
            static void main() {{
                ArrayList l1 = new ArrayList();
                l1.add(new W(new Object()));
                Object w1o = l1.get(0);
                W w1 = (W) w1o;
                Object x1 = w1.unwrap();

                ArrayList l2 = new ArrayList();
                l2.add(new W(new Object()));
                Object w2o = l2.get(0);
                W w2 = (W) w2o;
                Object x2 = w2.unwrap();
            }}
        }}
    "#
    );
    let p = compile(&src);
    let ci = run_analysis(&p, Analysis::Ci, Budget::unlimited());
    assert_eq!(pt_len(&ci, &p, "x1"), 2);
    let csc = run_analysis(&p, Analysis::CutShortcut, Budget::unlimited());
    assert_eq!(
        pt_len(&csc, &p, "x1"),
        1,
        "container + field patterns compose"
    );
    assert_eq!(pt_len(&csc, &p, "x2"), 1);
    // Single patterns alone are not enough here.
    let only_container = run_analysis(
        &p,
        Analysis::CutShortcutWith(CscConfig::only_container()),
        Budget::unlimited(),
    );
    assert_eq!(
        pt_len(&only_container, &p, "x1"),
        2,
        "container alone leaves the unwrap merge"
    );
}

/// The involved-methods statistic covers the methods whose edges changed.
#[test]
fn involved_methods_recorded() {
    let src = r#"
        class Box {
            Object f;
            void set(Object v) { this.f = v; }
            Object get() { Object r; r = this.f; return r; }
        }
        class Main {
            static void main() {
                Box b = new Box();
                b.set(new Object());
                Object x = b.get();
            }
        }
    "#;
    let p = compile(src);
    let csc = run_analysis(&p, Analysis::CutShortcut, Budget::unlimited());
    let involved = &csc.csc.as_ref().unwrap().involved_methods;
    assert!(involved.contains(&p.method_by_qualified_name("Box.set").unwrap()));
    assert!(involved.contains(&p.method_by_qualified_name("Box.get").unwrap()));
    assert!(involved.contains(&p.method_by_qualified_name("Main.main").unwrap()));
}

/// HashSet membership loops (early returns in a while) analyze cleanly.
#[test]
fn hashset_contains_pattern() {
    let jdk = csc_workloads::MINI_JDK;
    let src = format!(
        r#"{jdk}
        class Main {{
            static void main() {{
                HashSet s = new HashSet();
                Object a = new Object();
                s.add(a);
                s.add(a);
                boolean has = s.contains(a);
                Iterator it = s.iterator();
                Object got = it.next();
            }}
        }}
    "#
    );
    let p = compile(&src);
    let csc = run_analysis(&p, Analysis::CutShortcut, Budget::unlimited());
    assert_eq!(pt_len(&csc, &p, "got"), 1);
}
