//! Tests for the §3.4 hybrid extension: Cut-Shortcut composed with
//! selective object sensitivity applied only to pattern-free methods.

use csc_core::{pattern_methods, run_analysis, Analysis, Budget, CscConfig, PrecisionMetrics};
use csc_interp::{check_recall, execute, InterpConfig};

/// The motivating case for the combination: a `mix`-style method that no
/// Cut-Shortcut pattern covers (multiple returns, load into a non-return
/// local). CSC alone leaves its callers merged; the hybrid recovers them
/// with contexts on exactly that method.
const MIXER: &str = r#"
    class Box {
        Object f;
        void set(Object v) { this.f = v; }
        Object mix(Object v) {
            Object c;
            c = this.f;
            if (c == v) { return c; }
            return v;
        }
    }
    class Main {
        static void main() {
            Box b1 = new Box();
            b1.set(new Object());
            Object x1 = b1.mix(new Object());
            Box b2 = new Box();
            b2.set(new Object());
            Object x2 = b2.mix(new Object());
        }
    }
"#;

fn pt_len(out: &csc_core::AnalysisOutcome<'_>, p: &csc_ir::Program, var: &str) -> usize {
    let v = p
        .method(p.entry())
        .vars()
        .iter()
        .copied()
        .find(|&v| p.var(v).name() == var)
        .unwrap();
    out.result.state.pt_var_projected(v).len()
}

#[test]
fn pattern_methods_excludes_mixers() {
    let p = csc_frontend::compile(MIXER).unwrap();
    let covered = pattern_methods(&p, &CscConfig::all());
    let set = p.method_by_qualified_name("Box.set").unwrap();
    let mix = p.method_by_qualified_name("Box.mix").unwrap();
    assert!(covered.contains(&set), "setter is pattern-covered");
    assert!(!covered.contains(&mix), "mixer is not pattern-covered");
}

#[test]
fn hybrid_beats_plain_csc_on_mixers() {
    let p = csc_frontend::compile(MIXER).unwrap();
    let csc = run_analysis(&p, Analysis::CutShortcut, Budget::unlimited());
    // Plain CSC: mix's receivers are merged context-insensitively, so x1
    // sees objects from both scenarios (its own two + the other box's
    // stored object).
    assert!(pt_len(&csc, &p, "x1") > 2);
    let hybrid = run_analysis(&p, Analysis::CscHybrid, Budget::unlimited());
    assert!(hybrid.completed());
    // Hybrid: contexts on mix separate the two boxes; x1 = {b1's stored,
    // b1's default} only.
    assert_eq!(pt_len(&hybrid, &p, "x1"), 2);
    assert_eq!(pt_len(&hybrid, &p, "x2"), 2);
}

#[test]
fn hybrid_keeps_pattern_precision() {
    // On the pure Figure-1 shape the hybrid must be exactly as precise as
    // plain CSC (patterns cover everything; no contexts applied).
    let p = csc_frontend::compile(csc_workloads::examples::FIGURE1).unwrap();
    let csc = run_analysis(&p, Analysis::CutShortcut, Budget::unlimited());
    let hybrid = run_analysis(&p, Analysis::CscHybrid, Budget::unlimited());
    for var in ["result1", "result2"] {
        assert_eq!(pt_len(&hybrid, &p, var), pt_len(&csc, &p, var));
        assert_eq!(pt_len(&hybrid, &p, var), 1);
    }
    assert!(
        hybrid.selected.as_ref().unwrap().is_empty()
            || !hybrid.selected.as_ref().unwrap().iter().any(|&m| {
                let n = p.qualified_name(m);
                n == "Carton.setItem" || n == "Carton.getItem"
            }),
        "pattern-covered methods must not receive contexts"
    );
}

#[test]
fn hybrid_sound_and_at_least_as_precise_on_suite_program() {
    let bench = csc_workloads::by_name("findbugs").unwrap();
    let program = bench.compile();
    let trace = execute(&program, InterpConfig::default()).unwrap();
    let csc = run_analysis(&program, Analysis::CutShortcut, Budget::unlimited());
    let hybrid = run_analysis(&program, Analysis::CscHybrid, Budget::unlimited());
    assert!(hybrid.completed());
    let report = check_recall(
        &trace,
        &hybrid.result.state.reachable_methods_projected(),
        &hybrid.result.state.call_edges_projected(),
    );
    assert!(report.full_recall(), "hybrid must stay sound");
    let m_csc = PrecisionMetrics::compute(&csc.result);
    let m_hybrid = PrecisionMetrics::compute(&hybrid.result);
    assert!(m_hybrid.fail_casts <= m_csc.fail_casts);
    assert!(m_hybrid.poly_calls <= m_csc.poly_calls);
    assert!(m_hybrid.call_edges <= m_csc.call_edges);
    assert!(m_hybrid.reach_methods <= m_csc.reach_methods);
}
