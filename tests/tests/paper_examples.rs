//! Integration tests: the paper's Figures 1, 3, 4, 5 must come out exactly
//! as the paper describes, for every analysis in the comparison.

use csc_core::{run_analysis, Analysis, Budget};
use csc_ir::Program;
use csc_workloads::examples::{figure4, map_views, FIGURE1, FIGURE3, FIGURE5};

fn pt(outcome: &csc_core::AnalysisOutcome<'_>, program: &Program, var: &str) -> Vec<String> {
    let main = program.entry();
    let v = program
        .method(main)
        .vars()
        .iter()
        .copied()
        .find(|&v| program.var(v).name() == var)
        .unwrap_or_else(|| panic!("no variable `{var}` in main"));
    let mut objs: Vec<String> = outcome
        .result
        .state
        .pt_var_projected(v)
        .into_iter()
        .map(|o| program.obj(o).label().to_owned())
        .collect();
    objs.sort();
    objs
}

fn run(program: &Program, a: Analysis) -> csc_core::AnalysisOutcome<'_> {
    let out = run_analysis(program, a, Budget::unlimited());
    assert!(out.completed());
    out
}

#[test]
fn figure1_all_analyses() {
    let program = csc_frontend::compile(FIGURE1).unwrap();
    // CI merges o16 and o21 into both results.
    let ci = run(&program, Analysis::Ci);
    assert_eq!(pt(&ci, &program, "result1").len(), 2);
    assert_eq!(pt(&ci, &program, "result2").len(), 2);
    // 2type cannot help here: both Cartons are allocated in Main, so their
    // type contexts coincide (type sensitivity trades exactly this kind of
    // precision for scalability).
    let t2 = run(&program, Analysis::KType(2));
    assert_eq!(pt(&t2, &program, "result1").len(), 2);
    // CSC, 2obj and Zipper-e all recover the precise result.
    for a in [Analysis::CutShortcut, Analysis::KObj(2), Analysis::ZipperE] {
        let out = run(&program, a.clone());
        assert_eq!(
            pt(&out, &program, "result1"),
            pt(&out, &program, "item1"),
            "{} must be precise on Figure 1",
            a.label()
        );
        assert_eq!(pt(&out, &program, "result2"), pt(&out, &program, "item2"));
        assert_eq!(pt(&out, &program, "result1").len(), 1);
    }
}

#[test]
fn figure3_nested_constructor_stores() {
    let program = csc_frontend::compile(FIGURE3).unwrap();
    let ci = run(&program, Analysis::Ci);
    // CI merges t1/t2 through the A(t) -> set(p) chain.
    assert_eq!(pt(&ci, &program, "x1").len(), 2);
    let csc = run(&program, Analysis::CutShortcut);
    // tempStores propagation places the shortcuts at the outermost call
    // sites: x1 = {o of t1}, x2 = {o of t2}.
    assert_eq!(pt(&csc, &program, "x1"), pt(&csc, &program, "t1"));
    assert_eq!(pt(&csc, &program, "x2"), pt(&csc, &program, "t2"));
    assert_eq!(pt(&csc, &program, "x1").len(), 1);
    let stats = csc.csc.as_ref().unwrap();
    assert!(stats.temp_stores >= 2, "nested propagation ran");
}

#[test]
fn figure4_containers_and_iterators() {
    let src = figure4();
    let program = csc_frontend::compile(&src).unwrap();
    let ci = run(&program, Analysis::Ci);
    // CI merges a and b inside the shared list internals.
    assert_eq!(pt(&ci, &program, "x").len(), 2);
    assert_eq!(pt(&ci, &program, "r1").len(), 2);
    let csc = run(&program, Analysis::CutShortcut);
    assert_eq!(pt(&csc, &program, "x"), pt(&csc, &program, "a"));
    assert_eq!(pt(&csc, &program, "y"), pt(&csc, &program, "b"));
    assert_eq!(
        pt(&csc, &program, "r1"),
        pt(&csc, &program, "a"),
        "iterator of l1"
    );
    assert_eq!(
        pt(&csc, &program, "r2"),
        pt(&csc, &program, "b"),
        "iterator of l2"
    );
    let stats = csc.csc.as_ref().unwrap();
    assert!(stats.container_edges >= 4);
}

#[test]
fn figure5_local_flow() {
    let program = csc_frontend::compile(FIGURE5).unwrap();
    let ci = run(&program, Analysis::Ci);
    assert_eq!(pt(&ci, &program, "r1").len(), 4, "CI merges all four");
    let csc = run(&program, Analysis::CutShortcut);
    let mut expect1 = pt(&csc, &program, "a1");
    expect1.extend(pt(&csc, &program, "a2"));
    expect1.sort();
    assert_eq!(pt(&csc, &program, "r1"), expect1, "r1 = {{o10, o11}}");
    let mut expect2 = pt(&csc, &program, "a3");
    expect2.extend(pt(&csc, &program, "a4"));
    expect2.sort();
    assert_eq!(pt(&csc, &program, "r2"), expect2, "r2 = {{o14, o15}}");
    let stats = csc.csc.as_ref().unwrap();
    assert!(stats.local_flow_edges >= 4);
}

#[test]
fn map_views_key_value_categories() {
    let src = map_views();
    let program = csc_frontend::compile(&src).unwrap();
    let csc = run(&program, Analysis::CutShortcut);
    // get(k1) on m1 yields only v1; keySet iterator yields only keys of m1;
    // values iterator of m2 yields only v2.
    assert_eq!(pt(&csc, &program, "g1"), pt(&csc, &program, "v1"));
    assert_eq!(pt(&csc, &program, "g2"), pt(&csc, &program, "v2"));
    assert_eq!(pt(&csc, &program, "kk1"), pt(&csc, &program, "k1"));
    assert_eq!(pt(&csc, &program, "vv2"), pt(&csc, &program, "v2"));
    // CI conflates keys and values across both maps.
    let ci = run(&program, Analysis::Ci);
    assert!(pt(&ci, &program, "g1").len() > 1);
}
