//! Cross-crate soundness suite: for every benchmark and every analysis,
//! (1) the dynamic trace is fully recalled, and (2) Cut-Shortcut's results
//! are a subset of context-insensitivity's (CSC only ever *removes*
//! spurious facts).

use csc_core::{run_analysis, Analysis, Budget, CscConfig};
use csc_interp::{check_recall, execute, InterpConfig};
use csc_workloads::Benchmark;

/// The small benchmarks, cheap enough to run every analysis to completion
/// in tests.
fn small_suite() -> Vec<Benchmark> {
    ["hsqldb", "findbugs", "jython"]
        .iter()
        .map(|n| csc_workloads::by_name(n).unwrap())
        .collect()
}

#[test]
fn recall_is_total_for_all_analyses() {
    for bench in small_suite() {
        let program = bench.compile();
        let trace = execute(&program, InterpConfig::default()).expect("bounded execution");
        for analysis in [
            Analysis::Ci,
            Analysis::CutShortcut,
            Analysis::CutShortcutWith(CscConfig::doop()),
            Analysis::KObj(2),
            Analysis::KType(2),
            Analysis::KCallSite(2),
            Analysis::ZipperE,
        ] {
            let label = analysis.label().to_owned();
            let out = run_analysis(&program, analysis, Budget::unlimited());
            assert!(out.completed());
            let report = check_recall(
                &trace,
                &out.result.state.reachable_methods_projected(),
                &out.result.state.call_edges_projected(),
            );
            assert!(
                report.full_recall(),
                "{label} on {}: missed {} methods, {} edges",
                bench.name,
                report.missed_methods.len(),
                report.missed_edges.len()
            );
        }
    }
}

#[test]
fn csc_results_subset_of_ci() {
    for bench in small_suite() {
        let program = bench.compile();
        let ci = run_analysis(&program, Analysis::Ci, Budget::unlimited());
        let csc = run_analysis(&program, Analysis::CutShortcut, Budget::unlimited());
        // Reachability and call graph shrink (or stay equal).
        let ci_methods = ci.result.state.reachable_methods_projected();
        let csc_methods = csc.result.state.reachable_methods_projected();
        assert!(
            csc_methods.is_subset(&ci_methods),
            "{}: CSC reached methods not in CI",
            bench.name
        );
        let ci_edges = ci.result.state.call_edges_projected();
        let csc_edges = csc.result.state.call_edges_projected();
        assert!(
            csc_edges.is_subset(&ci_edges),
            "{}: spurious CSC call edges",
            bench.name
        );
        // Per-variable points-to sets shrink.
        for m in 0..program.methods().len() {
            let m = csc_ir::MethodId::from_usize(m);
            for &v in program.method(m).vars() {
                let ci_pt = ci.result.state.pt_var_projected(v);
                let csc_pt = csc.result.state.pt_var_projected(v);
                // Both projections are sorted vectors.
                assert!(
                    csc_pt.iter().all(|o| ci_pt.binary_search(o).is_ok()),
                    "{}: pt({}) grew under CSC: {:?} vs {:?}",
                    bench.name,
                    program.var_name(v),
                    csc_pt,
                    ci_pt
                );
            }
        }
    }
}

#[test]
fn each_pattern_alone_is_sound_and_no_worse_than_ci() {
    let bench = csc_workloads::by_name("hsqldb").unwrap();
    let program = bench.compile();
    let trace = execute(&program, InterpConfig::default()).expect("bounded execution");
    let ci = run_analysis(&program, Analysis::Ci, Budget::unlimited());
    let ci_metrics = csc_core::PrecisionMetrics::compute(&ci.result);
    for (name, cfg) in [
        ("field", CscConfig::only_field()),
        ("container", CscConfig::only_container()),
        ("local-flow", CscConfig::only_local_flow()),
        ("doop", CscConfig::doop()),
        ("all", CscConfig::all()),
    ] {
        let out = run_analysis(
            &program,
            Analysis::CutShortcutWith(cfg),
            Budget::unlimited(),
        );
        let report = check_recall(
            &trace,
            &out.result.state.reachable_methods_projected(),
            &out.result.state.call_edges_projected(),
        );
        assert!(report.full_recall(), "pattern `{name}` is unsound");
        let m = csc_core::PrecisionMetrics::compute(&out.result);
        assert!(
            m.fail_casts <= ci_metrics.fail_casts,
            "pattern `{name}` worse than CI"
        );
        assert!(m.poly_calls <= ci_metrics.poly_calls);
        assert!(m.call_edges <= ci_metrics.call_edges);
        assert!(m.reach_methods <= ci_metrics.reach_methods);
    }
}

#[test]
fn analysis_precision_ordering_on_suite() {
    // 2obj refines CI; CSC refines CI; everything stays sound (checked
    // above). The paper's headline: CSC precision is between CI and 2obj,
    // close to 2obj.
    let bench = csc_workloads::by_name("findbugs").unwrap();
    let program = bench.compile();
    let ci = csc_core::PrecisionMetrics::compute(
        &run_analysis(&program, Analysis::Ci, Budget::unlimited()).result,
    );
    let csc = csc_core::PrecisionMetrics::compute(
        &run_analysis(&program, Analysis::CutShortcut, Budget::unlimited()).result,
    );
    let obj2 = csc_core::PrecisionMetrics::compute(
        &run_analysis(&program, Analysis::KObj(2), Budget::unlimited()).result,
    );
    assert!(csc.fail_casts < ci.fail_casts, "CSC improves over CI");
    assert!(obj2.fail_casts < ci.fail_casts);
    assert!(csc.call_edges < ci.call_edges);
    // CSC must recover a large share of 2obj's improvement.
    let ci_to_obj2 = ci.fail_casts - obj2.fail_casts.min(ci.fail_casts);
    let ci_to_csc = ci.fail_casts - csc.fail_casts.min(ci.fail_casts);
    assert!(
        ci_to_csc * 2 >= ci_to_obj2,
        "CSC recovers at least half of 2obj's fail-cast improvement \
         (CI={}, CSC={}, 2obj={})",
        ci.fail_casts,
        csc.fail_casts,
        obj2.fail_casts
    );
}
