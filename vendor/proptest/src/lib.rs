//! Offline, API-compatible shim for the subset of `proptest` this
//! workspace uses: the `proptest!` macro, `Strategy` with `prop_map`,
//! range / tuple / `collection::vec` strategies, `any::<T>()`,
//! `ProptestConfig::with_cases`, and the `prop_assert*` macros.
//!
//! Sampling is deterministic: each test derives its RNG stream from the
//! test's module path + name + case index, so failures reproduce across
//! runs. There is no shrinking — failing cases report the sampled inputs
//! through the assertion message instead.

#![forbid(unsafe_code)]

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The value type this strategy produces.
        type Value;

        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps sampled values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    let r = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    self.start.wrapping_add(r as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;

        fn sample(&self, rng: &mut TestRng) -> f32 {
            (self.start as f64..self.end as f64).sample(rng) as f32
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A / 0);
    impl_tuple_strategy!(A / 0, B / 1);
    impl_tuple_strategy!(A / 0, B / 1, C / 2);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);
    impl_tuple_strategy!(
        A / 0,
        B / 1,
        C / 2,
        D / 3,
        E / 4,
        F / 5,
        G / 6,
        H / 7,
        I / 8
    );
    impl_tuple_strategy!(
        A / 0,
        B / 1,
        C / 2,
        D / 3,
        E / 4,
        F / 5,
        G / 6,
        H / 7,
        I / 8,
        J / 9
    );
    impl_tuple_strategy!(
        A / 0,
        B / 1,
        C / 2,
        D / 3,
        E / 4,
        F / 5,
        G / 6,
        H / 7,
        I / 8,
        J / 9,
        K / 10
    );
    impl_tuple_strategy!(
        A / 0,
        B / 1,
        C / 2,
        D / 3,
        E / 4,
        F / 5,
        G / 6,
        H / 7,
        I / 8,
        J / 9,
        K / 10,
        L / 11
    );

    /// Types with a canonical whole-domain strategy ([`crate::arbitrary::any`]).
    pub trait Arbitrary {
        /// Samples one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// One weighted arm of a [`Union`]: `(weight, sampler)`.
    pub type UnionArm<V> = (u32, Box<dyn Fn(&mut TestRng) -> V>);

    /// Weighted union of same-valued strategies (built by
    /// [`crate::prop_oneof!`]). Arms are stored as boxed sampling
    /// closures because `Strategy` itself is not object-safe
    /// (`prop_map` is generic).
    pub struct Union<V> {
        arms: Vec<UnionArm<V>>,
        total: u64,
    }

    impl<V> Union<V> {
        /// Builds a union from `(weight, sampler)` arms.
        pub fn new(arms: Vec<UnionArm<V>>) -> Self {
            let total = arms.iter().map(|&(w, _)| u64::from(w)).sum();
            assert!(total > 0, "prop_oneof! needs positive total weight");
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn sample(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.next_u64() % self.total;
            for (w, f) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return f(rng);
                }
                pick -= w;
            }
            unreachable!("weights sum to total")
        }
    }

    /// The strategy returned by [`crate::arbitrary::any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::{Any, Arbitrary};

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::default()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A strategy for `Vec<T>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `Vec` strategy: elements from `elem`, length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start >= self.size.end {
                self.size.start
            } else {
                self.size.clone().sample(rng)
            };
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(256);
            ProptestConfig { cases }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic SplitMix64 stream, derived from test name + case.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the stream for one (test, case) pair.
        pub fn deterministic(test_name: &str, case: u32) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                state: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Everything a `proptest!` body needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Weighted choice between strategies producing the same value type:
/// `prop_oneof![3 => a, 1 => b]` samples `a` three times as often as `b`;
/// weights default to 1 when omitted.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$(
            {
                let s = $strat;
                (
                    $weight,
                    Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                        $crate::strategy::Strategy::sample(&s, rng)
                    }) as Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>,
                )
            }
        ),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1u32 => $strat),+]
    };
}

/// `assert!` under a name the upstream API exposes (no shrinking here, so
/// plain panics carry the failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// `assert_eq!` under the upstream name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// `assert_ne!` under the upstream name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __proptest_rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::sample(
                            &($strat),
                            &mut __proptest_rng,
                        );
                    )+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 10u32..20, y in 0usize..3) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y < 3);
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0u32..5, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn prop_map_applies(s in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(s < 19);
        }

        #[test]
        fn oneof_respects_arms(x in prop_oneof![2 => 0u32..10, 1 => 100u32..110]) {
            prop_assert!(x < 10 || (100u32..110).contains(&x));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_applies(x in any::<u64>()) {
            let _ = x;
        }
    }

    #[test]
    fn deterministic_streams() {
        use crate::test_runner::TestRng;
        let a: Vec<u64> = {
            let mut r = TestRng::deterministic("t", 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::deterministic("t", 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }
}
