//! Offline, API-compatible shim for the subset of `criterion` this
//! workspace uses: groups, `bench_function` / `bench_with_input`,
//! `sample_size`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Each benchmark runs one warm-up iteration and then up to
//! `sample_size` timed iterations, stopping early once
//! `CRITERION_MAX_MS` (default 3000) of measurement time is spent, and
//! prints min/mean/median/max wall-clock per iteration. There are no
//! statistical reports; the point is that `cargo bench` runs end-to-end
//! offline and prints comparable numbers.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
    max_measure: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let max_ms = std::env::var("CRITERION_MAX_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(3000u64);
        // `cargo bench -- <filter>` passes the filter as the first free
        // argument; `--bench`/`--test` harness flags are skipped.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            default_sample_size: 10,
            max_measure: Duration::from_millis(max_ms),
            filter,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        let sample_size = self.default_sample_size;
        self.run_one(&id.to_string(), sample_size, f);
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, sample_size: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size,
            max_measure: self.max_measure,
        };
        f(&mut b);
        b.report(id);
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Caps the wall-clock spent measuring one benchmark (the shim also
    /// honors the `CRITERION_MAX_MS` environment variable).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.max_measure = d;
        self
    }

    /// Benchmarks a closure under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        let full = format!("{}/{}", self.name, id);
        let n = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion.run_one(&full, n, f);
    }

    /// Benchmarks a closure over one input under `group/id`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (upstream flushes reports here; the shim prints
    /// eagerly, so this is a no-op).
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark identifier.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id shown as `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs and times the benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    max_measure: Duration,
}

impl Bencher {
    /// Times `f`, collecting up to `sample_size` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
            if measure_start.elapsed() > self.max_measure {
                break;
            }
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<44} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let total: Duration = sorted.iter().sum();
        let mean = total / sorted.len() as u32;
        let median = sorted[sorted.len() / 2];
        println!(
            "{id:<44} mean {:>10} median {:>10} min {:>10} max {:>10} ({} samples)",
            fmt(mean),
            fmt(median),
            fmt(sorted[0]),
            fmt(*sorted.last().unwrap()),
            sorted.len()
        );
    }
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3}s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Bundles benchmark functions into one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion {
            default_sample_size: 3,
            max_measure: Duration::from_millis(100),
            filter: None,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut runs = 0u32;
        group.bench_function("id", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs >= 2, "warm-up + samples must run the body");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
    }
}
