//! Offline, API-compatible shim for the subset of `rand` 0.8 this
//! workspace uses: `StdRng`, `SeedableRng`, and `Rng::{gen, gen_range,
//! gen_bool}` over integer and float ranges.
//!
//! The generator is SplitMix64 — statistically fine for workload
//! generation and property testing, deterministic per seed, but not the
//! same stream as upstream `StdRng` (ChaCha12).

#![forbid(unsafe_code)]

use std::ops::Range;

/// A type that can seed an RNG.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the RNG from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Values samplable from a uniform range — the subset of upstream's
/// `SampleUniform` needed by `gen_range`.
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Values producible by `Rng::gen`.
pub trait Standard {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of an implementing type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `[range.start, range.end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        f64_from_bits(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn f64_from_bits(bits: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as $wide).wrapping_sub(range.start as $wide);
                // Multiply-shift bounded sampling (Lemire); the tiny bias
                // is irrelevant for workload generation.
                let x = rng.next_u64() as u128;
                let r = ((x * span as u128) >> 64) as $wide;
                range.start.wrapping_add(r as $t)
            }
        }
    )*};
}

impl_uniform_int!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
                  i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        range.start + f64_from_bits(rng.next_u64()) * (range.end - range.start)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        f64::sample_range(rng, range.start as f64..range.end as f64) as f32
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64_from_bits(rng.next_u64())
    }
}

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard RNG: SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u8; 8];
            s.copy_from_slice(&seed[..8]);
            Self::seed_from_u64(u64::from_le_bytes(s))
        }

        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u32> = (0..16).map(|_| a.gen_range(0u32..1000)).collect();
        let vb: Vec<u32> = (0..16).map(|_| b.gen_range(0u32..1000)).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        let vc: Vec<u32> = (0..16).map(|_| c.gen_range(0u32..1000)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = r.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
