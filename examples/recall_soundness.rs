//! The §5.1 recall experiment on one benchmark: execute the program
//! concretely, then check that every dynamically reached method and call
//! edge is over-approximated by CI, Cut-Shortcut, and 2obj.
//!
//! ```sh
//! cargo run --release -p csc-examples --bin recall_soundness [benchmark]
//! ```

use csc_core::{run_analysis, Analysis, Budget};
use csc_interp::{check_recall, execute, InterpConfig};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "hsqldb".into());
    let bench = csc_workloads::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark `{name}`; available:");
        for b in csc_workloads::suite() {
            eprintln!("  {}", b.name);
        }
        std::process::exit(1);
    });
    let program = bench.compile();
    println!(
        "{name}: {} classes, {} methods, {} statements",
        program.classes().len(),
        program.methods().len(),
        program.stmt_count()
    );

    let trace = match execute(&program, InterpConfig::default()) {
        Ok(t) => t,
        Err(e) => e.partial,
    };
    println!(
        "dynamic execution: {} steps, {} allocations, {} reached methods, {} call edges",
        trace.steps,
        trace.allocations,
        trace.reached_methods.len(),
        trace.call_edges.len()
    );

    for analysis in [Analysis::Ci, Analysis::CutShortcut, Analysis::KObj(2)] {
        let label = analysis.label();
        let outcome = run_analysis(&program, analysis, Budget::unlimited());
        let report = check_recall(
            &trace,
            &outcome.result.state.reachable_methods_projected(),
            &outcome.result.state.call_edges_projected(),
        );
        println!(
            "{label:>4}: method recall {:.1}%, edge recall {:.1}% — {}",
            report.method_recall_pct(),
            report.edge_recall_pct(),
            if report.full_recall() {
                "sound on this execution"
            } else {
                "UNSOUND (missed dynamic facts!)"
            }
        );
        assert!(report.full_recall(), "{label} must be sound");
    }
}
