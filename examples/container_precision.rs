//! Container access pattern (paper §3.3, Fig. 4): two `ArrayList`s and
//! their iterators, plus a `HashMap` with key/value views, analyzed with CI
//! and Cut-Shortcut on top of the mini-JDK.
//!
//! ```sh
//! cargo run --release -p csc-examples --bin container_precision
//! ```

use csc_core::{run_analysis, Analysis, Budget};
use csc_workloads::examples::{figure4, map_views};

fn show(program: &csc_ir::Program, title: &str, vars: &[&str]) {
    println!("— {title} —");
    for analysis in [Analysis::Ci, Analysis::CutShortcut] {
        let label = analysis.label();
        let outcome = run_analysis(program, analysis, Budget::unlimited());
        let main = program.entry();
        print!("{label:>4}:");
        for name in vars {
            let v = program
                .method(main)
                .vars()
                .iter()
                .copied()
                .find(|&v| program.var(v).name() == *name)
                .expect("var exists");
            let mut pt: Vec<String> = outcome
                .result
                .state
                .pt_var_projected(v)
                .into_iter()
                .map(|o| program.obj(o).label().to_owned())
                .collect();
            pt.sort();
            print!("  pt({name})={pt:?}");
        }
        println!();
    }
    println!();
}

fn main() {
    let fig4 = csc_frontend::compile(&figure4()).expect("Figure 4 compiles");
    // x/y via get(), r1/r2 via iterators — all four are precise under CSC.
    show(
        &fig4,
        "Figure 4: lists and iterators",
        &["x", "y", "r1", "r2"],
    );

    let maps = csc_frontend::compile(&map_views()).expect("map example compiles");
    show(
        &maps,
        "HashMap with keySet()/values() views",
        &["g1", "g2", "kk1", "vv2"],
    );

    println!("CI merges the elements of all containers inside the shared");
    println!("mini-JDK internals (Node.item / MapEntry.key / MapEntry.value);");
    println!("the container pattern's ptH host tracking reconnects each exit");
    println!("to exactly the entrances of the same container object.");
}
