//! Quickstart: compile a MiniJava program, run the Cut-Shortcut analysis,
//! and query points-to sets and precision metrics.
//!
//! ```sh
//! cargo run --release -p csc-examples --bin quickstart
//! ```

use csc_core::{run_analysis, Analysis, Budget, PrecisionMetrics};

fn main() {
    let program = csc_frontend::compile(
        r#"
        class Box {
            Object item;
            void set(Object v) { this.item = v; }
            Object get() { Object r; r = this.item; return r; }
        }
        class Key { }
        class Coin { }
        class Main {
            static void main() {
                Box keys = new Box();
                keys.set(new Key());
                Object k = keys.get();

                Box coins = new Box();
                coins.set(new Coin());
                Object c = coins.get();

                Key kk = (Key) k;     // precise analysis: cannot fail
                Coin cc = (Coin) c;   // precise analysis: cannot fail
            }
        }
        "#,
    )
    .expect("valid MiniJava");

    for analysis in [Analysis::Ci, Analysis::CutShortcut] {
        let label = analysis.label();
        let outcome = run_analysis(&program, analysis, Budget::unlimited());
        let metrics = PrecisionMetrics::compute(&outcome.result);
        println!(
            "{label:>4}: {:?}  fail-casts={} reach-methods={} poly-calls={} call-edges={}",
            outcome.total_time,
            metrics.fail_casts,
            metrics.reach_methods,
            metrics.poly_calls,
            metrics.call_edges
        );

        // Inspect what `k` may point to.
        let main = program.entry();
        let k = program
            .method(main)
            .vars()
            .iter()
            .copied()
            .find(|&v| program.var(v).name() == "k")
            .expect("k exists");
        let mut pt: Vec<String> = outcome
            .result
            .state
            .pt_var_projected(k)
            .into_iter()
            .map(|o| program.obj(o).label().to_owned())
            .collect();
        pt.sort();
        println!("      pt(k) = {pt:?}");
    }
    println!();
    println!("CI merges the Key and the Coin inside Box; Cut-Shortcut separates");
    println!("them without applying a single calling context.");
}
