//! The paper's Figure 1 motivating example, end to end: shows the points-to
//! sets computed by CI, 2obj, and Cut-Shortcut for `result1` / `result2`,
//! plus the cut/shortcut statistics of the CSC run.
//!
//! ```sh
//! cargo run --release -p csc-examples --bin motivating_example
//! ```

use csc_core::{run_analysis, Analysis, Budget};
use csc_workloads::examples::FIGURE1;

fn pt_labels(
    outcome: &csc_core::AnalysisOutcome<'_>,
    program: &csc_ir::Program,
    var_name: &str,
) -> Vec<String> {
    let main = program.entry();
    let v = program
        .method(main)
        .vars()
        .iter()
        .copied()
        .find(|&v| program.var(v).name() == var_name)
        .expect("variable exists");
    let mut out: Vec<String> = outcome
        .result
        .state
        .pt_var_projected(v)
        .into_iter()
        .map(|o| program.obj(o).label().to_owned())
        .collect();
    out.sort();
    out
}

fn main() {
    let program = csc_frontend::compile(FIGURE1).expect("Figure 1 compiles");
    println!("— the program (paper Fig. 1) —\n{}", FIGURE1.trim());
    println!("\n— analysis results —");
    for analysis in [Analysis::Ci, Analysis::KObj(2), Analysis::CutShortcut] {
        let label = analysis.label();
        let outcome = run_analysis(&program, analysis, Budget::unlimited());
        println!(
            "{label:>4}: pt(result1) = {:?}, pt(result2) = {:?}",
            pt_labels(&outcome, &program, "result1"),
            pt_labels(&outcome, &program, "result2"),
        );
        if let Some(stats) = &outcome.csc {
            println!(
                "      CSC cut {} store site(s), {} return(s); added {} shortcut edge(s) \
                 ({} store, {} load)",
                stats.cut_store_sites,
                stats.cut_return_methods,
                stats.shortcut_edges(),
                stats.shortcut_store_edges,
                stats.shortcut_load_edges,
            );
        }
    }
    println!();
    println!("CI merges both items; 2obj separates them by cloning Carton's");
    println!("methods under receiver contexts; Cut-Shortcut gets the same");
    println!("precise result by cutting the store/return edges and adding");
    println!("shortcuts — with zero contexts.");
}
