//! §5.1 ablation (Criterion form): Cut-Shortcut with each single pattern
//! enabled versus all three, on one program — the time side of the
//! per-pattern impact study (`table_ablation` prints the precision side).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csc_core::{run_analysis, Analysis, Budget, CscConfig};

fn ablation(c: &mut Criterion) {
    let bench = csc_workloads::by_name("hsqldb").expect("suite program");
    let program = bench.compile();
    let mut group = c.benchmark_group("ablation_patterns");
    group.sample_size(10);
    for (label, cfg) in [
        ("field_only", CscConfig::only_field()),
        ("container_only", CscConfig::only_container()),
        ("local_flow_only", CscConfig::only_local_flow()),
        ("doop_mode", CscConfig::doop()),
        ("all", CscConfig::all()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            b.iter(|| {
                let out = run_analysis(
                    &program,
                    Analysis::CutShortcutWith(cfg.clone()),
                    Budget::unlimited(),
                );
                out.result.state.stats.propagations
            })
        });
    }
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
