//! Engine micro-benchmarks: points-to set union, frontend compilation, and
//! the static Cut-Shortcut preparation pass — the constant factors behind
//! every number in the paper-level tables.

use criterion::{criterion_group, criterion_main, Criterion};
use csc_core::csc::StaticInfo;
use csc_core::PointsToSet;

fn micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro");

    // Points-to set union at realistic sizes.
    let a: PointsToSet = (0..2000u32).filter(|x| x % 2 == 0).collect();
    let b: PointsToSet = (0..2000u32).filter(|x| x % 3 == 0).collect();
    group.bench_function("pts_union_delta_2k", |bch| {
        bch.iter(|| {
            let mut s = a.clone();
            s.union_delta(&b).map(|d| d.len()).unwrap_or(0)
        })
    });

    // Frontend end-to-end on a mid-size generated program.
    let bench = csc_workloads::by_name("jython").expect("suite program");
    let src = bench.source();
    group.bench_function("frontend_compile_jython", |bch| {
        bch.iter(|| {
            csc_frontend::compile(&src)
                .expect("compiles")
                .methods()
                .len()
        })
    });

    // Static preparation (cutStores, CHA closure, local flow fixpoint).
    let program = bench.compile();
    group.bench_function("csc_static_prep_jython", |bch| {
        bch.iter(|| StaticInfo::compute(&program).cut_load_returns.len())
    });

    group.finish();
}

criterion_group!(benches, micro);
criterion_main!(benches);
