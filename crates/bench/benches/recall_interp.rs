//! §5.1 recall experiment (Criterion form): cost of producing the dynamic
//! ground truth (concrete execution) and of the recall comparison itself.

use criterion::{criterion_group, criterion_main, Criterion};
use csc_core::{run_analysis, Analysis, Budget};
use csc_interp::{check_recall, execute, InterpConfig};

fn recall(c: &mut Criterion) {
    let bench = csc_workloads::by_name("hsqldb").expect("suite program");
    let program = bench.compile();
    let mut group = c.benchmark_group("recall");
    group.sample_size(10);

    group.bench_function("execute_ground_truth", |b| {
        b.iter(|| {
            let t = execute(&program, InterpConfig::default()).expect("bounded");
            (t.steps, t.call_edges.len())
        })
    });

    let trace = execute(&program, InterpConfig::default()).expect("bounded");
    let out = run_analysis(&program, Analysis::CutShortcut, Budget::unlimited());
    let methods = out.result.state.reachable_methods_projected();
    let edges = out.result.state.call_edges_projected();
    group.bench_function("check_recall_csc", |b| {
        b.iter(|| {
            let r = check_recall(&trace, &methods, &edges);
            assert!(r.full_recall());
            r.dynamic_edges
        })
    });
    group.finish();
}

criterion_group!(benches, recall);
criterion_main!(benches);
