//! Tables 1 & 2 (Criterion form): end-to-end time of each analysis
//! *including metric computation* (the tables report both time and the four
//! precision clients; this bench covers the whole row computation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csc_core::{run_analysis, Analysis, Budget, PrecisionMetrics};

fn tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables12_row");
    group.sample_size(10);
    let bench = csc_workloads::by_name("hsqldb").expect("suite program");
    let program = bench.compile();
    for (label, analysis) in [
        ("CI", Analysis::Ci),
        ("2obj", Analysis::KObj(2)),
        ("2type", Analysis::KType(2)),
        ("Zipper-e", Analysis::ZipperE),
        ("CSC", Analysis::CutShortcut),
    ] {
        group.bench_with_input(
            BenchmarkId::new("hsqldb", label),
            &analysis,
            |b, analysis| {
                b.iter(|| {
                    let out = run_analysis(&program, analysis.clone(), Budget::unlimited());
                    PrecisionMetrics::compute(&out.result)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, tables);
criterion_main!(benches);
