//! Figure 12 (Criterion form): analysis time of CSC / CI / Zipper-e /
//! 2type / 2obj per program. Uses the three small suite programs so that
//! Criterion can afford repeated runs; `table_time` prints the full
//! ten-program figure with single runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csc_core::{run_analysis, Analysis, Budget};

fn fig12(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_time");
    group.sample_size(10);
    for name in ["hsqldb", "findbugs", "jython"] {
        let bench = csc_workloads::by_name(name).expect("suite program");
        let program = bench.compile();
        for (label, analysis) in [
            ("CSC", Analysis::CutShortcut),
            ("CI", Analysis::Ci),
            ("Zipper-e", Analysis::ZipperE),
            ("2type", Analysis::KType(2)),
            ("2obj", Analysis::KObj(2)),
        ] {
            group.bench_with_input(BenchmarkId::new(label, name), &analysis, |b, analysis| {
                b.iter(|| {
                    let out = run_analysis(&program, analysis.clone(), Budget::unlimited());
                    assert!(out.completed());
                    out.result.state.stats.propagations
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig12);
criterion_main!(benches);
