//! Table 3 (Criterion form): the phase split of Zipper-e (pre-analysis vs
//! selection vs selective main analysis) against one Cut-Shortcut run —
//! the efficiency comparison behind the paper's "even Zipper-e's main
//! analysis alone is slower than CSC" observation.

use criterion::{criterion_group, criterion_main, Criterion};
use csc_core::zipper::{ZipperE, ZipperOptions};
use csc_core::{
    run_analysis, Analysis, Budget, CiSelector, NoPlugin, ObjSelector, SelectiveSelector, Solver,
};

fn phases(c: &mut Criterion) {
    let bench = csc_workloads::by_name("hsqldb").expect("suite program");
    let program = bench.compile();
    let mut group = c.benchmark_group("table3_zipper_phases");
    group.sample_size(10);

    group.bench_function("pre_analysis_ci", |b| {
        b.iter(|| {
            let (r, _) = Solver::new(&program, CiSelector, NoPlugin, Budget::unlimited()).solve();
            r.state.stats.propagations
        })
    });

    let (pre, _) = Solver::new(&program, CiSelector, NoPlugin, Budget::unlimited()).solve();
    group.bench_function("selection", |b| {
        b.iter(|| {
            ZipperE::select(&program, &pre, ZipperOptions::default())
                .selected
                .len()
        })
    });

    let zipper = ZipperE::select(&program, &pre, ZipperOptions::default());
    group.bench_function("main_selective_2obj", |b| {
        b.iter(|| {
            let selector =
                SelectiveSelector::new(ObjSelector::new(2), zipper.selected.clone(), "Zipper-e");
            let (r, _) = Solver::new(&program, selector, NoPlugin, Budget::unlimited()).solve();
            r.state.stats.propagations
        })
    });

    group.bench_function("csc_whole", |b| {
        b.iter(|| {
            run_analysis(&program, Analysis::CutShortcut, Budget::unlimited())
                .result
                .state
                .stats
                .propagations
        })
    });
    group.finish();
}

criterion_group!(benches, phases);
criterion_main!(benches);
