//! Tables 1 & 2: efficiency and the four precision metrics for every
//! program × {CI, 2obj, 2type, Zipper-e, CSC}. For all numbers, smaller is
//! better; timed-out analyses print `>Ns` like the paper's `>2h`.
//!
//! Besides the human-readable table, the run writes a machine-readable
//! perf snapshot to `BENCH_main.json` (path overridable via
//! `CSC_BENCH_JSON`) so CI can track wall-clock and precision drift.

use std::fmt::Write as _;

use csc_bench::{analyses, budget_label, fmt_time, run_row, Row};

fn json_row(out: &mut String, program: &str, row: &Row<'_>) {
    let stats = &row.outcome.result.state.stats;
    let _ = write!(
        out,
        "    {{\"program\": \"{program}\", \"analysis\": \"{}\", \
         \"time_secs\": {:.6}, \"completed\": {}, \
         \"propagations\": {}, \"pfg_edges\": {}, \"pointers\": {}, \
         \"scc_runs\": {}, \"sccs_collapsed\": {}, \"ptrs_collapsed\": {}",
        row.label,
        row.outcome.total_time.as_secs_f64(),
        row.outcome.completed(),
        stats.propagations,
        stats.edges,
        stats.pointers,
        stats.scc_runs,
        stats.sccs_collapsed,
        stats.ptrs_collapsed,
    );
    if let Some(m) = &row.metrics {
        let _ = write!(
            out,
            ", \"fail_casts\": {}, \"reach_methods\": {}, \"poly_calls\": {}, \
             \"call_edges\": {}",
            m.fail_casts, m.reach_methods, m.poly_calls, m.call_edges
        );
    }
    out.push('}');
}

fn main() {
    let only: Option<String> = std::env::args().nth(1);
    let mut json_rows: Vec<String> = Vec::new();
    println!(
        "{:<11} {:<9} {:>8} {:>10} {:>11} {:>11} {:>11}",
        "Program", "Analysis", "Time", "#fail-cast", "#reach-mtd", "#poly-call", "#call-edge"
    );
    println!("{}", "-".repeat(78));
    for bench in csc_workloads::suite() {
        if let Some(only) = &only {
            if only != bench.name {
                continue;
            }
        }
        let program = bench.compile();
        for analysis in analyses() {
            let row = run_row(&program, analysis);
            match &row.metrics {
                Some(m) => println!(
                    "{:<11} {:<9} {:>8} {:>10} {:>11} {:>11} {:>11}",
                    bench.name,
                    row.label,
                    fmt_time(row.outcome.total_time),
                    m.fail_casts,
                    m.reach_methods,
                    m.poly_calls,
                    m.call_edges
                ),
                None => println!(
                    "{:<11} {:<9} {:>8} {:>10} {:>11} {:>11} {:>11}",
                    bench.name,
                    row.label,
                    budget_label(),
                    "-",
                    "-",
                    "-",
                    "-"
                ),
            }
            let mut buf = String::new();
            json_row(&mut buf, bench.name, &row);
            json_rows.push(buf);
        }
        println!("{}", "-".repeat(78));
    }
    let path = std::env::var("CSC_BENCH_JSON").unwrap_or_else(|_| "BENCH_main.json".to_owned());
    let snapshot = format!(
        "{{\n  \"budget\": \"{}\",\n  \"rows\": [\n{}\n  ]\n}}\n",
        budget_label(),
        json_rows.join(",\n")
    );
    match std::fs::write(&path, snapshot) {
        Ok(()) => eprintln!("perf snapshot written to {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}
