//! Tables 1 & 2: efficiency and the four precision metrics for every
//! program × {CI, 2obj, 2type, Zipper-e, CSC}. For all numbers, smaller is
//! better; timed-out analyses print `>Ns` like the paper's `>2h`.

use csc_bench::{analyses, budget_label, fmt_time, run_row};

fn main() {
    let only: Option<String> = std::env::args().nth(1);
    println!(
        "{:<11} {:<9} {:>8} {:>10} {:>11} {:>11} {:>11}",
        "Program", "Analysis", "Time", "#fail-cast", "#reach-mtd", "#poly-call", "#call-edge"
    );
    println!("{}", "-".repeat(78));
    for bench in csc_workloads::suite() {
        if let Some(only) = &only {
            if only != bench.name {
                continue;
            }
        }
        let program = bench.compile();
        for analysis in analyses() {
            let row = run_row(&program, analysis);
            match &row.metrics {
                Some(m) => println!(
                    "{:<11} {:<9} {:>8} {:>10} {:>11} {:>11} {:>11}",
                    bench.name,
                    row.label,
                    fmt_time(row.outcome.total_time),
                    m.fail_casts,
                    m.reach_methods,
                    m.poly_calls,
                    m.call_edges
                ),
                None => println!(
                    "{:<11} {:<9} {:>8} {:>10} {:>11} {:>11} {:>11}",
                    bench.name,
                    row.label,
                    budget_label(),
                    "-",
                    "-",
                    "-",
                    "-"
                ),
            }
        }
        println!("{}", "-".repeat(78));
    }
}
