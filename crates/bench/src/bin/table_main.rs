//! Tables 1 & 2: efficiency and the four precision metrics for every
//! program × {CI, 2obj, 2type, Zipper-e, CSC}. For all numbers, smaller is
//! better; timed-out analyses print `>Ns` like the paper's `>2h`.
//!
//! Besides the human-readable table, the run writes a machine-readable
//! perf snapshot to `BENCH_main.json` (path overridable via
//! `CSC_BENCH_JSON`) so CI can track wall-clock and precision drift.
//! Every row records the propagation `threads` it ran with (`CSC_THREADS`;
//! CI pins 1 for the gate), so `bench_diff` only ever compares rows with
//! like thread counts. Opt-in extras: `CSC_XL=1` appends the
//! 10⁵+-statement `xl` program, and `CSC_PAR_ROWS=N` (N ≥ 2) re-runs
//! 2obj on the three slowest programs (columba, soot, gruntspud) with N
//! worker threads, recording the thread-scaling rows next to their
//! sequential counterparts. When `CSC_ENGINE` is unset the parallel rows
//! are recorded for *both* engines (async and bsp) so the snapshot tracks
//! them side by side; pin `CSC_ENGINE` to record just one.

use std::fmt::Write as _;

use csc_bench::{analyses, budget_label, fmt_time, run_row, run_row_opts, Row};
use csc_core::{Analysis, Engine, SolverOptions};

/// The programs whose 2obj rows dominate suite wall-clock; `CSC_PAR_ROWS`
/// re-measures exactly these with a parallel engine.
const PAR_ROW_PROGRAMS: [&str; 3] = ["columba", "soot", "gruntspud"];

/// Snapshot label for the engine a row ran on: `seq` below two threads
/// (neither parallel engine engages), else the resolved engine name.
/// `bench_diff` keys rows by it so async and bsp rows never collide.
fn engine_label(opts: &SolverOptions) -> &'static str {
    if opts.resolved_threads() <= 1 {
        "seq"
    } else {
        match opts.resolved_engine() {
            Engine::Async => "async",
            Engine::Bsp => "bsp",
        }
    }
}

fn json_row(out: &mut String, program: &str, row: &Row<'_>, engine: &str, cpu: &str, cores: u64) {
    let stats = &row.outcome.result.state.stats;
    // `stats.threads` is the *resolved* worker count (never the raw
    // `CSC_THREADS=0` auto value) — bench_diff keys rows by it, and a
    // literal 0 would alias rows from machines with different core
    // counts. Pinned by `resolved_thread_count_recorded` below.
    let _ = write!(
        out,
        "    {{\"program\": \"{program}\", \"analysis\": \"{}\", \"threads\": {}, \
         \"engine\": \"{engine}\", \
         \"time_secs\": {:.6}, \"completed\": {}, \
         \"parallel_secs\": {:.6}, \"coordinator_secs\": {:.6}, \
         \"commit_secs\": {:.6}, \
         \"propagations\": {}, \"pfg_edges\": {}, \"pointers\": {}, \
         \"scc_runs\": {}, \"sccs_collapsed\": {}, \"ptrs_collapsed\": {}, \
         \"pause_count\": {}, \"steal_count\": {}, \
         \"incr_fallbacks\": {}, \"resolve_secs\": {:.6}",
        row.label,
        stats.threads,
        row.outcome.total_time.as_secs_f64(),
        row.outcome.completed(),
        stats.parallel_secs,
        stats.coordinator_secs,
        stats.commit_secs,
        stats.propagations,
        stats.edges,
        stats.pointers,
        stats.scc_runs,
        stats.sccs_collapsed,
        stats.ptrs_collapsed,
        stats.pause_count,
        stats.steal_count,
        stats.incr_fallbacks,
        stats.resolve_secs,
    );
    // Memory-plane columns (PR 9): exact per-structure byte accounting from
    // the solver, plus the process peak RSS at the time the row finished.
    // VmHWM is a process-wide high-water mark, so later rows only reflect
    // growth beyond every earlier row — bench_diff still catches a diet
    // regression because the *first* row to blow the budget moves.
    let _ = write!(
        out,
        ", \"pts_bytes\": {}, \"edge_bytes\": {}, \"shared_chunks\": {}",
        stats.pts_bytes, stats.edge_bytes, stats.shared_chunks
    );
    if let Some(kb) = csc_core::peak_rss_kb() {
        let _ = write!(out, ", \"peak_rss_kb\": {kb}");
    }
    if let Some(m) = &row.metrics {
        let _ = write!(
            out,
            ", \"fail_casts\": {}, \"reach_methods\": {}, \"poly_calls\": {}, \
             \"call_edges\": {}",
            m.fail_casts, m.reach_methods, m.poly_calls, m.call_edges
        );
    }
    let _ = write!(out, ", \"cpu\": \"{cpu}\", \"cores\": {cores}");
    out.push('}');
}

fn print_row(program: &str, row: &Row<'_>, engine: &str) {
    let threads = row.outcome.result.state.stats.threads;
    let label = if threads > 1 {
        format!("{}({}t,{engine})", row.label, threads)
    } else {
        row.label.to_owned()
    };
    match &row.metrics {
        Some(m) => println!(
            "{:<11} {:<9} {:>8} {:>10} {:>11} {:>11} {:>11}",
            program,
            label,
            fmt_time(row.outcome.total_time),
            m.fail_casts,
            m.reach_methods,
            m.poly_calls,
            m.call_edges
        ),
        None => println!(
            "{:<11} {:<9} {:>8} {:>10} {:>11} {:>11} {:>11}",
            program,
            label,
            budget_label(),
            "-",
            "-",
            "-",
            "-"
        ),
    }
}

fn main() {
    let only: Option<String> = std::env::args().nth(1);
    let par_rows: usize = std::env::var("CSC_PAR_ROWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let (cpu, cores) = csc_bench::hardware_fingerprint();
    let mut json_rows: Vec<String> = Vec::new();
    println!(
        "{:<11} {:<9} {:>8} {:>10} {:>11} {:>11} {:>11}",
        "Program", "Analysis", "Time", "#fail-cast", "#reach-mtd", "#poly-call", "#call-edge"
    );
    println!("{}", "-".repeat(78));
    for bench in csc_bench::bench_programs() {
        if let Some(only) = &only {
            if only != bench.name {
                continue;
            }
        }
        let program = csc_workloads::compiled(bench.name).expect("suite benchmark compiles");
        let base_engine = engine_label(&csc_bench::solver_options());
        for analysis in analyses() {
            let row = run_row(program, analysis);
            print_row(bench.name, &row, base_engine);
            let mut buf = String::new();
            json_row(&mut buf, bench.name, &row, base_engine, &cpu, cores);
            json_rows.push(buf);
        }
        // Thread-scaling rows: re-run the dominating 2obj rows on the
        // parallel engines so the snapshot records the speedup. With
        // `CSC_ENGINE` unset both engines get a row (async next to bsp);
        // pinning the variable records just that engine. Skipped when the
        // base options already run at this thread count — the suite loop
        // produced that row, and a duplicate
        // (program, analysis, threads, engine) key would shadow it in
        // bench_diff.
        let base_threads = csc_bench::solver_options().resolved_threads();
        if par_rows >= 2 && par_rows != base_threads && PAR_ROW_PROGRAMS.contains(&bench.name) {
            let engines: Vec<Engine> = if std::env::var("CSC_ENGINE").is_ok() {
                vec![csc_bench::solver_options().resolved_engine()]
            } else {
                vec![Engine::Async, Engine::Bsp]
            };
            for engine in engines {
                let opts = csc_bench::solver_options()
                    .with_threads(par_rows)
                    .with_engine(engine);
                let label = engine_label(&opts);
                let row = run_row_opts(program, Analysis::KObj(2), opts);
                print_row(bench.name, &row, label);
                let mut buf = String::new();
                json_row(&mut buf, bench.name, &row, label, &cpu, cores);
                json_rows.push(buf);
            }
        }
        println!("{}", "-".repeat(78));
    }
    let path = std::env::var("CSC_BENCH_JSON").unwrap_or_else(|_| "BENCH_main.json".to_owned());
    let snapshot = format!(
        "{{\n  \"budget\": \"{}\",\n  \"rows\": [\n{}\n  ]\n}}\n",
        budget_label(),
        json_rows.join(",\n")
    );
    match std::fs::write(&path, snapshot) {
        Ok(()) => eprintln!("perf snapshot written to {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    /// `CSC_THREADS=0` (auto) must never record a literal 0 in the
    /// snapshot: `bench_diff` keys rows by `(program, analysis, threads)`,
    /// and a verbatim 0 would alias rows recorded on machines with
    /// different core counts. `json_row` reads `stats.threads`, which the
    /// solver seeds from the *resolved* count — pin that.
    #[test]
    fn resolved_thread_count_recorded() {
        let program = csc_workloads::compiled("hsqldb").unwrap();
        let opts = csc_core::SolverOptions::default().with_threads(0);
        let row = csc_bench::run_row_opts(program, csc_core::Analysis::Ci, opts);
        let threads = row.outcome.result.state.stats.threads;
        assert!(
            threads >= 1,
            "auto thread count must resolve, got {threads}"
        );
        assert_eq!(threads as usize, opts.resolved_threads());
    }
}
