//! Table 3: Zipper-e's selected methods vs the methods involved in
//! Cut-Shortcut's cut and shortcut edges, with their overlap, plus the
//! pre-/main-analysis time split of Zipper-e.

use csc_bench::{budget_label, fmt_time, run_row};
use csc_core::Analysis;

fn main() {
    println!(
        "{:<11} {:>10} {:>9} {:>9} {:>9} | {:>9} {:>9} {:>11}",
        "Program",
        "Zip total",
        "Zip pre",
        "Zip main",
        "selected",
        "CSC time",
        "involved",
        "overlap"
    );
    println!("{}", "-".repeat(88));
    for bench in csc_workloads::suite() {
        let program = bench.compile();
        let zipper = run_row(&program, Analysis::ZipperE);
        let csc = run_row(&program, Analysis::CutShortcut);
        let selected = zipper.outcome.selected.clone().unwrap_or_default();
        let involved = csc
            .outcome
            .csc
            .as_ref()
            .map(|s| s.involved_methods.clone())
            .unwrap_or_default();
        let overlap = involved.intersection(&selected).count();
        let overlap_pct = if involved.is_empty() {
            0.0
        } else {
            100.0 * overlap as f64 / involved.len() as f64
        };
        let (total, pre, main) = if zipper.outcome.completed() {
            let pre = zipper.outcome.pre_time.unwrap_or_default();
            (
                fmt_time(zipper.outcome.total_time),
                fmt_time(pre),
                fmt_time(zipper.outcome.total_time.saturating_sub(pre)),
            )
        } else {
            (budget_label(), "-".into(), "-".into())
        };
        println!(
            "{:<11} {:>10} {:>9} {:>9} {:>9} | {:>9} {:>9} {:>10.1}%",
            bench.name,
            total,
            pre,
            main,
            selected.len(),
            fmt_time(csc.outcome.total_time),
            involved.len(),
            overlap_pct
        );
    }
}
