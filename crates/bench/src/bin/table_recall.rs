//! §5.1 recall (soundness) experiment: execute every program, record the
//! dynamically reachable methods and call edges, and report the recall of
//! every analysis that completes within the budget. A sound analysis must
//! show 100% on both columns.

use csc_bench::{analyses, run_row};
use csc_interp::{check_recall, execute, InterpConfig};

fn main() {
    println!(
        "{:<11} {:>8} {:>8}  recall per analysis (methods% / edges%)",
        "Program", "dyn-mtd", "dyn-edge"
    );
    println!("{}", "-".repeat(100));
    for bench in csc_workloads::suite() {
        let program = bench.compile();
        let trace = match execute(&program, InterpConfig::default()) {
            Ok(t) => t,
            Err(e) => e.partial,
        };
        print!(
            "{:<11} {:>8} {:>8}  ",
            bench.name,
            trace.reached_methods.len(),
            trace.call_edges.len()
        );
        for analysis in analyses() {
            let row = run_row(&program, analysis);
            if !row.outcome.completed() {
                print!("{}: (budget)  ", row.label);
                continue;
            }
            let report = check_recall(
                &trace,
                &row.outcome.result.state.reachable_methods_projected(),
                &row.outcome.result.state.call_edges_projected(),
            );
            print!(
                "{}: {:.0}%/{:.0}%  ",
                row.label,
                report.method_recall_pct(),
                report.edge_recall_pct()
            );
        }
        println!();
    }
}
