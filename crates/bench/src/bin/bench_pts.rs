//! `bench_pts` — micro-harness for the [`csc_core::PointsToSet`] union
//! kernels (the innermost loops of the whole solver).
//!
//! Times four pairings the propagation engine actually executes:
//!
//! * `bits∪bits widen`   — `union_with` on two dense bitmaps (the
//!   accumulator path the chunked no-bounds-check kernel serves),
//! * `bits∪bits delta`   — `union_delta` on the same operands (the
//!   serial delta-extraction path),
//! * `bits∪bits subset`  — the no-op union fast path at fixpoint,
//! * `small∪small merge` — the sorted-vector merge below `SMALL_MAX`.
//!
//! Operands are rebuilt from a fixed xorshift seed each iteration batch,
//! so runs are comparable across commits; a checksum of every result is
//! printed to keep the optimizer from deleting the work. Iteration count
//! scales with `CSC_PTS_ITERS` (default 2000).
//!
//! A second section compares the two large-set representations
//! (`legacy` whole-range bitmap vs the default `chunked` hybrid) on
//! three element distributions the solver produces — `sparse` (few ids
//! scattered over a wide universe), `clustered` (ids bunched into a few
//! hot chunks, the common allocation-site locality shape), and `dense`
//! (most of a narrow universe) — reporting ns/union and the exact heap
//! bytes per set, so the memory-diet trade is visible next to the speed
//! trade.

use std::time::Instant;

use csc_core::{PointsToSet, PtsRepr};

/// Deterministic xorshift32 — no external RNG, identical streams on every
/// run and machine.
struct XorShift(u32);

impl XorShift {
    fn next(&mut self) -> u32 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.0 = x;
        x
    }
}

/// A pseudo-random set of `len` elements drawn from `0..universe`.
fn random_set(rng: &mut XorShift, len: usize, universe: u32) -> PointsToSet {
    let mut s = PointsToSet::new();
    while s.len() < len {
        s.insert(rng.next() % universe);
    }
    s
}

fn bench(label: &str, iters: u32, mut f: impl FnMut() -> u64) {
    // One warm-up batch, then the timed run.
    let mut checksum = f();
    let start = Instant::now();
    for _ in 0..iters {
        checksum = checksum.wrapping_add(f());
    }
    let elapsed = start.elapsed();
    println!(
        "{label:<20} {:>10.1} ns/op   (iters={iters}, checksum={checksum})",
        elapsed.as_nanos() as f64 / f64::from(iters),
    );
}

fn main() {
    let iters: u32 = std::env::var("CSC_PTS_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    let mut rng = XorShift(0x9e37_79b9);

    // Dense operands: ~4k elements over a 64k universe — 1024 words each,
    // comfortably past promotion, the shape of a hot library pointer.
    let big_a = random_set(&mut rng, 4096, 65_536);
    let big_b = random_set(&mut rng, 4096, 65_536);
    // Small operands: the sub-`SMALL_MAX` sorted-vector regime.
    let small_a = random_set(&mut rng, 48, 65_536);
    let small_b = random_set(&mut rng, 48, 65_536);

    bench("bits∪bits widen", iters, || {
        let mut s = big_a.clone();
        s.union_with(&big_b);
        s.len() as u64
    });
    bench("bits∪bits delta", iters, || {
        let mut s = big_a.clone();
        let d = s.union_delta(&big_b).map_or(0, |d| d.len());
        (s.len() + d) as u64
    });
    bench("bits∪bits subset", iters, || {
        // `big_a ∪ big_a` is the fixpoint no-op the subset test answers.
        let mut s = big_a.clone();
        u64::from(s.union_with(&big_a))
    });
    bench("small∪small merge", iters, || {
        let mut s = small_a.clone();
        s.union_with(&small_b);
        s.len() as u64
    });

    // ---- representation comparison --------------------------------------
    //
    // Each distribution is rebuilt under each representation (the mode is
    // read at promotion time, so operand construction must happen after
    // `set_default_repr`). The rng is reseeded per pairing so both reprs
    // union element-identical operands.
    println!();
    println!(
        "{:<11} {:<9} {:>12} {:>13} {:>9}",
        "Distrib", "Repr", "ns/union", "bytes/set", "elems"
    );
    for (dist, len, universe) in [
        // Few ids scattered wide: one sparse chunk per few elements.
        ("sparse", 256usize, 1 << 20u32),
        // Allocation-site locality: many ids inside a handful of chunks.
        ("clustered", 4096, 1 << 20),
        // Most of a narrow universe: every chunk dense.
        ("dense", 49_152, 1 << 16),
    ] {
        for repr in [PtsRepr::Legacy, PtsRepr::Chunked] {
            csc_core::pts::set_default_repr(repr);
            let mut rng = XorShift(0xdead_beef ^ len as u32);
            let (a, b) = if dist == "clustered" {
                // Draw from four 4096-id windows spread across the
                // universe — the chunked layout's best case, the
                // whole-range bitmap's worst.
                let windows: Vec<u32> = (0..4).map(|_| (rng.next() % universe) & !0xfff).collect();
                let clustered = |rng: &mut XorShift| {
                    let mut s = PointsToSet::new();
                    while s.len() < len {
                        let w = windows[(rng.next() % 4) as usize];
                        s.insert(w + (rng.next() & 0xfff));
                    }
                    s
                };
                (clustered(&mut rng), clustered(&mut rng))
            } else {
                (
                    random_set(&mut rng, len, universe),
                    random_set(&mut rng, len, universe),
                )
            };
            let label = match repr {
                PtsRepr::Legacy => "legacy",
                PtsRepr::Chunked => "chunked",
            };
            let mut checksum = 0u64;
            let start = Instant::now();
            for _ in 0..iters {
                let mut s = a.clone();
                s.union_with(&b);
                checksum = checksum.wrapping_add(s.len() as u64);
            }
            let elapsed = start.elapsed();
            let mut merged = a.clone();
            merged.union_with(&b);
            println!(
                "{dist:<11} {label:<9} {:>12.1} {:>13} {:>9}   (checksum={checksum})",
                elapsed.as_nanos() as f64 / f64::from(iters),
                merged.heap_bytes(),
                merged.len(),
            );
        }
    }
    csc_core::pts::set_default_repr(PtsRepr::Chunked);
}
