//! Figure 12: analysis time (in seconds) of CSC, CI, Zipper-e, 2type, 2obj
//! per program. One line per program, one column per analysis — the same
//! series the paper plots.

use csc_bench::{budget_label, fmt_time, run_row};
use csc_core::Analysis;

fn main() {
    // Figure 12's legend order.
    let order = [
        Analysis::CutShortcut,
        Analysis::Ci,
        Analysis::ZipperE,
        Analysis::KType(2),
        Analysis::KObj(2),
    ];
    println!(
        "{:<11} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "Program", "CSC", "CI", "Zipper-e", "2type", "2obj"
    );
    println!("{}", "-".repeat(62));
    for bench in csc_workloads::suite() {
        let program = csc_workloads::compiled(bench.name).expect("suite benchmark compiles");
        let mut cells: Vec<String> = Vec::new();
        for analysis in order.clone() {
            let row = run_row(program, analysis);
            cells.push(if row.outcome.completed() {
                fmt_time(row.outcome.total_time)
            } else {
                budget_label()
            });
        }
        println!(
            "{:<11} {:>9} {:>9} {:>9} {:>9} {:>9}",
            bench.name, cells[0], cells[1], cells[2], cells[3], cells[4]
        );
    }
}
