//! CI perf-regression gate: diffs a fresh `BENCH_main.json` against the
//! committed baseline snapshot and fails (exit code 1) when any
//! (program, analysis) row regressed by more than the tolerance in
//! wall-clock time or propagation count.
//!
//! ```text
//! bench_diff <baseline.json> <fresh.json> [--time-tol PCT] [--prop-tol PCT]
//! ```
//!
//! Defaults: 10% for both, per the roadmap's CI perf-tracking item. The
//! tolerances can also be set via `CSC_DIFF_TIME_TOL` / `CSC_DIFF_PROP_TOL`
//! (flags win). Propagation counts are deterministic, so their check is
//! exact modulo the tolerance; wall-clock is machine-dependent, so the
//! time tolerance is only meaningful against a baseline recorded on
//! comparable hardware (CI compares runner against runner via the cached
//! snapshot, and regenerates the baseline when the cache rotates).
//!
//! Rows that timed out (`completed: false`) are compared on completion
//! status only: a row that completed in the baseline but times out fresh
//! is always a failure; a row that was already timed out is skipped.
//!
//! Rows are keyed by `(program, analysis, threads)` — a parallel row
//! (threads ≥ 2 on the sharded engine, whose propagation counts are
//! deterministic per thread count but differ from the sequential
//! engine's) is only ever compared against a baseline row with the same
//! thread count. Snapshots predating the `threads` field parse as
//! `threads = 1`.
//!
//! The `parallel_secs` / `coordinator_secs` / `commit_secs` phase split
//! each row carries is **informational**: it is parsed, carried through,
//! and printed next to the comparison (the fresh run's coordinator share
//! and the commit section's share of the coordinator) so phase drift is
//! visible in CI logs, but it never trips a tolerance — the split is a
//! decomposition of wall-clock, and wall-clock is already gated.
//! Snapshots predating the fields parse as absent and print `-`.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// One parsed snapshot row.
#[derive(Clone, Debug)]
struct Row {
    time_secs: f64,
    completed: bool,
    propagations: u64,
    /// Seconds inside parallel phases (absent on old snapshots).
    parallel_secs: Option<f64>,
    /// Seconds on the coordinator (absent on old snapshots).
    coordinator_secs: Option<f64>,
    /// Seconds of the coordinator spent in the per-round commit section
    /// (absent on snapshots predating the sharded commit plane).
    commit_secs: Option<f64>,
}

impl Row {
    /// The coordinator's share of wall-clock, when the phase split is
    /// recorded: `coordinator / (parallel + coordinator)`.
    fn coord_share(&self) -> Option<f64> {
        let (p, c) = (self.parallel_secs?, self.coordinator_secs?);
        if p + c <= 0.0 {
            return None;
        }
        Some(c / (p + c))
    }

    /// The commit section's share of the coordinator, when recorded:
    /// `commit / coordinator`.
    fn commit_share(&self) -> Option<f64> {
        let (c, k) = (self.coordinator_secs?, self.commit_secs?);
        if c <= 0.0 {
            return None;
        }
        Some(k / c)
    }
}

/// Extracts `"key": <value>` from a single JSON row line. The snapshot is
/// machine-written with one row per line (see `table_main`), so a scanning
/// parser is enough — no external JSON dependency in the container.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"'))
}

/// Row key: `(program, analysis, threads)`.
type Key = (String, String, u64);

fn parse(path: &str) -> BTreeMap<Key, Row> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read snapshot {path}: {e}"));
    let mut rows = BTreeMap::new();
    for line in text.lines() {
        if !line.trim_start().starts_with("{\"program\"") {
            continue;
        }
        let program = field(line, "program").expect("program field").to_owned();
        let analysis = field(line, "analysis").expect("analysis field").to_owned();
        let threads: u64 = field(line, "threads")
            .and_then(|v| v.parse().ok())
            .unwrap_or(1);
        let row = Row {
            time_secs: field(line, "time_secs")
                .and_then(|v| v.parse().ok())
                .expect("time_secs field"),
            completed: field(line, "completed") == Some("true"),
            propagations: field(line, "propagations")
                .and_then(|v| v.parse().ok())
                .expect("propagations field"),
            parallel_secs: field(line, "parallel_secs").and_then(|v| v.parse().ok()),
            coordinator_secs: field(line, "coordinator_secs").and_then(|v| v.parse().ok()),
            commit_secs: field(line, "commit_secs").and_then(|v| v.parse().ok()),
        };
        rows.insert((program, analysis, threads), row);
    }
    assert!(!rows.is_empty(), "no rows parsed from {path}");
    rows
}

fn tol(flag_val: Option<f64>, env: &str, default: f64) -> f64 {
    flag_val
        .or_else(|| std::env::var(env).ok().and_then(|s| s.parse().ok()))
        .unwrap_or(default)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&String> = Vec::new();
    let (mut time_flag, mut prop_flag) = (None, None);
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            // A present-but-unparsable tolerance must be a hard error: CI
            // relies on these flags to select which gate applies, and a
            // silent fallback to the default would gate wall-clock against
            // a snapshot from incomparable hardware.
            flag @ ("--time-tol" | "--prop-tol") => {
                let Some(value) = it.next() else {
                    eprintln!("bench_diff: {flag} requires a percentage value");
                    return ExitCode::from(2);
                };
                let Ok(pct) = value.parse::<f64>() else {
                    eprintln!("bench_diff: cannot parse {flag} value {value:?} as a percentage");
                    return ExitCode::from(2);
                };
                if flag == "--time-tol" {
                    time_flag = Some(pct);
                } else {
                    prop_flag = Some(pct);
                }
            }
            _ => paths.push(a),
        }
    }
    let [baseline_path, fresh_path] = paths[..] else {
        eprintln!(
            "usage: bench_diff <baseline.json> <fresh.json> [--time-tol PCT] [--prop-tol PCT]"
        );
        return ExitCode::from(2);
    };
    let time_tol = tol(time_flag, "CSC_DIFF_TIME_TOL", 10.0);
    let prop_tol = tol(prop_flag, "CSC_DIFF_PROP_TOL", 10.0);

    let baseline = parse(baseline_path);
    let fresh = parse(fresh_path);
    let mut failures = 0usize;
    println!(
        "{:<11} {:<9} {:>3} {:>12} {:>12} {:>9} {:>14} {:>14} {:>9} {:>7} {:>7}",
        "Program",
        "Analysis",
        "Thr",
        "base-time",
        "fresh-time",
        "Δtime%",
        "base-props",
        "fresh-props",
        "Δprops%",
        "coord%",
        "commit%"
    );
    for ((program, analysis, threads), base) in &baseline {
        let Some(new) = fresh.get(&(program.clone(), analysis.clone(), *threads)) else {
            println!("{program:<11} {analysis:<9} {threads:>3} MISSING from fresh snapshot");
            failures += 1;
            continue;
        };
        if !base.completed {
            println!("{program:<11} {analysis:<9} {threads:>3} skipped (baseline timed out)");
            continue;
        }
        if !new.completed {
            println!("{program:<11} {analysis:<9} {threads:>3} REGRESSION: now times out");
            failures += 1;
            continue;
        }
        let dt = (new.time_secs - base.time_secs) / base.time_secs.max(1e-9) * 100.0;
        let dp = (new.propagations as f64 - base.propagations as f64)
            / (base.propagations as f64).max(1.0)
            * 100.0;
        let time_bad = dt > time_tol;
        let prop_bad = dp > prop_tol;
        // Informational only — the phase split never trips a tolerance.
        let coord = new
            .coord_share()
            .map(|s| format!("{:>6.1}%", s * 100.0))
            .unwrap_or_else(|| format!("{:>7}", "-"));
        let commit = new
            .commit_share()
            .map(|s| format!("{:>6.1}%", s * 100.0))
            .unwrap_or_else(|| format!("{:>7}", "-"));
        println!(
            "{program:<11} {analysis:<9} {threads:>3} {:>11.3}s {:>11.3}s {:>8.1}% {:>14} {:>14} \
             {:>8.1}% {coord} {commit}{}",
            base.time_secs,
            new.time_secs,
            dt,
            base.propagations,
            new.propagations,
            dp,
            match (time_bad, prop_bad) {
                (true, true) => "  <- TIME+PROP REGRESSION",
                (true, false) => "  <- TIME REGRESSION",
                (false, true) => "  <- PROP REGRESSION",
                (false, false) => "",
            }
        );
        failures += usize::from(time_bad) + usize::from(prop_bad);
    }
    for key in fresh.keys() {
        if !baseline.contains_key(key) {
            println!(
                "{:<11} {:<9} {:>3} new row (no baseline)",
                key.0, key.1, key.2
            );
        }
    }
    if failures > 0 {
        eprintln!(
            "bench_diff: {failures} regression(s) beyond tolerance \
             (time {time_tol}%, propagations {prop_tol}%)"
        );
        return ExitCode::FAILURE;
    }
    println!(
        "bench_diff: no regressions beyond tolerance (time {time_tol}%, propagations {prop_tol}%)"
    );
    ExitCode::SUCCESS
}
