//! CI perf-regression gate: diffs a fresh `BENCH_main.json` against the
//! committed baseline snapshot and fails (exit code 1) when any
//! (program, analysis) row regressed by more than the tolerance in
//! wall-clock time or propagation count.
//!
//! ```text
//! bench_diff <baseline.json> <fresh.json> [--time-tol PCT] [--prop-tol PCT] [--mem-tol PCT]
//! ```
//!
//! Defaults: 10% for all three, per the roadmap's CI perf-tracking item. The
//! tolerances can also be set via `CSC_DIFF_TIME_TOL` / `CSC_DIFF_PROP_TOL`
//! (flags win). Propagation counts are deterministic, so their check is
//! exact modulo the tolerance; wall-clock is machine-dependent, so the
//! time tolerance is only meaningful against a baseline recorded on
//! comparable hardware (CI compares runner against runner via the cached
//! snapshot, and regenerates the baseline when the cache rotates).
//!
//! Rows that timed out (`completed: false`) are compared on completion
//! status only: a row that completed in the baseline but times out fresh
//! is always a failure; a row that was already timed out is skipped.
//!
//! Rows are keyed by `(program, analysis, threads, engine)` — a parallel
//! row (threads ≥ 2, whose propagation counts are deterministic per
//! thread count on the BSP engine but differ from the sequential
//! engine's) is only ever compared against a baseline row with the same
//! thread count and engine. Snapshots predating the `threads` field
//! parse as `threads = 1`; rows predating the `engine` field parse as
//! `seq` (one thread) or `bsp` (more — the only parallel engine back
//! then). A baseline row whose engine no longer appears in the fresh
//! snapshot at the same `(program, analysis, threads)` is skipped with a
//! note rather than failed: flipping the recorded engine set is a
//! deliberate harness change, not a perf regression.
//!
//! Two comparisons are *warnings*, never failures:
//!
//! * wall-clock drift when the two snapshots carry different hardware
//!   fingerprints (`cpu`/`cores` fields) — cross-machine timings are not
//!   comparable, while propagation counts still are;
//! * propagation drift on `engine: async` rows — the work-stealing
//!   engine's propagation count depends on message-arrival order, so it
//!   is reproducible in aggregate but not exactly (results stay
//!   bit-identical; only the operation count wobbles).
//!
//! The `parallel_secs` / `coordinator_secs` / `commit_secs` phase split
//! each row carries is **informational**: it is parsed, carried through,
//! and printed next to the comparison (the fresh run's coordinator share
//! and the commit section's share of the coordinator) so phase drift is
//! visible in CI logs, but it never trips a tolerance — the split is a
//! decomposition of wall-clock, and wall-clock is already gated.
//! Snapshots predating the fields parse as absent and print `-`.
//!
//! The incremental-resolve counters (`incr_fallbacks`, `resolve_secs`)
//! are likewise informational: from-scratch table rows record 0 for
//! both, and rows produced by incremental harnesses surface how often
//! the localized path bailed. Old snapshots predate the fields and
//! print `-`.
//!
//! The memory columns (`peak_rss_kb`, `pts_bytes`, `edge_bytes`,
//! `shared_chunks`) gate with `--mem-tol` / `CSC_DIFF_MEM_TOL`:
//! `peak_rss_kb` growth beyond the tolerance fails the run when the
//! hardware fingerprints match (downgraded to a warning otherwise, like
//! wall-clock — RSS depends on the allocator and page behaviour), and
//! `pts_bytes` growth fails on deterministic engines (warning on
//! `async` rows, whose set-capacity history is schedule-dependent).
//! `edge_bytes` and `shared_chunks` are informational. Rows where either
//! snapshot predates a memory field print `-` for it and never gate.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// One parsed snapshot row.
#[derive(Clone, Debug)]
struct Row {
    time_secs: f64,
    completed: bool,
    propagations: u64,
    /// Seconds inside parallel phases (absent on old snapshots).
    parallel_secs: Option<f64>,
    /// Seconds on the coordinator (absent on old snapshots).
    coordinator_secs: Option<f64>,
    /// Seconds of the coordinator spent in the per-round commit section
    /// (absent on snapshots predating the sharded commit plane).
    commit_secs: Option<f64>,
    /// Incremental re-solves that fell back to a full solve (absent on
    /// snapshots predating the incremental resolver; 0 on table rows,
    /// which always solve from scratch).
    incr_fallbacks: Option<u64>,
    /// Seconds of the most recent incremental re-solve (absent on old
    /// snapshots).
    resolve_secs: Option<f64>,
    /// Process peak RSS (kB) when the row finished (absent on snapshots
    /// predating the memory plane, and on non-Linux recorders).
    peak_rss_kb: Option<u64>,
    /// Exact heap bytes of every live points-to set (absent on old
    /// snapshots).
    pts_bytes: Option<u64>,
    /// Exact heap bytes of the PFG edge structures (absent on old
    /// snapshots).
    edge_bytes: Option<u64>,
    /// Dense chunk blocks reached through more than one set (absent on
    /// old snapshots).
    shared_chunks: Option<u64>,
}

impl Row {
    /// The coordinator's share of wall-clock, when the phase split is
    /// recorded: `coordinator / (parallel + coordinator)`.
    fn coord_share(&self) -> Option<f64> {
        let (p, c) = (self.parallel_secs?, self.coordinator_secs?);
        if p + c <= 0.0 {
            return None;
        }
        Some(c / (p + c))
    }

    /// The commit section's share of the coordinator, when recorded:
    /// `commit / coordinator`.
    fn commit_share(&self) -> Option<f64> {
        let (c, k) = (self.coordinator_secs?, self.commit_secs?);
        if c <= 0.0 {
            return None;
        }
        Some(k / c)
    }
}

/// Extracts `"key": <value>` from a single JSON row line. The snapshot is
/// machine-written with one row per line (see `table_main`), so a scanning
/// parser is enough — no external JSON dependency in the container.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"'))
}

/// Row key: `(program, analysis, threads, engine)`.
type Key = (String, String, u64, String);

/// One parsed snapshot: its rows plus the hardware fingerprint recorded
/// in them (absent on snapshots predating the `cpu`/`cores` fields).
struct Snapshot {
    rows: BTreeMap<Key, Row>,
    fingerprint: Option<(String, u64)>,
}

fn parse(path: &str) -> Snapshot {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read snapshot {path}: {e}"));
    let mut rows = BTreeMap::new();
    let mut fingerprint = None;
    for line in text.lines() {
        if !line.trim_start().starts_with("{\"program\"") {
            continue;
        }
        let program = field(line, "program").expect("program field").to_owned();
        let analysis = field(line, "analysis").expect("analysis field").to_owned();
        let threads: u64 = field(line, "threads")
            .and_then(|v| v.parse().ok())
            .unwrap_or(1);
        // Rows predating the engine field: one thread was the sequential
        // engine, more was the (only) sharded BSP engine.
        let engine = field(line, "engine")
            .map(str::to_owned)
            .unwrap_or_else(|| if threads <= 1 { "seq" } else { "bsp" }.to_owned());
        if fingerprint.is_none() {
            if let (Some(cpu), Some(cores)) = (
                field(line, "cpu"),
                field(line, "cores").and_then(|v| v.parse::<u64>().ok()),
            ) {
                fingerprint = Some((cpu.to_owned(), cores));
            }
        }
        let row = Row {
            time_secs: field(line, "time_secs")
                .and_then(|v| v.parse().ok())
                .expect("time_secs field"),
            completed: field(line, "completed") == Some("true"),
            propagations: field(line, "propagations")
                .and_then(|v| v.parse().ok())
                .expect("propagations field"),
            parallel_secs: field(line, "parallel_secs").and_then(|v| v.parse().ok()),
            coordinator_secs: field(line, "coordinator_secs").and_then(|v| v.parse().ok()),
            commit_secs: field(line, "commit_secs").and_then(|v| v.parse().ok()),
            incr_fallbacks: field(line, "incr_fallbacks").and_then(|v| v.parse().ok()),
            resolve_secs: field(line, "resolve_secs").and_then(|v| v.parse().ok()),
            peak_rss_kb: field(line, "peak_rss_kb").and_then(|v| v.parse().ok()),
            pts_bytes: field(line, "pts_bytes").and_then(|v| v.parse().ok()),
            edge_bytes: field(line, "edge_bytes").and_then(|v| v.parse().ok()),
            shared_chunks: field(line, "shared_chunks").and_then(|v| v.parse().ok()),
        };
        rows.insert((program, analysis, threads, engine), row);
    }
    assert!(!rows.is_empty(), "no rows parsed from {path}");
    Snapshot { rows, fingerprint }
}

fn tol(flag_val: Option<f64>, env: &str, default: f64) -> f64 {
    flag_val
        .or_else(|| std::env::var(env).ok().and_then(|s| s.parse().ok()))
        .unwrap_or(default)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&String> = Vec::new();
    let (mut time_flag, mut prop_flag, mut mem_flag) = (None, None, None);
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            // A present-but-unparsable tolerance must be a hard error: CI
            // relies on these flags to select which gate applies, and a
            // silent fallback to the default would gate wall-clock against
            // a snapshot from incomparable hardware.
            flag @ ("--time-tol" | "--prop-tol" | "--mem-tol") => {
                let Some(value) = it.next() else {
                    eprintln!("bench_diff: {flag} requires a percentage value");
                    return ExitCode::from(2);
                };
                let Ok(pct) = value.parse::<f64>() else {
                    eprintln!("bench_diff: cannot parse {flag} value {value:?} as a percentage");
                    return ExitCode::from(2);
                };
                match flag {
                    "--time-tol" => time_flag = Some(pct),
                    "--prop-tol" => prop_flag = Some(pct),
                    _ => mem_flag = Some(pct),
                }
            }
            _ => paths.push(a),
        }
    }
    let [baseline_path, fresh_path] = paths[..] else {
        eprintln!(
            "usage: bench_diff <baseline.json> <fresh.json> \
             [--time-tol PCT] [--prop-tol PCT] [--mem-tol PCT]"
        );
        return ExitCode::from(2);
    };
    let time_tol = tol(time_flag, "CSC_DIFF_TIME_TOL", 10.0);
    let prop_tol = tol(prop_flag, "CSC_DIFF_PROP_TOL", 10.0);
    let mem_tol = tol(mem_flag, "CSC_DIFF_MEM_TOL", 10.0);

    let baseline = parse(baseline_path);
    let fresh = parse(fresh_path);
    // Wall-clock is only gated when both snapshots come from the same
    // hardware; otherwise (or when either predates the fingerprint
    // fields) time regressions print as warnings and never fail the run.
    let same_hardware = match (&baseline.fingerprint, &fresh.fingerprint) {
        (Some(b), Some(f)) => b == f,
        _ => false,
    };
    if !same_hardware {
        eprintln!(
            "bench_diff: hardware fingerprints differ or are missing \
             (baseline {:?}, fresh {:?}); wall-clock drift downgraded to warnings",
            baseline.fingerprint, fresh.fingerprint
        );
    }
    let mut failures = 0usize;
    let mut warnings = 0usize;
    println!(
        "{:<11} {:<9} {:>3} {:<5} {:>12} {:>12} {:>9} {:>14} {:>14} {:>9} {:>7} {:>7} {:>7} {:>8} \
         {:>10} {:>7} {:>9} {:>7} {:>8} {:>7}",
        "Program",
        "Analysis",
        "Thr",
        "Eng",
        "base-time",
        "fresh-time",
        "Δtime%",
        "base-props",
        "fresh-props",
        "Δprops%",
        "coord%",
        "commit%",
        "fallbk",
        "resolve",
        "rss-kb",
        "Δrss%",
        "pts-MB",
        "Δpts%",
        "edge-MB",
        "shared"
    );
    for ((program, analysis, threads, engine), base) in &baseline.rows {
        let key = (program.clone(), analysis.clone(), *threads, engine.clone());
        let Some(new) = fresh.rows.get(&key) else {
            // The same configuration recorded under a different engine
            // means the harness's engine set changed (e.g. dual-engine
            // par rows replacing bsp-only ones) — note it, don't fail.
            let engine_switched = fresh
                .rows
                .keys()
                .any(|(p, a, t, _)| p == program && a == analysis && t == threads);
            if engine_switched {
                println!(
                    "{program:<11} {analysis:<9} {threads:>3} {engine:<5} skipped \
                     (engine set changed in fresh snapshot)"
                );
            } else {
                println!(
                    "{program:<11} {analysis:<9} {threads:>3} {engine:<5} \
                     MISSING from fresh snapshot"
                );
                failures += 1;
            }
            continue;
        };
        if !base.completed {
            println!(
                "{program:<11} {analysis:<9} {threads:>3} {engine:<5} skipped \
                 (baseline timed out)"
            );
            continue;
        }
        if !new.completed {
            println!(
                "{program:<11} {analysis:<9} {threads:>3} {engine:<5} REGRESSION: now times out"
            );
            failures += 1;
            continue;
        }
        let dt = (new.time_secs - base.time_secs) / base.time_secs.max(1e-9) * 100.0;
        let dp = (new.propagations as f64 - base.propagations as f64)
            / (base.propagations as f64).max(1.0)
            * 100.0;
        // Async propagation counts are schedule-dependent (results are
        // not) — drift there warns instead of failing.
        let (mut time_bad, mut prop_bad) = (dt > time_tol, dp > prop_tol);
        let (mut time_warn, mut prop_warn) = (false, false);
        if time_bad && !same_hardware {
            time_bad = false;
            time_warn = true;
        }
        if prop_bad && engine == "async" {
            prop_bad = false;
            prop_warn = true;
        }
        // Informational only — the phase split never trips a tolerance.
        let coord = new
            .coord_share()
            .map(|s| format!("{:>6.1}%", s * 100.0))
            .unwrap_or_else(|| format!("{:>7}", "-"));
        let commit = new
            .commit_share()
            .map(|s| format!("{:>6.1}%", s * 100.0))
            .unwrap_or_else(|| format!("{:>7}", "-"));
        // Informational incremental-resolve counters (never gated).
        let fallbk = new
            .incr_fallbacks
            .map(|n| format!("{n:>7}"))
            .unwrap_or_else(|| format!("{:>7}", "-"));
        let resolve = new
            .resolve_secs
            .map(|s| format!("{s:>7.3}s"))
            .unwrap_or_else(|| format!("{:>8}", "-"));
        // Memory gate: a delta only exists when *both* snapshots carry the
        // field — a row from an old snapshot prints `-` and never gates.
        let pct = |b: u64, f: u64| (f as f64 - b as f64) / (b as f64).max(1.0) * 100.0;
        let drss = base
            .peak_rss_kb
            .zip(new.peak_rss_kb)
            .map(|(b, f)| pct(b, f));
        let dpts = base.pts_bytes.zip(new.pts_bytes).map(|(b, f)| pct(b, f));
        let (mut rss_bad, mut pts_bad) = (
            drss.is_some_and(|d| d > mem_tol),
            dpts.is_some_and(|d| d > mem_tol),
        );
        let (mut rss_warn, mut pts_warn) = (false, false);
        // RSS depends on the allocator and page behaviour — only gate it
        // runner-against-runner, like wall-clock.
        if rss_bad && !same_hardware {
            rss_bad = false;
            rss_warn = true;
        }
        // Async set-capacity history is schedule-dependent, like its
        // propagation count.
        if pts_bad && engine == "async" {
            pts_bad = false;
            pts_warn = true;
        }
        let mb = |b: u64| b as f64 / (1024.0 * 1024.0);
        let rss = new
            .peak_rss_kb
            .map(|kb| format!("{kb:>10}"))
            .unwrap_or_else(|| format!("{:>10}", "-"));
        let rss_d = drss
            .map(|d| format!("{d:>6.1}%"))
            .unwrap_or_else(|| format!("{:>7}", "-"));
        let pts = new
            .pts_bytes
            .map(|b| format!("{:>9.2}", mb(b)))
            .unwrap_or_else(|| format!("{:>9}", "-"));
        let pts_d = dpts
            .map(|d| format!("{d:>6.1}%"))
            .unwrap_or_else(|| format!("{:>7}", "-"));
        let edge = new
            .edge_bytes
            .map(|b| format!("{:>8.2}", mb(b)))
            .unwrap_or_else(|| format!("{:>8}", "-"));
        let shared = new
            .shared_chunks
            .map(|n| format!("{n:>7}"))
            .unwrap_or_else(|| format!("{:>7}", "-"));
        let mut note = String::new();
        if time_bad || prop_bad {
            note.push_str(match (time_bad, prop_bad) {
                (true, true) => "  <- TIME+PROP REGRESSION",
                (true, false) => "  <- TIME REGRESSION",
                _ => "  <- PROP REGRESSION",
            });
        }
        if rss_bad || pts_bad {
            note.push_str(match (rss_bad, pts_bad) {
                (true, true) => "  <- RSS+PTS MEMORY REGRESSION",
                (true, false) => "  <- RSS MEMORY REGRESSION",
                _ => "  <- PTS MEMORY REGRESSION",
            });
        }
        if time_warn {
            note.push_str("  (time drift: WARNING, hardware differs)");
        }
        if prop_warn {
            note.push_str("  (prop drift: WARNING, async schedule-dependent)");
        }
        if rss_warn {
            note.push_str("  (rss drift: WARNING, hardware differs)");
        }
        if pts_warn {
            note.push_str("  (pts-bytes drift: WARNING, async schedule-dependent)");
        }
        println!(
            "{program:<11} {analysis:<9} {threads:>3} {engine:<5} {:>11.3}s {:>11.3}s {:>8.1}% \
             {:>14} {:>14} {:>8.1}% {coord} {commit} {fallbk} {resolve} \
             {rss} {rss_d} {pts} {pts_d} {edge} {shared}{note}",
            base.time_secs, new.time_secs, dt, base.propagations, new.propagations, dp,
        );
        failures += usize::from(time_bad)
            + usize::from(prop_bad)
            + usize::from(rss_bad)
            + usize::from(pts_bad);
        warnings += usize::from(time_warn)
            + usize::from(prop_warn)
            + usize::from(rss_warn)
            + usize::from(pts_warn);
    }
    for key in fresh.rows.keys() {
        if !baseline.rows.contains_key(key) {
            println!(
                "{:<11} {:<9} {:>3} {:<5} new row (no baseline)",
                key.0, key.1, key.2, key.3
            );
        }
    }
    if warnings > 0 {
        eprintln!("bench_diff: {warnings} warning(s) (not gated)");
    }
    if failures > 0 {
        eprintln!(
            "bench_diff: {failures} regression(s) beyond tolerance \
             (time {time_tol}%, propagations {prop_tol}%, memory {mem_tol}%)"
        );
        return ExitCode::FAILURE;
    }
    println!(
        "bench_diff: no regressions beyond tolerance \
         (time {time_tol}%, propagations {prop_tol}%, memory {mem_tol}%)"
    );
    ExitCode::SUCCESS
}
