//! §5.1 ablation: the share of CSC's precision improvement over CI that
//! each pattern (field access / container access / local flow) delivers on
//! its own, per client — reproducing the paper's per-pattern impact
//! percentages.

use csc_bench::{budget, run_row};
use csc_core::{run_analysis, Analysis, CscConfig, PrecisionMetrics};

fn pct(ci: usize, single: usize, full: usize) -> f64 {
    let full_gain = ci.saturating_sub(full);
    if full_gain == 0 {
        return 0.0;
    }
    100.0 * ci.saturating_sub(single) as f64 / full_gain as f64
}

fn main() {
    println!(
        "{:<11} {:<10} {:>9} {:>9} {:>9} {:>9}  (share of full CSC improvement)",
        "Program", "client", "field", "container", "localflow", "all"
    );
    println!("{}", "-".repeat(80));
    for bench in csc_workloads::suite() {
        let program = bench.compile();
        let ci = run_row(&program, Analysis::Ci);
        let Some(ci_m) = ci.metrics else { continue };
        let configs = [
            ("field", CscConfig::only_field()),
            ("container", CscConfig::only_container()),
            ("localflow", CscConfig::only_local_flow()),
            ("all", CscConfig::all()),
        ];
        let mut metrics = Vec::new();
        for (_, cfg) in &configs {
            let out = run_analysis(&program, Analysis::CutShortcutWith(cfg.clone()), budget());
            metrics.push(PrecisionMetrics::compute(&out.result));
        }
        let full = &metrics[3];
        for (client, get) in [
            (
                "#fail-cast",
                Box::new(|m: &PrecisionMetrics| m.fail_casts)
                    as Box<dyn Fn(&PrecisionMetrics) -> usize>,
            ),
            (
                "#reach-mtd",
                Box::new(|m: &PrecisionMetrics| m.reach_methods),
            ),
            ("#poly-call", Box::new(|m: &PrecisionMetrics| m.poly_calls)),
            ("#call-edge", Box::new(|m: &PrecisionMetrics| m.call_edges)),
        ] {
            println!(
                "{:<11} {:<10} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
                bench.name,
                client,
                pct(get(&ci_m), get(&metrics[0]), get(full)),
                pct(get(&ci_m), get(&metrics[1]), get(full)),
                pct(get(&ci_m), get(&metrics[2]), get(full)),
                pct(get(&ci_m), get(full), get(full)),
            );
        }
        println!("{}", "-".repeat(80));
    }
}
