//! # csc-bench — harness regenerating every table and figure of the paper
//!
//! Binaries (run with `--release`; see EXPERIMENTS.md for the mapping):
//!
//! * `table_time`     — Figure 12 (analysis time per program per analysis)
//! * `table_main`     — Tables 1 & 2 (time + the four precision metrics)
//! * `table_overlap`  — Table 3 (Zipper-e selected vs CSC involved methods)
//! * `table_recall`   — §5.1 recall (soundness) experiment
//! * `table_ablation` — §5.1 per-pattern precision impact
//!
//! The analysis budget (the paper's "2h") defaults to 8 seconds per
//! analysis; override with `CSC_BUDGET_SECS`. Rows whose analysis exceeded
//! the budget print as `>Ns`, mirroring the paper's `>2h` entries.

use std::time::Duration;

use csc_core::{
    run_analysis_opts, Analysis, AnalysisOutcome, Budget, PrecisionMetrics, SolverOptions,
};
use csc_ir::Program;

/// The analysis budget, from `CSC_BUDGET_SECS` (default 8s).
pub fn budget() -> Budget {
    let secs = std::env::var("CSC_BUDGET_SECS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(8);
    Budget::with_time(Duration::from_secs(secs))
}

/// Human form of the configured budget, for `>Ns` cells.
pub fn budget_label() -> String {
    let secs = std::env::var("CSC_BUDGET_SECS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(8);
    format!(">{secs}s")
}

/// Engine options for bench runs: SCC-collapsed propagation is on by
/// default; `CSC_SCC=0` (or `off`) selects the uncollapsed reference
/// engine for A/B comparisons. The propagation thread count comes from
/// `CSC_THREADS` (`0` = the machine's available parallelism). Unset
/// defaults to `1`, *not* auto: snapshot rows are keyed by thread count
/// in `bench_diff`, so the default `table_main` → `bench_diff` loop must
/// produce the same row keys on every machine — parallel rows are an
/// explicit opt-in (`CSC_THREADS=4`, or `CSC_PAR_ROWS=4` for the
/// committed thread-scaling rows).
pub fn solver_options() -> SolverOptions {
    let base = match std::env::var("CSC_SCC").as_deref() {
        Ok("0") | Ok("off") => SolverOptions::no_collapse(),
        _ => SolverOptions::default(),
    };
    let threads = std::env::var("CSC_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(1);
    base.with_threads(threads)
}

/// The five analyses of the paper's comparison, in table order.
pub fn analyses() -> Vec<Analysis> {
    vec![
        Analysis::Ci,
        Analysis::KObj(2),
        Analysis::KType(2),
        Analysis::ZipperE,
        Analysis::CutShortcut,
    ]
}

/// One table row: an analysis outcome with its metrics (when completed).
pub struct Row<'p> {
    /// Short analysis label (`CI`, `2obj`, …).
    pub label: &'static str,
    /// The outcome (carries timing, status, CSC/Zipper extras).
    pub outcome: AnalysisOutcome<'p>,
    /// Metrics, absent on timeout.
    pub metrics: Option<PrecisionMetrics>,
}

/// Runs one analysis and computes metrics unless it timed out.
pub fn run_row(program: &Program, analysis: Analysis) -> Row<'_> {
    run_row_opts(program, analysis, solver_options())
}

/// [`run_row`] with explicit engine options (thread-scaling rows).
pub fn run_row_opts(program: &Program, analysis: Analysis, opts: SolverOptions) -> Row<'_> {
    let label = analysis.label();
    let outcome = run_analysis_opts(program, analysis, budget(), opts);
    let metrics = outcome
        .completed()
        .then(|| PrecisionMetrics::compute(&outcome.result));
    Row {
        label,
        outcome,
        metrics,
    }
}

/// The bench programs for this run: the ten-program suite, plus the
/// 10⁵+-statement `xl` stress program when `CSC_XL=1` (opt-in — it
/// exists to give thread-scaling something that saturates cores, and its
/// 2obj row blows any small budget by design).
pub fn bench_programs() -> Vec<csc_workloads::Benchmark> {
    let mut benches = csc_workloads::suite();
    if matches!(std::env::var("CSC_XL").as_deref(), Ok("1") | Ok("on")) {
        benches.push(csc_workloads::xl());
    }
    benches
}

/// A fingerprint of the machine the bench ran on: `(cpu model, core
/// count)`. The model string comes from `/proc/cpuinfo`'s first
/// `model name` line (the architecture name as a fallback off Linux),
/// sanitized so it can be embedded in the hand-rolled JSON rows; cores
/// are the available parallelism. `bench_diff` compares fingerprints
/// between snapshots and downgrades wall-clock regressions to warnings
/// when they differ — cross-machine timings are not comparable, while
/// propagation counts still are.
pub fn hardware_fingerprint() -> (String, u64) {
    let model = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|info| {
            info.lines().find_map(|l| {
                let (key, val) = l.split_once(':')?;
                (key.trim() == "model name").then(|| val.trim().to_owned())
            })
        })
        .unwrap_or_else(|| std::env::consts::ARCH.to_owned());
    let model: String = model
        .chars()
        .filter(|c| !matches!(c, '"' | '\\' | ','))
        .collect();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    (model, cores)
}

/// Formats a duration the way the paper's tables do (seconds with one
/// decimal for >1s, milliseconds below).
pub fn fmt_time(d: Duration) -> String {
    if d.as_secs_f64() >= 1.0 {
        format!("{:.1}s", d.as_secs_f64())
    } else {
        format!("{}ms", d.as_millis())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_time_units() {
        assert_eq!(fmt_time(Duration::from_millis(12)), "12ms");
        assert_eq!(fmt_time(Duration::from_millis(2500)), "2.5s");
    }

    #[test]
    fn analyses_cover_the_paper_matrix() {
        let labels: Vec<&str> = analyses().iter().map(|a| a.label()).collect();
        assert_eq!(labels, vec!["CI", "2obj", "2type", "Zipper-e", "CSC"]);
    }
}
