//! The evaluation suite: ten benchmark programs named after the paper's
//! subjects (§5, Tables 1–3), generated at per-program scales.
//!
//! The paper analyzes DaCapo-era Java programs; we generate synthetic
//! MiniJava programs of increasing size and pattern density (DESIGN.md §2
//! documents the substitution). The names are kept so the harness output
//! lines up with the paper's tables row by row; the configured scales
//! roughly follow the relative sizes of the original programs (hsqldb and
//! findbugs smallest, soot and columba largest).

use crate::gen::{generate, GenConfig};

/// One benchmark program of the suite.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// The paper's program name this row corresponds to.
    pub name: &'static str,
    /// Generator configuration.
    pub config: GenConfig,
}

impl Benchmark {
    /// Generates the MiniJava source.
    pub fn source(&self) -> String {
        generate(&self.config)
    }

    /// Compiles the benchmark to IR.
    ///
    /// # Panics
    ///
    /// Panics if generation produced an invalid program (a bug, covered by
    /// tests).
    pub fn compile(&self) -> csc_ir::Program {
        csc_frontend::compile(&self.source()).expect("generated benchmark compiles")
    }
}

#[allow(clippy::too_many_arguments)]
fn cfg(
    seed: u64,
    scenarios_per_kind: usize,
    data_classes: usize,
    entities: usize,
    fields: usize,
    wrappers: usize,
    selects: usize,
    chains: usize,
    chain_depth: usize,
) -> GenConfig {
    GenConfig {
        seed,
        data_classes,
        entities,
        fields_per_entity: fields,
        wrappers,
        selects,
        chains,
        chain_depth,
        scenarios_per_kind,
        loop_iters: 3,
        registry_every: 2,
        factory_prob: 0.3,
        // Cyclic flows scale with the call-chain knobs: one recursive
        // relay pair per chain, rings one hop longer than the chain depth.
        cycle_groups: chains,
        ring_len: chain_depth + 1,
    }
}

/// The ten-program suite, ordered as in the paper's tables.
pub fn suite() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "eclipse",
            config: cfg(0xec11, 180, 30, 15, 4, 12, 12, 8, 5),
        },
        Benchmark {
            name: "freecol",
            config: cfg(0xf4ee, 330, 55, 27, 4, 22, 22, 10, 6),
        },
        Benchmark {
            name: "briss",
            config: cfg(0xb415, 330, 50, 25, 4, 20, 20, 9, 5),
        },
        Benchmark {
            name: "hsqldb",
            config: cfg(0x5b, 40, 8, 4, 3, 5, 5, 3, 4),
        },
        Benchmark {
            name: "jedit",
            config: cfg(0xed17, 120, 20, 10, 3, 8, 8, 5, 4),
        },
        Benchmark {
            name: "gruntspud",
            config: cfg(0x6059, 340, 54, 27, 4, 21, 21, 9, 5),
        },
        Benchmark {
            name: "soot",
            config: cfg(0x5007, 360, 60, 30, 5, 24, 24, 12, 7),
        },
        Benchmark {
            name: "columba",
            config: cfg(0xc01a, 400, 66, 33, 5, 26, 26, 11, 6),
        },
        Benchmark {
            name: "jython",
            config: cfg(0x1907, 70, 12, 6, 3, 7, 7, 4, 4),
        },
        Benchmark {
            name: "findbugs",
            config: cfg(0xf1d6, 50, 10, 5, 3, 6, 6, 4, 4),
        },
    ]
}

/// Looks a benchmark up by name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    suite().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_suite_compiles() {
        for b in suite() {
            let program = b.compile();
            assert!(
                program.methods().len() > 40,
                "{} too small: {} methods",
                b.name,
                program.methods().len()
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("soot").is_some());
        assert!(by_name("nope").is_none());
    }
}
