//! The evaluation suite: ten benchmark programs named after the paper's
//! subjects (§5, Tables 1–3), generated at per-program scales.
//!
//! The paper analyzes DaCapo-era Java programs; we generate synthetic
//! MiniJava programs of increasing size and pattern density (DESIGN.md §2
//! documents the substitution). The names are kept so the harness output
//! lines up with the paper's tables row by row; the configured scales
//! roughly follow the relative sizes of the original programs (hsqldb and
//! findbugs smallest, soot and columba largest).

use crate::gen::{generate, GenConfig};

/// One benchmark program of the suite.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// The paper's program name this row corresponds to.
    pub name: &'static str,
    /// Generator configuration.
    pub config: GenConfig,
}

impl Benchmark {
    /// Generates the MiniJava source.
    pub fn source(&self) -> String {
        generate(&self.config)
    }

    /// Compiles the benchmark to IR.
    ///
    /// # Panics
    ///
    /// Panics if generation produced an invalid program (a bug, covered by
    /// tests).
    pub fn compile(&self) -> csc_ir::Program {
        csc_frontend::compile(&self.source()).expect("generated benchmark compiles")
    }
}

#[allow(clippy::too_many_arguments)]
fn cfg(
    seed: u64,
    scenarios_per_kind: usize,
    data_classes: usize,
    entities: usize,
    fields: usize,
    wrappers: usize,
    selects: usize,
    chains: usize,
    chain_depth: usize,
) -> GenConfig {
    GenConfig {
        seed,
        data_classes,
        entities,
        fields_per_entity: fields,
        wrappers,
        selects,
        chains,
        chain_depth,
        scenarios_per_kind,
        loop_iters: 3,
        registry_every: 2,
        factory_prob: 0.3,
        // Cyclic flows scale with the call-chain knobs: one recursive
        // relay pair per chain, rings one hop longer than the chain depth.
        cycle_groups: chains,
        ring_len: chain_depth + 1,
    }
}

/// The ten-program suite, ordered as in the paper's tables.
pub fn suite() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "eclipse",
            config: cfg(0xec11, 180, 30, 15, 4, 12, 12, 8, 5),
        },
        Benchmark {
            name: "freecol",
            config: cfg(0xf4ee, 330, 55, 27, 4, 22, 22, 10, 6),
        },
        Benchmark {
            name: "briss",
            config: cfg(0xb415, 330, 50, 25, 4, 20, 20, 9, 5),
        },
        Benchmark {
            name: "hsqldb",
            config: cfg(0x5b, 40, 8, 4, 3, 5, 5, 3, 4),
        },
        Benchmark {
            name: "jedit",
            config: cfg(0xed17, 120, 20, 10, 3, 8, 8, 5, 4),
        },
        Benchmark {
            name: "gruntspud",
            config: cfg(0x6059, 340, 54, 27, 4, 21, 21, 9, 5),
        },
        Benchmark {
            name: "soot",
            config: cfg(0x5007, 360, 60, 30, 5, 24, 24, 12, 7),
        },
        Benchmark {
            name: "columba",
            config: cfg(0xc01a, 400, 66, 33, 5, 26, 26, 11, 6),
        },
        Benchmark {
            name: "jython",
            config: cfg(0x1907, 70, 12, 6, 3, 7, 7, 4, 4),
        },
        Benchmark {
            name: "findbugs",
            config: cfg(0xf1d6, 50, 10, 5, 3, 6, 6, 4, 4),
        },
    ]
}

/// The opt-in `xl` stress program: past 10⁵ statements (the scale the
/// paper's `>2h` rows live at), with the registry/factory and cyclic-flow
/// knobs turned up so both object-sensitive context explosion and
/// assign-SCC collapsing have something to chew on. Not part of
/// [`suite`] — the bench harness appends it only under `CSC_XL=1`, and
/// it is the row thread-scaling is meant to be measured on.
pub fn xl() -> Benchmark {
    Benchmark {
        name: "xl",
        config: cfg(0x71a9e, 850, 90, 45, 5, 34, 34, 16, 8),
    }
}

/// Looks a benchmark up by name (`"xl"` resolves the opt-in stress
/// program; everything else resolves within [`suite`]).
pub fn by_name(name: &str) -> Option<Benchmark> {
    if name == "xl" {
        return Some(xl());
    }
    suite().into_iter().find(|b| b.name == name)
}

/// Process-wide compiled-IR cache: generates and compiles each benchmark
/// at most once per process and hands out a `'static` borrow (the ROADMAP
/// "persistent workloads" item's in-memory step). The bench tables run
/// five analyses per program and the differential harness runs every
/// (engine, thread-count) configuration per program — none of them should
/// re-lower the MiniJava source per row. The leak is deliberate: one
/// `Program` per benchmark for the life of the process.
///
/// Backing the in-memory map is the **on-disk half** (the rest of the
/// ROADMAP item): lowered IR is serialized with [`csc_ir::Program::to_bytes`]
/// to `target/csc-cache/<name>-<content-hash>.bin`, keyed by an FNV-1a-64
/// hash of the generated MiniJava source, so *fresh processes* skip
/// lowering too (generation is string building; lexing + parsing +
/// lowering + hierarchy resolution is what dominates start-up). Corrupt,
/// truncated, or stale-format files decode to an error and fall back to
/// lowering; writes go through a temp file + rename so concurrent test
/// processes never observe a half-written entry. Opt out with
/// `CSC_IR_CACHE=0`; point the directory elsewhere with
/// `CSC_IR_CACHE_DIR`.
pub fn compiled(name: &str) -> Option<&'static csc_ir::Program> {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    static CACHE: OnceLock<Mutex<HashMap<String, &'static csc_ir::Program>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("compiled-program cache poisoned");
    if let Some(&p) = map.get(name) {
        return Some(p);
    }
    let bench = by_name(name)?;
    let p: &'static csc_ir::Program = Box::leak(Box::new(compile_via_disk_cache(&bench)));
    map.insert(name.to_owned(), p);
    Some(p)
}

/// Whether the on-disk IR cache is enabled (`CSC_IR_CACHE=0` disables).
fn disk_cache_enabled() -> bool {
    !matches!(
        std::env::var("CSC_IR_CACHE").as_deref(),
        Ok("0") | Ok("off")
    )
}

/// The cache directory: `CSC_IR_CACHE_DIR`, or the workspace
/// `target/csc-cache` (anchored at this crate's manifest so tests and
/// binaries agree on the location regardless of their working directory).
fn disk_cache_dir() -> std::path::PathBuf {
    std::env::var_os("CSC_IR_CACHE_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/csc-cache")
        })
}

/// FNV-1a 64 over the generated source — the cache file's content key.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Lowers a benchmark through the on-disk cache: hit → decode, miss (or
/// any I/O / decode failure) → lower and repopulate, best-effort.
fn compile_via_disk_cache(bench: &Benchmark) -> csc_ir::Program {
    if !disk_cache_enabled() {
        return csc_frontend::compile(&bench.source()).expect("generated benchmark compiles");
    }
    compile_with_cache_dir(bench, &disk_cache_dir())
}

/// The cache mechanism with an explicit directory (separated from the
/// env-var policy so tests can target a private directory without
/// touching process-global environment state).
///
/// The content key mixes [`csc_frontend::LOWERING_VERSION`] into the
/// source hash: a frontend change that alters the IR produced for an
/// unchanged source must never reuse an entry lowered by the old
/// frontend (CI restores `target/` — cache directory included — across
/// commits, so filename-level versioning is the only reliable guard).
fn compile_with_cache_dir(bench: &Benchmark, dir: &std::path::Path) -> csc_ir::Program {
    let source = bench.source();
    let mut key = fnv1a64(source.as_bytes());
    key ^= u64::from(csc_frontend::LOWERING_VERSION).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let path = dir.join(format!("{}-{key:016x}.bin", bench.name));
    // Any failure in the read path — I/O error, corrupt entry, injected
    // `cache-read` fault, even a panic — reads as a miss and falls back
    // to lowering: the cache accelerates, it never gates.
    let hit = std::panic::catch_unwind(|| {
        csc_core::fault::hit_io(csc_core::fault::FaultPoint::CacheRead).ok()?;
        let bytes = std::fs::read(&path).ok()?;
        csc_ir::Program::from_bytes(&bytes).ok()
    })
    .unwrap_or(None);
    if let Some(program) = hit {
        return program;
    }
    let program = csc_frontend::compile(&source).expect("generated benchmark compiles");
    // Best-effort write; a read-only target dir must not fail the run.
    // The temp name is unique per process *and* per call, so concurrent
    // processes and concurrent threads both rename disjoint files; a
    // transient I/O error or rename collision gets one bounded retry with
    // a fresh temp name, then the write is skipped.
    let _ = std::panic::catch_unwind(|| {
        let attempt = || -> std::io::Result<()> {
            csc_core::fault::hit_io(csc_core::fault::FaultPoint::CacheWrite)?;
            std::fs::create_dir_all(dir)?;
            let tmp = path.with_extension(format!(
                "tmp.{}.{}",
                std::process::id(),
                csc_core::results::next_tmp_seq()
            ));
            std::fs::write(&tmp, program.to_bytes())?;
            std::fs::rename(&tmp, &path).inspect_err(|_| {
                let _ = std::fs::remove_file(&tmp);
            })
        };
        if attempt().is_err() {
            let _ = attempt();
        }
    });
    program
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_suite_compiles() {
        for b in suite() {
            let program = b.compile();
            assert!(
                program.methods().len() > 40,
                "{} too small: {} methods",
                b.name,
                program.methods().len()
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("soot").is_some());
        assert!(by_name("xl").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn compiled_cache_returns_same_program() {
        let a = compiled("hsqldb").unwrap();
        let b = compiled("hsqldb").unwrap();
        assert!(std::ptr::eq(a, b), "second lookup must hit the cache");
        assert!(compiled("nope").is_none());
    }

    /// The on-disk half: a decode from a populated cache entry must yield
    /// exactly the program a fresh lowering yields. Targets a private
    /// temp dir through the explicit-directory entry point, so no
    /// process-global environment state is touched and concurrent tests
    /// (threads or processes) cannot interfere.
    #[test]
    fn disk_cache_roundtrips_lowering() {
        let dir = std::env::temp_dir().join(format!("csc-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let bench = by_name("hsqldb").unwrap();
        let first = compile_with_cache_dir(&bench, &dir); // miss: lowers + writes
        let entries = std::fs::read_dir(&dir).expect("cache dir created").count();
        assert_eq!(entries, 1, "exactly one cache entry written");
        let second = compile_with_cache_dir(&bench, &dir); // hit: decodes
        assert_eq!(first, second, "decoded program differs from lowered");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Regression: a corrupt cache entry must be treated as a miss — the
    /// lowering falls back to a fresh compile (bit-identical to the clean
    /// one) and the damaged entry is overwritten with a decodable one.
    /// Covers truncation, bit flips in the header region, and trailing
    /// garbage, since any of them can result from an interrupted write or
    /// a stale-format restore of `target/` in CI.
    #[test]
    fn disk_cache_corrupt_entry_falls_back_and_repopulates() {
        let dir =
            std::env::temp_dir().join(format!("csc-cache-corrupt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let bench = by_name("findbugs").unwrap();
        let clean = compile_with_cache_dir(&bench, &dir);
        let entry = std::fs::read_dir(&dir)
            .expect("cache dir created")
            .map(|e| e.expect("dir entry").path())
            .find(|p| p.extension().is_some_and(|x| x == "bin"))
            .expect("one .bin cache entry");
        let good = std::fs::read(&entry).expect("entry readable");
        let corruptions: Vec<Vec<u8>> = vec![
            Vec::new(),                      // empty file
            good[..good.len() / 2].to_vec(), // truncated
            {
                let mut b = good.clone();
                b[0] ^= 0xff; // smashed magic/header
                b
            },
            {
                let mut b = good.clone();
                b.push(0); // trailing garbage
                b
            },
        ];
        for (i, bytes) in corruptions.iter().enumerate() {
            std::fs::write(&entry, bytes).expect("write corruption");
            let relowered = compile_with_cache_dir(&bench, &dir);
            assert_eq!(
                clean, relowered,
                "corruption {i}: fallback compile differs from clean lowering"
            );
            let repaired = std::fs::read(&entry).expect("entry rewritten");
            let decoded = csc_ir::Program::from_bytes(&repaired)
                .unwrap_or_else(|e| panic!("corruption {i}: entry not repopulated: {e:?}"));
            assert_eq!(decoded, clean, "corruption {i}: repopulated entry differs");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The xl stress program must actually cross the 10⁵-statement bar.
    /// Ignored by default (generating + lowering ~10⁵ statements is slow
    /// unoptimized); CI runs it in release mode alongside the differential
    /// harness.
    #[test]
    #[ignore = "compiles a >1e5-statement program; run in release mode"]
    fn xl_crosses_100k_statements() {
        let program = xl().compile();
        assert!(
            program.stmt_count() > 100_000,
            "xl too small: {} statements",
            program.stmt_count()
        );
    }
}
