//! The mini-JDK: container library written in MiniJava.
//!
//! Substitutes for the JDK container classes the paper's evaluation analyzes
//! (DESIGN.md §2). The implementations deliberately route elements through
//! internal linked nodes, so a context-insensitive analysis merges the
//! elements of *all* containers inside `Node.item` / `MapEntry.{key,value}`
//! — exactly the imprecision the container access pattern (§3.3) exists to
//! fix. Note that the internal stores/loads do **not** match the field
//! access pattern (their bases are locals, not parameters), so the container
//! pattern is genuinely load-bearing here.
//!
//! The API roles (`Entrances`/`Exits`/`Transfers`) for these classes are
//! declared in `csc_core::csc::ContainerSpec::mini_jdk()`.

/// MiniJava source of the container library. Prepend to workload programs.
pub const MINI_JDK: &str = r#"
// ---- mini-JDK containers ------------------------------------------------

class Node {
    Object item;
    Node next;
}

class Iterator {
    Node cur;
    boolean hasNext() {
        boolean r = this.cur != null;
        return r;
    }
    Object next() {
        Node n = this.cur;
        this.cur = n.next;
        return n.item;
    }
}

abstract class Collection {
    abstract void add(Object e);
    abstract Iterator iterator();
    abstract int size();
    boolean isEmpty() {
        boolean r = this.size() == 0;
        return r;
    }
}

abstract class List extends Collection {
    abstract Object get(int i);
    abstract Object set(int i, Object e);
    abstract void addFirst(Object e);
    abstract Object removeFirst();
}

class ArrayList extends List {
    Node head;
    Node tail;
    int count;
    void add(Object e) {
        Node n = new Node();
        n.item = e;
        Node t = this.tail;
        if (t == null) {
            this.head = n;
        } else {
            t.next = n;
        }
        this.tail = n;
        this.count = this.count + 1;
    }
    void addFirst(Object e) {
        Node n = new Node();
        n.item = e;
        n.next = this.head;
        this.head = n;
        if (this.tail == null) {
            this.tail = n;
        }
        this.count = this.count + 1;
    }
    Object get(int i) {
        Node n = this.head;
        int j = 0;
        while (j < i) {
            n = n.next;
            j = j + 1;
        }
        return n.item;
    }
    Object set(int i, Object e) {
        Node n = this.head;
        int j = 0;
        while (j < i) {
            n = n.next;
            j = j + 1;
        }
        Object old = n.item;
        n.item = e;
        return old;
    }
    Object removeFirst() {
        Node n = this.head;
        this.head = n.next;
        if (this.head == null) {
            this.tail = null;
        }
        this.count = this.count - 1;
        return n.item;
    }
    Iterator iterator() {
        Iterator it = new Iterator();
        it.cur = this.head;
        return it;
    }
    int size() {
        return this.count;
    }
}

class LinkedList extends List {
    Node first;
    Node last;
    int count;
    void add(Object e) {
        Node n = new Node();
        n.item = e;
        Node l = this.last;
        if (l == null) {
            this.first = n;
        } else {
            l.next = n;
        }
        this.last = n;
        this.count = this.count + 1;
    }
    void addFirst(Object e) {
        Node n = new Node();
        n.item = e;
        n.next = this.first;
        this.first = n;
        if (this.last == null) {
            this.last = n;
        }
        this.count = this.count + 1;
    }
    Object get(int i) {
        Node n = this.first;
        int j = 0;
        while (j < i) {
            n = n.next;
            j = j + 1;
        }
        return n.item;
    }
    Object set(int i, Object e) {
        Node n = this.first;
        int j = 0;
        while (j < i) {
            n = n.next;
            j = j + 1;
        }
        Object old = n.item;
        n.item = e;
        return old;
    }
    Object removeFirst() {
        Node n = this.first;
        this.first = n.next;
        if (this.first == null) {
            this.last = null;
        }
        this.count = this.count - 1;
        return n.item;
    }
    Iterator iterator() {
        Iterator it = new Iterator();
        it.cur = this.first;
        return it;
    }
    int size() {
        return this.count;
    }
}

class HashSet extends Collection {
    Node head;
    int count;
    boolean contains(Object e) {
        Node n = this.head;
        while (n != null) {
            Object it = n.item;
            if (it == e) {
                return true;
            }
            n = n.next;
        }
        return false;
    }
    void add(Object e) {
        boolean c = this.contains(e);
        if (c) {
        } else {
            Node n = new Node();
            n.item = e;
            n.next = this.head;
            this.head = n;
            this.count = this.count + 1;
        }
    }
    Iterator iterator() {
        Iterator it = new Iterator();
        it.cur = this.head;
        return it;
    }
    int size() {
        return this.count;
    }
}

// ---- maps -----------------------------------------------------------------

class MapEntry {
    Object key;
    Object value;
    MapEntry next;
}

class KeyIterator {
    MapEntry cur;
    boolean hasNext() {
        boolean r = this.cur != null;
        return r;
    }
    Object next() {
        MapEntry e = this.cur;
        this.cur = e.next;
        return e.key;
    }
}

class ValueIterator {
    MapEntry cur;
    boolean hasNext() {
        boolean r = this.cur != null;
        return r;
    }
    Object next() {
        MapEntry e = this.cur;
        this.cur = e.next;
        return e.value;
    }
}

class KeySetView {
    HashMap map;
    KeyIterator iterator() {
        HashMap m = this.map;
        KeyIterator it = new KeyIterator();
        it.cur = m.head;
        return it;
    }
    int size() {
        HashMap m = this.map;
        int r = m.size();
        return r;
    }
}

class ValuesView {
    HashMap map;
    ValueIterator iterator() {
        HashMap m = this.map;
        ValueIterator it = new ValueIterator();
        it.cur = m.head;
        return it;
    }
    int size() {
        HashMap m = this.map;
        int r = m.size();
        return r;
    }
}

abstract class Map {
    abstract Object put(Object k, Object v);
    abstract Object get(Object k);
    abstract Object remove(Object k);
    abstract KeySetView keySet();
    abstract ValuesView values();
    abstract int size();
}

class HashMap extends Map {
    MapEntry head;
    int count;
    Object put(Object k, Object v) {
        MapEntry e = this.head;
        while (e != null) {
            Object ek = e.key;
            if (ek == k) {
                Object old = e.value;
                e.value = v;
                return old;
            }
            e = e.next;
        }
        MapEntry ne = new MapEntry();
        ne.key = k;
        ne.value = v;
        ne.next = this.head;
        this.head = ne;
        this.count = this.count + 1;
        return null;
    }
    Object get(Object k) {
        MapEntry e = this.head;
        while (e != null) {
            Object ek = e.key;
            if (ek == k) {
                return e.value;
            }
            e = e.next;
        }
        return null;
    }
    Object remove(Object k) {
        MapEntry e = this.head;
        MapEntry prev = null;
        while (e != null) {
            Object ek = e.key;
            if (ek == k) {
                Object old = e.value;
                if (prev == null) {
                    this.head = e.next;
                } else {
                    prev.next = e.next;
                }
                this.count = this.count - 1;
                return old;
            }
            prev = e;
            e = e.next;
        }
        return null;
    }
    KeySetView keySet() {
        KeySetView v = new KeySetView();
        v.map = this;
        return v;
    }
    ValuesView values() {
        ValuesView v = new ValuesView();
        v.map = this;
        return v;
    }
    int size() {
        return this.count;
    }
}
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mini_jdk_compiles() {
        let src = format!(
            "{MINI_JDK}\nclass Main {{ static void main() {{ ArrayList l = new ArrayList(); l.add(new Object()); Object x = l.get(0); }} }}"
        );
        let program = csc_frontend::compile(&src).expect("mini-JDK compiles");
        assert!(program.class_by_name("ArrayList").is_some());
        assert!(program.class_by_name("HashMap").is_some());
        assert!(program.class_by_name("KeyIterator").is_some());
    }
}
