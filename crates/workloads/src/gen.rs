//! Seeded synthetic benchmark generator.
//!
//! Generates MiniJava programs that mix, at configurable scale, the
//! imprecision-inducing idioms the paper targets:
//!
//! * *field scenarios* — shared entity classes whose setters/getters are
//!   called with scenario-specific data types (the Figure 1 shape);
//! * *wrapper scenarios* — values stored through nested constructor chains
//!   (the Figure 3 shape, exercising `tempStores` propagation);
//! * *container scenarios* — `ArrayList` / `LinkedList` / `HashMap` churn
//!   with iterators and map views (the Figure 4 shape);
//! * *select scenarios* — local-flow utility methods (the Figure 5 shape);
//! * *chain scenarios* — deep static call chains whose merge points are
//!   **not** covered by any Cut-Shortcut pattern, keeping the comparison
//!   against conventional context sensitivity honest;
//! * *cyclic flows* — local assign rings and mutually recursive relay
//!   pairs whose parameters and returns form assign-cycles in the pointer
//!   flow graph, like real programs' recursion and swap idioms. These are
//!   what the solver's SCC-collapsed propagation targets.
//!
//! Every scenario retrieves values back, casts them to the scenario's
//! concrete data class (#fail-cast), and makes virtual `tag()` calls on
//! them (#poly-call), so all four precision clients discriminate between
//! analyses. Programs are fully executable: all loops are bounded, which is
//! what the recall experiment needs.

use std::fmt::Write as _;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::jdk::MINI_JDK;

/// Scale knobs for one generated program.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// RNG seed (the program text is a pure function of the config).
    pub seed: u64,
    /// Concrete data classes (cast targets / dispatch receivers).
    pub data_classes: usize,
    /// Entity classes (fields + setters/getters), shared across scenarios.
    pub entities: usize,
    /// Fields (with setter/getter/swap) per entity class.
    pub fields_per_entity: usize,
    /// Wrapper classes with nested constructor stores.
    pub wrappers: usize,
    /// Local-flow utility methods.
    pub selects: usize,
    /// Static call chains not covered by any pattern.
    pub chains: usize,
    /// Depth of each call chain.
    pub chain_depth: usize,
    /// Scenario methods per kind (field/wrapper/container/map/select/chain).
    pub scenarios_per_kind: usize,
    /// Loop iterations in container scenarios (interpreter workload).
    pub loop_iters: usize,
    /// Every `registry_every`-th scenario registers its primary object in a
    /// global registry whose `crossTouch` loop makes all registered objects
    /// interact pairwise. Under object sensitivity this multiplies contexts
    /// quadratically in the number of registered objects — the realistic
    /// cost mechanism that makes 2obj orders of magnitude slower than CI on
    /// large programs (and eventually exceed the budget, like the paper's
    /// ">2h" entries). `0` disables the registry.
    pub registry_every: usize,
    /// Probability that a scenario obtains its primary object from the
    /// static `Factory` instead of a local `new`. Factory allocations all
    /// live in one class, which is precisely what separates 2type (merges
    /// them) from 2obj (distinguishes the receiver objects).
    pub factory_prob: f64,
    /// Mutually recursive relay pairs in `Util`: each pair's parameters
    /// and call-result locals form assign-cycles across the two methods,
    /// the way real recursion does. `0` disables them.
    pub cycle_groups: usize,
    /// Length of the local assign ring emitted in field scenarios
    /// (`ring0 = v; ring1 = ring0; …; ring0 = ring_last` — a pure copy
    /// cycle). Values below 2 disable rings.
    pub ring_len: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            seed: 42,
            data_classes: 8,
            entities: 4,
            fields_per_entity: 3,
            wrappers: 4,
            selects: 4,
            chains: 2,
            chain_depth: 4,
            scenarios_per_kind: 4,
            loop_iters: 3,
            registry_every: 3,
            factory_prob: 0.5,
            cycle_groups: 2,
            ring_len: 3,
        }
    }
}

/// Generates the MiniJava source of one benchmark program.
pub fn generate(cfg: &GenConfig) -> String {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = String::with_capacity(64 * 1024);
    out.push_str(MINI_JDK);

    write_data_classes(&mut out, cfg, &mut rng);
    write_entities(&mut out, cfg, &mut rng);
    write_wrappers(&mut out, cfg, &mut rng);
    write_factory_and_registry(&mut out, cfg);
    write_util(&mut out, cfg, &mut rng);
    write_main(&mut out, cfg, &mut rng);
    out
}

fn write_data_classes(out: &mut String, cfg: &GenConfig, rng: &mut StdRng) {
    out.push_str(
        "\nabstract class Data {\n    abstract int tag();\n    Data identity() { return this; }\n    void touch(Data other) {\n        Data x = other.identity();\n        int t = x.tag();\n    }\n}\n",
    );
    for i in 0..cfg.data_classes {
        // Shallow hierarchy: roughly half extend an earlier data class.
        let parent = if i > 0 && rng.gen_bool(0.5) {
            format!("D{}", rng.gen_range(0..i))
        } else {
            "Data".to_owned()
        };
        let _ = writeln!(
            out,
            "class D{i} extends {parent} {{\n    int tag() {{ return {i}; }}\n}}"
        );
    }
}

fn write_entities(out: &mut String, cfg: &GenConfig, rng: &mut StdRng) {
    for e in 0..cfg.entities {
        // A third of the entities extend an earlier entity.
        let parent = if e > 0 && rng.gen_bool(0.33) {
            format!(" extends E{}", rng.gen_range(0..e))
        } else {
            String::new()
        };
        let _ = writeln!(out, "class E{e}{parent} {{");
        for f in 0..cfg.fields_per_entity {
            let _ = writeln!(out, "    Data e{e}f{f};");
            let _ = writeln!(out, "    void setF{e}_{f}(Data v) {{ this.e{e}f{f} = v; }}");
            let _ = writeln!(
                out,
                "    Data getF{e}_{f}() {{ Data r; r = this.e{e}f{f}; return r; }}"
            );
            if rng.gen_bool(0.5) {
                // swap: exercises both halves of the field pattern at once.
                let _ = writeln!(
                    out,
                    "    Data swapF{e}_{f}(Data v) {{ Data old; old = this.e{e}f{f}; this.e{e}f{f} = v; return old; }}"
                );
            }
        }
        // An impure accessor: the return mixes a field load with a
        // parameter, so the load cut must rely on [RelayEdge].
        let _ = writeln!(
            out,
            "    Data firstOr{e}(Data dflt) {{ Data r; r = this.e{e}f0; if (r == null) {{ r = dflt; }} return r; }}"
        );
        // A mixer that no Cut-Shortcut pattern covers (multiple returns,
        // load into a non-return local): object sensitivity separates its
        // callers by receiver, Cut-Shortcut cannot — keeps 2obj's
        // precision advantage honest (§5.2).
        let _ = writeln!(
            out,
            "    Data mix{e}(Data v) {{ Data c; c = this.e{e}f0; if (c == v) {{ return c; }} return v; }}"
        );
        out.push_str("}\n");
    }
}

fn write_wrappers(out: &mut String, cfg: &GenConfig, rng: &mut StdRng) {
    for w in 0..cfg.wrappers {
        let deep = rng.gen_bool(0.5);
        let _ = writeln!(out, "class W{w} {{");
        let _ = writeln!(out, "    Data val;");
        if deep {
            // Two-level nesting: ctor -> init -> setRaw (Figure 3 shape).
            let _ = writeln!(out, "    W{w}(Data v) {{ this.init(v); }}");
            let _ = writeln!(out, "    void init(Data v) {{ this.setRaw(v); }}");
            let _ = writeln!(out, "    void setRaw(Data v) {{ this.val = v; }}");
        } else {
            let _ = writeln!(out, "    W{w}(Data v) {{ this.val = v; }}");
        }
        let _ = writeln!(
            out,
            "    Data unwrap() {{ Data r; r = this.val; return r; }}"
        );
        out.push_str("}\n");
    }
}

fn write_factory_and_registry(out: &mut String, cfg: &GenConfig) {
    out.push_str("class Factory {\n");
    for d in 0..cfg.data_classes {
        let _ = writeln!(out, "    static Data makeD{d}() {{ return new D{d}(); }}");
    }
    out.push_str("}\n");
    if cfg.registry_every > 0 {
        out.push_str(
            r#"class Registry {
    ArrayList items;
    Registry() { this.items = new ArrayList(); }
    void register(Data d) { ArrayList l = this.items; l.add(d); }
    void crossTouch() {
        ArrayList l = this.items;
        Iterator it = l.iterator();
        while (it.hasNext()) {
            Object ao = it.next();
            Data a = (Data) ao;
            Iterator jt = l.iterator();
            while (jt.hasNext()) {
                Object bo = jt.next();
                Data b = (Data) bo;
                a.touch(b);
            }
        }
    }
}
"#,
        );
    }
}

fn write_util(out: &mut String, cfg: &GenConfig, _rng: &mut StdRng) {
    out.push_str("class Util {\n");
    for s in 0..cfg.selects {
        let three = three_arg_select(cfg, s);
        if three {
            let _ = writeln!(
                out,
                "    static Data select{s}(Data a, Data b, Data c) {{ Data r; if (a == b) {{ r = a; }} else {{ if (b == c) {{ r = b; }} else {{ r = c; }} }} return r; }}"
            );
        } else {
            let _ = writeln!(
                out,
                "    static Data select{s}(Data a, Data b) {{ Data r; if (a == b) {{ r = a; }} else {{ r = b; }} return r; }}"
            );
        }
    }
    for c in 0..cfg.chains {
        // chain{c}_0 -> chain{c}_1 -> ... -> identity. Each hop's return is
        // a call result, which no Cut-Shortcut pattern covers — the paper's
        // approach deliberately leaves these to plain CI propagation.
        for d in 0..cfg.chain_depth {
            if d + 1 < cfg.chain_depth {
                let _ = writeln!(
                    out,
                    "    static Data chain{c}_{d}(Data v) {{ Data r = Util.chain{c}_{}(v); return r; }}",
                    d + 1
                );
            } else {
                let _ = writeln!(out, "    static Data chain{c}_{d}(Data v) {{ return v; }}");
            }
        }
    }
    for g in 0..cfg.cycle_groups {
        // Mutually recursive relay pair (bounded by the fuel argument):
        // `v` cycles a -> b -> a through the `[Param]` edges, and the
        // call-result locals cycle through the `[Return]` edges — the
        // assign-SCCs that cycle-collapsed propagation targets.
        let _ = writeln!(
            out,
            "    static Data relay{g}a(Data v, int n) {{ if (n == 0) {{ return v; }} Data r = Util.relay{g}b(v, n - 1); return r; }}"
        );
        let _ = writeln!(
            out,
            "    static Data relay{g}b(Data v, int n) {{ Data r = Util.relay{g}a(v, n); return r; }}"
        );
    }
    out.push_str("}\n");
}

struct ScenarioCtx {
    casts: usize,
    id: usize,
}

/// Emits the scenario's primary object: a local `new` or a `Factory` call,
/// typed `Data` either way.
fn emit_primary(out: &mut String, cfg: &GenConfig, rng: &mut StdRng, var: &str, d: usize) {
    if rng.gen_bool(cfg.factory_prob) {
        let _ = writeln!(out, "        Data {var} = Factory.makeD{d}();");
    } else {
        let _ = writeln!(out, "        Data {var} = new D{d}();");
    }
}

/// Each scenario becomes its own `Scene{i}` class with an instance `run()`
/// method, instantiated once from `main`. Putting allocation sites and
/// calls inside per-scenario classes keeps the workload instance-heavy,
/// like the paper's subjects: object/type sensitivity then has receiver
/// objects and allocating classes to distinguish contexts by.
fn write_main(out: &mut String, cfg: &GenConfig, rng: &mut StdRng) {
    let mut scene_ids: Vec<usize> = Vec::new();
    let mut ctx = ScenarioCtx { casts: 0, id: 0 };
    for k in 0..cfg.scenarios_per_kind {
        for kind in 0..6 {
            let id = ctx.id;
            let _ = writeln!(out, "// scenario {id}: {}", kind_name(kind));
            let _ = writeln!(out, "class Scene{id} {{");
            out.push_str("    Data run() {\n");
            let result = match kind {
                0 => field_scenario(out, cfg, rng, &mut ctx),
                1 => wrapper_scenario(out, cfg, rng, &mut ctx),
                2 => list_scenario(out, cfg, rng, &mut ctx),
                3 => map_scenario(out, cfg, rng, &mut ctx),
                4 => select_scenario(out, cfg, rng, &mut ctx),
                5 => chain_scenario(out, cfg, rng, &mut ctx),
                _ => unreachable!(),
            };
            let _ = writeln!(out, "        return {result};");
            out.push_str("    }\n}\n");
            scene_ids.push(id);
            ctx.id += 1;
        }
        let _ = k;
    }
    out.push_str("class Main {\n    static void main() {\n");
    if cfg.registry_every > 0 {
        out.push_str("        Registry reg = new Registry();\n");
    }
    for id in &scene_ids {
        let _ = writeln!(out, "        Scene{id} s{id} = new Scene{id}();");
        let _ = writeln!(out, "        Data r{id} = s{id}.run();");
        if cfg.registry_every > 0 && id % cfg.registry_every == 0 {
            let _ = writeln!(out, "        reg.register(r{id});");
        }
    }
    if cfg.registry_every > 0 {
        out.push_str("        reg.crossTouch();\n");
    }
    out.push_str("    }\n}\n");
}

fn kind_name(kind: usize) -> &'static str {
    match kind {
        0 => "fields",
        1 => "wrap",
        2 => "list",
        3 => "map",
        4 => "select",
        5 => "chain",
        _ => unreachable!(),
    }
}

/// Picks the scenario's data class and a *different* sibling class for a
/// genuinely failing cast.
fn pick_data(cfg: &GenConfig, rng: &mut StdRng) -> (usize, usize) {
    let d = rng.gen_range(0..cfg.data_classes);
    let other =
        (d + 1 + rng.gen_range(0..cfg.data_classes.saturating_sub(1).max(1))) % cfg.data_classes;
    (d, other)
}

fn field_scenario(
    out: &mut String,
    cfg: &GenConfig,
    rng: &mut StdRng,
    ctx: &mut ScenarioCtx,
) -> &'static str {
    let e = rng.gen_range(0..cfg.entities);
    let f = rng.gen_range(0..cfg.fields_per_entity);
    let (d, _) = pick_data(cfg, rng);
    let _ = writeln!(out, "        E{e} ent = new E{e}();");
    emit_primary(out, cfg, rng, "v", d);
    let _ = writeln!(out, "        ent.setF{e}_{f}(v);");
    let _ = writeln!(out, "        Data got = ent.getF{e}_{f}();");
    let _ = writeln!(out, "        D{d} cast = (D{d}) got;");
    ctx.casts += 1;
    let _ = writeln!(out, "        int t = got.tag();");
    let _ = writeln!(out, "        Data other = ent.firstOr{e}(v);");
    let _ = writeln!(out, "        int t2 = other.tag();");
    let _ = writeln!(out, "        Data mixed = ent.mix{e}(v);");
    let _ = writeln!(out, "        D{d} mcast = (D{d}) mixed;");
    ctx.casts += 1;
    if cfg.ring_len >= 2 {
        // Local assign ring: a pure copy cycle the solver can collapse.
        let _ = writeln!(out, "        Data ring0 = v;");
        for i in 1..cfg.ring_len {
            let _ = writeln!(out, "        Data ring{i} = ring{};", i - 1);
        }
        let _ = writeln!(out, "        ring0 = ring{};", cfg.ring_len - 1);
        let _ = writeln!(out, "        int ringT = ring{}.tag();", cfg.ring_len / 2);
    }
    "v"
}

fn wrapper_scenario(
    out: &mut String,
    cfg: &GenConfig,
    rng: &mut StdRng,
    ctx: &mut ScenarioCtx,
) -> &'static str {
    let w = rng.gen_range(0..cfg.wrappers.max(1));
    let (d, _) = pick_data(cfg, rng);
    emit_primary(out, cfg, rng, "v", d);
    let _ = writeln!(out, "        W{w} box = new W{w}(v);");
    let _ = writeln!(out, "        Data got = box.unwrap();");
    let _ = writeln!(out, "        D{d} cast = (D{d}) got;");
    ctx.casts += 1;
    let _ = writeln!(out, "        int t = got.tag();");
    "got"
}

fn list_scenario(
    out: &mut String,
    cfg: &GenConfig,
    rng: &mut StdRng,
    ctx: &mut ScenarioCtx,
) -> &'static str {
    let (d, other) = pick_data(cfg, rng);
    let linked = rng.gen_bool(0.3);
    let class = if linked { "LinkedList" } else { "ArrayList" };
    let mixed = rng.gen_bool(0.25);
    let _ = writeln!(out, "        {class} l = new {class}();");
    let _ = writeln!(out, "        int i = 0;");
    let _ = writeln!(out, "        while (i < {}) {{", cfg.loop_iters);
    let _ = writeln!(out, "            l.add(new D{d}());");
    let _ = writeln!(out, "            i = i + 1;");
    let _ = writeln!(out, "        }}");
    if mixed {
        // A genuinely heterogeneous list: the cast below truly may fail,
        // for every analysis (keeps some true positives in #fail-cast).
        let _ = writeln!(out, "        l.add(new D{other}());");
    }
    let _ = writeln!(out, "        Object first = l.get(0);");
    let _ = writeln!(out, "        D{d} cast = (D{d}) first;");
    ctx.casts += 1;
    let _ = writeln!(out, "        Iterator it = l.iterator();");
    let _ = writeln!(out, "        while (it.hasNext()) {{");
    let _ = writeln!(out, "            Object o = it.next();");
    let _ = writeln!(out, "            Data dd = (Data) o;");
    ctx.casts += 1;
    let _ = writeln!(out, "            int t = dd.tag();");
    let _ = writeln!(out, "        }}");
    "cast"
}

fn map_scenario(
    out: &mut String,
    cfg: &GenConfig,
    rng: &mut StdRng,
    ctx: &mut ScenarioCtx,
) -> &'static str {
    let (d, other) = pick_data(cfg, rng);
    let _ = writeln!(out, "        HashMap m = new HashMap();");
    let _ = writeln!(out, "        D{d} key = new D{d}();");
    let _ = writeln!(out, "        D{other} val = new D{other}();");
    let _ = writeln!(out, "        Object prev = m.put(key, val);");
    let _ = writeln!(out, "        Object got = m.get(key);");
    let _ = writeln!(out, "        D{other} cast = (D{other}) got;");
    ctx.casts += 1;
    let _ = writeln!(out, "        KeySetView ks = m.keySet();");
    let _ = writeln!(out, "        KeyIterator ki = ks.iterator();");
    let _ = writeln!(out, "        while (ki.hasNext()) {{");
    let _ = writeln!(out, "            Object k = ki.next();");
    let _ = writeln!(out, "            D{d} kc = (D{d}) k;");
    ctx.casts += 1;
    let _ = writeln!(out, "            int t = kc.tag();");
    let _ = writeln!(out, "        }}");
    let _ = writeln!(out, "        ValuesView vs = m.values();");
    let _ = writeln!(out, "        ValueIterator vi = vs.iterator();");
    let _ = writeln!(out, "        while (vi.hasNext()) {{");
    let _ = writeln!(out, "            Object v = vi.next();");
    let _ = writeln!(out, "            int t2 = ((Data) v).tag();");
    ctx.casts += 1;
    let _ = writeln!(out, "        }}");
    "cast"
}

fn select_scenario(
    out: &mut String,
    cfg: &GenConfig,
    rng: &mut StdRng,
    ctx: &mut ScenarioCtx,
) -> &'static str {
    let s = rng.gen_range(0..cfg.selects.max(1));
    let three = three_arg_select(cfg, s);
    let (d, other) = pick_data(cfg, rng);
    emit_primary(out, cfg, rng, "a", d);
    let _ = writeln!(out, "        Data b = new D{d}();");
    if three {
        let _ = writeln!(out, "        Data c = new D{other}();");
        let _ = writeln!(out, "        Data r = Util.select{s}(a, b, c);");
    } else {
        let _ = writeln!(out, "        Data r = Util.select{s}(a, b);");
    }
    let _ = writeln!(out, "        D{d} cast = (D{d}) r;");
    ctx.casts += 1;
    let _ = writeln!(out, "        int t = r.tag();");
    "cast"
}

/// Whether `Util.select{s}` has three parameters. The arity is a pure
/// function of the index so that scenario generation and `write_util`
/// agree without sharing RNG state.
fn three_arg_select(_cfg: &GenConfig, s: usize) -> bool {
    s % 3 == 1
}

fn chain_scenario(
    out: &mut String,
    cfg: &GenConfig,
    rng: &mut StdRng,
    ctx: &mut ScenarioCtx,
) -> &'static str {
    let c = rng.gen_range(0..cfg.chains.max(1));
    let (d, _) = pick_data(cfg, rng);
    emit_primary(out, cfg, rng, "v", d);
    let _ = writeln!(out, "        Data r = Util.chain{c}_0(v);");
    let _ = writeln!(out, "        D{d} cast = (D{d}) r;");
    ctx.casts += 1;
    if cfg.cycle_groups > 0 {
        // Route the value through a recursive relay pair, feeding the
        // cross-method param/return cycles with this scenario's objects.
        let g = rng.gen_range(0..cfg.cycle_groups);
        let _ = writeln!(
            out,
            "        Data rel = Util.relay{g}a(v, {});",
            cfg.loop_iters
        );
        let _ = writeln!(out, "        int rt = rel.tag();");
    }
    let _ = writeln!(out, "        Data s = v.identity();");
    let _ = writeln!(out, "        int t = s.tag();");
    "cast"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_program_compiles() {
        let src = generate(&GenConfig::default());
        let program = csc_frontend::compile(&src)
            .unwrap_or_else(|e| panic!("generated program must compile: {e}\n"));
        assert!(program.methods().len() > 50);
        assert!(!program.casts().is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&GenConfig::default());
        let b = generate(&GenConfig::default());
        assert_eq!(a, b);
        let c = generate(&GenConfig {
            seed: 7,
            ..GenConfig::default()
        });
        assert_ne!(a, c);
    }
}
