//! The paper's running examples (Figures 1, 3, 4, 5) as MiniJava programs.
//!
//! Integration tests assert that Cut-Shortcut reproduces the precise
//! (context-sensitive) points-to sets described in the paper for each of
//! them, and the `motivating_example` binary walks through Figure 1.

use crate::jdk::MINI_JDK;

/// Figure 1: the Carton/Item motivating example. Under CI, `result1` and
/// `result2` both point to `{o16, o21}`; under Cut-Shortcut (and 2obj) each
/// points only to its own item.
pub const FIGURE1: &str = r#"
class Carton {
    Item item;
    void setItem(Item item) { this.item = item; }
    Item getItem() { Item r; r = this.item; return r; }
}
class Item { }
class Main {
    static void main() {
        Carton c1 = new Carton();
        Item item1 = new Item();
        c1.setItem(item1);
        Item result1 = c1.getItem();
        Carton c2 = new Carton();
        Item item2 = new Item();
        c2.setItem(item2);
        Item result2 = c2.getItem();
    }
}
"#;

/// Figure 3: nested calls for field access. The store happens two call
/// levels below the allocation sites; `tempStores` propagation
/// (`[PropStore]`) must walk `A.set ← A.<init> ← main` to place the
/// shortcuts `t1 → o8.f` / `t2 → o10.f`.
pub const FIGURE3: &str = r#"
class T { }
class A {
    T f;
    A(T t) { this.set(t); }
    void set(T p) { this.f = p; }
    T get() { T r; r = this.f; return r; }
}
class Main {
    static void main() {
        T t1 = new T();
        A a1 = new A(t1);
        T t2 = new T();
        A a2 = new A(t2);
        T x1 = a1.get();
        T x2 = a2.get();
    }
}
"#;

/// Figure 4: the ArrayList/iterator container example (lines 1–14 of the
/// paper's listing), on top of the mini-JDK.
pub fn figure4() -> String {
    format!(
        r#"{MINI_JDK}
class Main {{
    static void main() {{
        ArrayList l1 = new ArrayList();
        Object a = new Object();
        l1.add(a);
        Object x = l1.get(0);
        ArrayList l2 = new ArrayList();
        Object b = new Object();
        l2.add(b);
        Object y = l2.get(0);
        Iterator it1 = l1.iterator();
        Object r1 = it1.next();
        Iterator it2 = l2.iterator();
        Object r2 = it2.next();
    }}
}}
"#
    )
}

/// Figure 5: the `select` local-flow example. Under CI all four objects
/// merge into both `r1` and `r2`; Cut-Shortcut keeps `r1 = {o10, o11}` and
/// `r2 = {o14, o15}`.
pub const FIGURE5: &str = r#"
class A { }
class Main {
    static A select(A p1, A p2) {
        A r;
        if (true) {
            r = p1;
        } else {
            r = p2;
        }
        return r;
    }
    static void main() {
        A a1 = new A();
        A a2 = new A();
        A r1 = select(a1, a2);
        A a3 = new A();
        A a4 = new A();
        A r2 = select(a3, a4);
    }
}
"#;

/// A map + views example exercising the host-dependent-object machinery
/// (`keySet()` / `values()` / their iterators) described in §3.3.2.
pub fn map_views() -> String {
    format!(
        r#"{MINI_JDK}
class K {{ }}
class V {{ }}
class Main {{
    static void main() {{
        HashMap m1 = new HashMap();
        K k1 = new K();
        V v1 = new V();
        Object old1 = m1.put(k1, v1);
        HashMap m2 = new HashMap();
        K k2 = new K();
        V v2 = new V();
        Object old2 = m2.put(k2, v2);
        Object g1 = m1.get(k1);
        Object g2 = m2.get(k2);
        KeySetView ks1 = m1.keySet();
        KeyIterator ki1 = ks1.iterator();
        Object kk1 = ki1.next();
        ValuesView vs2 = m2.values();
        ValueIterator vi2 = vs2.iterator();
        Object vv2 = vi2.next();
    }}
}}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_examples_compile() {
        for (name, src) in [
            ("figure1", FIGURE1.to_owned()),
            ("figure3", FIGURE3.to_owned()),
            ("figure4", figure4()),
            ("figure5", FIGURE5.to_owned()),
            ("map_views", map_views()),
        ] {
            csc_frontend::compile(&src)
                .unwrap_or_else(|e| panic!("example `{name}` fails to compile: {e}"));
        }
    }
}
