//! Seeded program-delta generator for the incremental-solve harness.
//!
//! Produces [`ProgramDelta`] edit scripts against an already-compiled
//! [`Program`], mixing the edit kinds the incremental solver must handle:
//!
//! * **clone** — re-append a copy of an existing pointer-relevant
//!   statement (New/Assign/Cast/Load/Store/Call) to its own method, the
//!   way edits duplicate logic;
//! * **fresh flow** — a new local, a `new` into it, and an assignment
//!   into an existing reference variable of the method (new allocation
//!   sites feeding existing flows);
//! * **remove** — delete a random top-level statement tree
//!   ([`DeltaOp::RemoveStmt`], the non-monotone case that forces the
//!   solver's removal-cone machinery);
//! * **new code** — a fresh class with a static identity method, wired
//!   into the program by a static call from an existing method (new
//!   reachable code, new classes, dispatch-table growth).
//!
//! Deltas are a pure function of `(program, config)`: the differential
//! harness and the CLI `resolve --gen-deltas` path must agree on the edit
//! sequence given the same seed. Generated deltas always apply cleanly —
//! the generator tracks id allocation (vars, classes, methods append in
//! op order) and top-level body lengths exactly as
//! [`ProgramDelta::apply`] does.

use csc_ir::{ClassId, DeltaOp, DeltaStmt, MethodId, Program, ProgramDelta, Stmt, VarId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Knobs for one generated delta.
#[derive(Clone, Debug)]
pub struct DeltaGenConfig {
    /// RNG seed (the delta is a pure function of the config and program).
    pub seed: u64,
    /// Number of edit actions (each action may emit several ops).
    pub actions: usize,
    /// Whether removal actions are allowed. `false` generates monotone
    /// (additions-only) deltas, which the incremental solver must never
    /// fall back on for plain analyses.
    pub removals: bool,
}

impl Default for DeltaGenConfig {
    fn default() -> Self {
        DeltaGenConfig {
            seed: 1,
            actions: 8,
            removals: true,
        }
    }
}

/// Generates one delta against `program`. Always applies cleanly
/// (`ProgramDelta::apply(program).is_ok()`, covered by tests).
pub fn generate_delta(program: &Program, cfg: &DeltaGenConfig) -> ProgramDelta {
    let mut g = DeltaGen::new(program, cfg.seed);
    for _ in 0..cfg.actions {
        // Removals are rarer than additions (realistic edits grow code),
        // and each action falls through to the next kind when the program
        // has no eligible site for it.
        let kind = if cfg.removals {
            g.rng.gen_range(0..5)
        } else {
            // Skip kind 2 (remove) entirely in monotone mode.
            [0usize, 1, 3, 4][g.rng.gen_range(0..4)]
        };
        match kind {
            0 | 3 => g.clone_stmt(),
            1 => g.fresh_flow(),
            2 => g.remove_stmt(),
            _ => g.new_code(),
        }
    }
    ProgramDelta { ops: g.ops }
}

/// Generator state: the op list under construction plus the id-allocation
/// and body-length bookkeeping that keeps every emitted op valid.
struct DeltaGen<'p> {
    program: &'p Program,
    rng: StdRng,
    ops: Vec<DeltaOp>,
    /// Next var id a delta-allocated variable will get.
    next_var: usize,
    /// Next class id `AddClass` will get.
    next_class: usize,
    /// Next method id `AddMethod` will get.
    next_method: usize,
    /// Current *top-level* body length per edited method (delta-aware).
    body_len: HashMap<MethodId, usize>,
    /// Methods with a body in the base program (clone/remove/call targets).
    concrete: Vec<MethodId>,
    /// `(method, stmt)` pairs clonable as [`DeltaStmt`]s.
    clonable: Vec<(MethodId, DeltaStmt)>,
}

impl<'p> DeltaGen<'p> {
    fn new(program: &'p Program, seed: u64) -> Self {
        let concrete: Vec<MethodId> = (0..program.methods().len())
            .map(MethodId::from_usize)
            .filter(|&m| !program.method(m).is_abstract())
            .collect();
        let mut clonable = Vec::new();
        for &m in &concrete {
            for stmt in program.method(m).body() {
                if let Some(ds) = as_delta_stmt(program, stmt) {
                    clonable.push((m, ds));
                }
            }
        }
        DeltaGen {
            program,
            rng: StdRng::seed_from_u64(seed),
            ops: Vec::new(),
            next_var: program.vars().len(),
            next_class: program.classes().len(),
            next_method: program.methods().len(),
            body_len: HashMap::new(),
            concrete,
            clonable,
        }
    }

    fn len_of(&mut self, m: MethodId) -> usize {
        *self
            .body_len
            .entry(m)
            .or_insert_with(|| self.program.method(m).body().len())
    }

    fn push_stmt(&mut self, m: MethodId, stmt: DeltaStmt) {
        *self
            .body_len
            .entry(m)
            .or_insert_with(|| self.program.method(m).body().len()) += 1;
        self.ops.push(DeltaOp::AddStmt { method: m, stmt });
    }

    /// A random concrete class (abstract classes cannot be instantiated).
    fn pick_class(&mut self) -> ClassId {
        let concrete: Vec<ClassId> = (0..self.program.classes().len())
            .map(ClassId::from_usize)
            .filter(|&c| !self.program.class(c).is_abstract())
            .collect();
        concrete[self.rng.gen_range(0..concrete.len())]
    }

    /// A random reference-typed variable of `m`, if any.
    fn pick_ref_var(&mut self, m: MethodId) -> Option<VarId> {
        let vars: Vec<VarId> = self
            .program
            .method(m)
            .vars()
            .iter()
            .copied()
            .filter(|&v| self.program.var(v).ty().is_reference())
            .collect();
        if vars.is_empty() {
            None
        } else {
            Some(vars[self.rng.gen_range(0..vars.len())])
        }
    }

    fn clone_stmt(&mut self) {
        if self.clonable.is_empty() {
            return self.fresh_flow();
        }
        let i = self.rng.gen_range(0..self.clonable.len());
        let (m, ds) = self.clonable[i].clone();
        self.push_stmt(m, ds);
    }

    fn fresh_flow(&mut self) {
        let m = self.concrete[self.rng.gen_range(0..self.concrete.len())];
        let class = self.pick_class();
        let v = VarId::from_usize(self.next_var);
        self.next_var += 1;
        self.ops.push(DeltaOp::AddLocal { method: m, class });
        self.push_stmt(m, DeltaStmt::New { lhs: v, class });
        if let Some(dst) = self.pick_ref_var(m) {
            self.push_stmt(m, DeltaStmt::Assign { lhs: dst, rhs: v });
        }
    }

    fn remove_stmt(&mut self) {
        // Only remove statements that still exist; prefer methods with a
        // few statements so the removal hits real flow, not a lone return.
        for _ in 0..8 {
            let m = self.concrete[self.rng.gen_range(0..self.concrete.len())];
            let len = self.len_of(m);
            if len == 0 {
                continue;
            }
            let index = self.rng.gen_range(0..len) as u32;
            *self.body_len.get_mut(&m).expect("len_of inserted") -= 1;
            self.ops.push(DeltaOp::RemoveStmt { method: m, index });
            return;
        }
    }

    fn new_code(&mut self) {
        let object = self.program.object_class();
        let class = ClassId::from_usize(self.next_class);
        self.next_class += 1;
        self.ops.push(DeltaOp::AddClass {
            name: format!("GenC{}", class.index()),
            superclass: None,
            fields: vec![("gf".to_owned(), object)],
        });
        // A static identity method: `static Object gen(Object p) { return p; }`.
        // Static + one param + a return allocates exactly two vars (param,
        // `@ret`), in that order.
        let method = MethodId::from_usize(self.next_method);
        self.next_method += 1;
        let param = VarId::from_usize(self.next_var);
        let ret = VarId::from_usize(self.next_var + 1);
        self.next_var += 2;
        self.ops.push(DeltaOp::AddMethod {
            class,
            name: "gen".to_owned(),
            params: vec![object],
            ret: Some(object),
            is_static: true,
        });
        self.body_len.insert(method, 0);
        self.push_stmt(
            method,
            DeltaStmt::Assign {
                lhs: ret,
                rhs: param,
            },
        );
        // Wire it in: call it from the entry half the time (guaranteed
        // reachable), a random method otherwise.
        let caller = if self.rng.gen_bool(0.5) {
            self.program.entry()
        } else {
            self.concrete[self.rng.gen_range(0..self.concrete.len())]
        };
        let lhs = VarId::from_usize(self.next_var);
        self.next_var += 1;
        self.ops.push(DeltaOp::AddLocal {
            method: caller,
            class: object,
        });
        let arg = self.pick_ref_var(caller).unwrap_or(lhs);
        self.push_stmt(
            caller,
            DeltaStmt::Call {
                lhs: Some(lhs),
                recv: None,
                target: method,
                args: vec![arg],
            },
        );
    }
}

/// Converts a body statement back into the [`DeltaStmt`] that would emit
/// an equivalent copy. `None` for statements the delta language does not
/// cover (control flow, primitives, special calls).
fn as_delta_stmt(program: &Program, stmt: &Stmt) -> Option<DeltaStmt> {
    Some(match *stmt {
        Stmt::New { lhs, obj } => DeltaStmt::New {
            lhs,
            class: program.obj(obj).class(),
        },
        Stmt::Assign { lhs, rhs } => DeltaStmt::Assign { lhs, rhs },
        Stmt::Cast(id) => {
            let site = program.cast(id);
            DeltaStmt::Cast {
                lhs: site.lhs(),
                rhs: site.rhs(),
                class: site.ty().as_class()?,
            }
        }
        Stmt::Load(id) => {
            let site = program.load(id);
            DeltaStmt::Load {
                lhs: site.lhs(),
                base: site.base(),
                field: site.field(),
            }
        }
        Stmt::Store(id) => {
            let site = program.store(id);
            DeltaStmt::Store {
                base: site.base(),
                field: site.field(),
                rhs: site.rhs(),
            }
        }
        Stmt::Call(id) => {
            let site = program.call_site(id);
            // Special (constructor/super) calls bind exact targets; the
            // delta language only expresses static and virtual calls.
            match site.kind() {
                csc_ir::CallKind::Static => DeltaStmt::Call {
                    lhs: site.lhs(),
                    recv: None,
                    target: site.target(),
                    args: site.args().to_vec(),
                },
                csc_ir::CallKind::Virtual => DeltaStmt::Call {
                    lhs: site.lhs(),
                    recv: Some(site.recv()?),
                    target: site.target(),
                    args: site.args().to_vec(),
                },
                csc_ir::CallKind::Special => return None,
            }
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_deltas_apply_cleanly() {
        let program = crate::compiled("hsqldb").unwrap();
        for seed in 0..24 {
            let cfg = DeltaGenConfig {
                seed,
                actions: 10,
                removals: true,
            };
            let delta = generate_delta(program, &cfg);
            assert!(!delta.ops.is_empty(), "seed {seed}: empty delta");
            let (patched, fx) = delta
                .apply(program)
                .unwrap_or_else(|e| panic!("seed {seed}: delta must apply: {e}"));
            assert!(patched.vars().len() >= program.vars().len());
            assert_eq!(fx.base.methods, program.methods().len());
        }
    }

    #[test]
    fn monotone_mode_never_removes() {
        let program = crate::compiled("findbugs").unwrap();
        for seed in 0..16 {
            let cfg = DeltaGenConfig {
                seed,
                actions: 12,
                removals: false,
            };
            let delta = generate_delta(program, &cfg);
            let (_, fx) = delta.apply(program).expect("monotone delta applies");
            assert!(fx.additions_only(), "seed {seed}: removal in monotone mode");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let program = crate::compiled("findbugs").unwrap();
        let cfg = DeltaGenConfig::default();
        let a = generate_delta(program, &cfg);
        let b = generate_delta(program, &cfg);
        assert_eq!(a, b);
    }

    /// Deltas chain: applying a generated delta to the *patched* program
    /// keeps working (the CLI's `--gen-deltas N` path).
    #[test]
    fn deltas_chain_across_patched_programs() {
        let program = crate::compiled("findbugs").unwrap();
        let mut current = program.clone();
        for step in 0..4 {
            let cfg = DeltaGenConfig {
                seed: 100 + step,
                actions: 6,
                removals: true,
            };
            let delta = generate_delta(&current, &cfg);
            let (patched, _) = delta
                .apply(&current)
                .unwrap_or_else(|e| panic!("step {step}: {e}"));
            current = patched;
        }
    }
}
