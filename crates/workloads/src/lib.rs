//! # csc-workloads — mini-JDK and benchmark programs for the Cut-Shortcut
//! evaluation
//!
//! Provides:
//!
//! * [`jdk::MINI_JDK`] — the container library (linked-node `ArrayList`,
//!   `LinkedList`, `HashSet`, `HashMap` with key/value views and iterators)
//!   that substitutes for the JDK in the paper's evaluation;
//! * [`examples`] — the paper's Figures 1, 3, 4, 5 as MiniJava programs;
//! * [`gen`] — a seeded synthetic benchmark generator mixing the paper's
//!   imprecision patterns at configurable scale;
//! * [`suite`] — the ten-program evaluation suite named after the paper's
//!   subjects.
//!
//! ```
//! let bench = csc_workloads::by_name("hsqldb").unwrap();
//! let program = bench.compile();
//! assert!(program.methods().len() > 40);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delta_gen;
pub mod examples;
pub mod gen;
pub mod jdk;
pub mod suite;

pub use delta_gen::{generate_delta, DeltaGenConfig};
pub use gen::{generate, GenConfig};
pub use jdk::MINI_JDK;
pub use suite::{by_name, compiled, suite, xl, Benchmark};
