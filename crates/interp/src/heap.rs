//! Runtime values and the concrete heap.

use std::collections::HashMap;

use csc_ir::{ClassId, FieldId, ObjId};

/// A runtime value.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// `null` (also the value of uninitialized reference slots).
    Null,
    /// Reference to a heap object (index into the heap).
    Ref(u32),
}

impl Value {
    /// Integer view (0 for non-integers; the workload language is typed, so
    /// this only happens for uninitialized slots).
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(v) => v,
            _ => 0,
        }
    }

    /// Boolean view (`false` for non-booleans).
    pub fn as_bool(self) -> bool {
        matches!(self, Value::Bool(true))
    }
}

/// A concrete heap object.
#[derive(Clone, Debug)]
pub struct HeapObj {
    /// Dynamic class.
    pub class: ClassId,
    /// The allocation site that created it.
    pub site: ObjId,
    /// Field store (uninitialized fields read as the type's default).
    pub fields: HashMap<FieldId, Value>,
}

/// The heap: an arena of objects. Exposed so that clients embedding the
/// interpreter can inspect final heap states.
#[derive(Default, Debug)]
pub struct Heap {
    objs: Vec<HeapObj>,
}

impl Heap {
    /// Allocates a fresh object of `class` from allocation site `site`.
    pub fn alloc(&mut self, class: ClassId, site: ObjId) -> u32 {
        let id = u32::try_from(self.objs.len()).expect("heap exhausted");
        self.objs.push(HeapObj {
            class,
            site,
            fields: HashMap::new(),
        });
        id
    }

    /// Immutable object access.
    pub fn get(&self, r: u32) -> &HeapObj {
        &self.objs[r as usize]
    }

    /// Mutable object access.
    pub fn get_mut(&mut self, r: u32) -> &mut HeapObj {
        &mut self.objs[r as usize]
    }

    /// Number of live (all) objects.
    pub fn len(&self) -> usize {
        self.objs.len()
    }

    /// Whether no object was allocated.
    pub fn is_empty(&self) -> bool {
        self.objs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_fields() {
        let mut h = Heap::default();
        let r = h.alloc(ClassId::new(0), ObjId::new(3));
        assert_eq!(h.get(r).site, ObjId::new(3));
        h.get_mut(r).fields.insert(FieldId::new(1), Value::Int(7));
        assert_eq!(h.get(r).fields[&FieldId::new(1)], Value::Int(7));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn value_views() {
        assert_eq!(Value::Int(5).as_int(), 5);
        assert_eq!(Value::Null.as_int(), 0);
        assert!(Value::Bool(true).as_bool());
        assert!(!Value::Null.as_bool());
    }
}
