//! The recall (soundness) check of §5.1: every dynamically reached method
//! and executed call edge must be present in a sound static result.

use std::collections::BTreeSet;

use csc_ir::{CallSiteId, MethodId};

use crate::eval::Trace;

/// Outcome of comparing a dynamic trace against one static analysis result.
#[derive(Clone, Debug)]
pub struct RecallReport {
    /// Dynamically reached methods.
    pub dynamic_methods: usize,
    /// Dynamically executed call edges.
    pub dynamic_edges: usize,
    /// Dynamic methods the static analysis missed (must be empty for a
    /// sound analysis).
    pub missed_methods: Vec<MethodId>,
    /// Dynamic call edges the static analysis missed.
    pub missed_edges: Vec<(CallSiteId, MethodId)>,
}

impl RecallReport {
    /// 100% recall: nothing dynamic was missed.
    pub fn full_recall(&self) -> bool {
        self.missed_methods.is_empty() && self.missed_edges.is_empty()
    }

    /// Recalled-method ratio in percent.
    pub fn method_recall_pct(&self) -> f64 {
        if self.dynamic_methods == 0 {
            100.0
        } else {
            100.0 * (self.dynamic_methods - self.missed_methods.len()) as f64
                / self.dynamic_methods as f64
        }
    }

    /// Recalled-edge ratio in percent.
    pub fn edge_recall_pct(&self) -> f64 {
        if self.dynamic_edges == 0 {
            100.0
        } else {
            100.0 * (self.dynamic_edges - self.missed_edges.len()) as f64
                / self.dynamic_edges as f64
        }
    }
}

/// Compares a dynamic trace against a static reachable-method set and call
/// graph (both context-insensitively projected).
pub fn check_recall(
    trace: &Trace,
    static_methods: &BTreeSet<MethodId>,
    static_edges: &BTreeSet<(CallSiteId, MethodId)>,
) -> RecallReport {
    let mut missed_methods: Vec<MethodId> = trace
        .reached_methods
        .iter()
        .copied()
        .filter(|m| !static_methods.contains(m))
        .collect();
    missed_methods.sort_unstable();
    let mut missed_edges: Vec<(CallSiteId, MethodId)> = trace
        .call_edges
        .iter()
        .copied()
        .filter(|e| !static_edges.contains(e))
        .collect();
    missed_edges.sort_unstable();
    RecallReport {
        dynamic_methods: trace.reached_methods.len(),
        dynamic_edges: trace.call_edges.len(),
        missed_methods,
        missed_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{execute, InterpConfig};

    #[test]
    fn full_recall_against_matching_sets() {
        let program = csc_frontend::compile(
            r#"
            class A { void m() { } }
            class Main { static void main() { A a = new A(); a.m(); } }
            "#,
        )
        .unwrap();
        let trace = execute(&program, InterpConfig::default()).unwrap();
        let methods = trace.reached_methods.clone();
        let edges = trace.call_edges.clone();
        let report = check_recall(&trace, &methods, &edges);
        assert!(report.full_recall());
        assert_eq!(report.method_recall_pct(), 100.0);
    }

    #[test]
    fn missing_method_detected() {
        let program = csc_frontend::compile(
            r#"
            class A { void m() { } }
            class Main { static void main() { A a = new A(); a.m(); } }
            "#,
        )
        .unwrap();
        let trace = execute(&program, InterpConfig::default()).unwrap();
        let report = check_recall(&trace, &BTreeSet::new(), &BTreeSet::new());
        assert!(!report.full_recall());
        assert_eq!(report.missed_methods.len(), trace.reached_methods.len());
        assert!(report.method_recall_pct() < 1.0);
    }
}
