//! The evaluator: direct interpretation of the structured IR.

use std::collections::{BTreeSet, HashMap};
use std::error::Error;
use std::fmt;

use csc_ir::{BinOp, CallKind, CallSiteId, MethodId, Program, Stmt, Type, VarId};

use crate::heap::{Heap, Value};

/// Interpreter limits.
#[derive(Copy, Clone, Debug)]
pub struct InterpConfig {
    /// Maximum number of executed statements.
    pub max_steps: u64,
    /// Maximum call depth; deeper calls return `null` (counted in
    /// [`Trace::truncated_calls`]).
    pub max_call_depth: usize,
}

impl Default for InterpConfig {
    fn default() -> Self {
        InterpConfig {
            max_steps: 50_000_000,
            max_call_depth: 2048,
        }
    }
}

/// The dynamic ground truth recorded by an execution.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Methods that were entered.
    pub reached_methods: BTreeSet<MethodId>,
    /// `(call site, concrete callee)` pairs that executed.
    pub call_edges: BTreeSet<(CallSiteId, MethodId)>,
    /// Executed statements.
    pub steps: u64,
    /// Heap allocations performed.
    pub allocations: usize,
    /// Casts that failed at run time (execution continues with `null`,
    /// which only shrinks later coverage — safe for recall).
    pub failed_casts: usize,
    /// Operations skipped due to a `null` base/receiver.
    pub null_derefs: usize,
    /// Calls cut short by the depth limit.
    pub truncated_calls: usize,
}

/// Execution failed outright (the step budget is the only cause; the partial
/// trace is preserved).
#[derive(Debug)]
pub struct ExecError {
    /// What was recorded before the budget ran out.
    pub partial: Trace,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "step budget exhausted after {} steps",
            self.partial.steps
        )
    }
}

impl Error for ExecError {}

/// Runs the program from its entry point and records the dynamic trace.
///
/// # Errors
///
/// Returns [`ExecError`] (carrying the partial trace) when the step budget
/// is exhausted.
pub fn execute(program: &Program, cfg: InterpConfig) -> Result<Trace, ExecError> {
    let mut interp = Interp {
        program,
        heap: Heap::default(),
        trace: Trace::default(),
        cfg,
    };
    let entry = program.entry();
    interp.trace.reached_methods.insert(entry);
    match interp.run_method(entry, None, &[], 0) {
        Ok(_) => Ok(interp.trace),
        Err(Stop::Budget) => Err(ExecError {
            partial: interp.trace,
        }),
    }
}

/// Non-local exit: only the step budget unwinds the whole execution.
enum Stop {
    Budget,
}

/// Block-level control flow.
enum Flow {
    Normal,
    Return,
}

struct Frame {
    locals: HashMap<VarId, Value>,
}

impl Frame {
    fn read(&self, program: &Program, v: VarId) -> Value {
        self.locals
            .get(&v)
            .copied()
            .unwrap_or_else(|| match program.var(v).ty() {
                Type::Int => Value::Int(0),
                Type::Boolean => Value::Bool(false),
                _ => Value::Null,
            })
    }

    fn write(&mut self, v: VarId, val: Value) {
        self.locals.insert(v, val);
    }
}

struct Interp<'p> {
    program: &'p Program,
    heap: Heap,
    trace: Trace,
    cfg: InterpConfig,
}

impl Interp<'_> {
    fn tick(&mut self) -> Result<(), Stop> {
        self.trace.steps += 1;
        if self.trace.steps > self.cfg.max_steps {
            Err(Stop::Budget)
        } else {
            Ok(())
        }
    }

    fn run_method(
        &mut self,
        m: MethodId,
        this: Option<Value>,
        args: &[Value],
        depth: usize,
    ) -> Result<Value, Stop> {
        let method = self.program.method(m);
        let mut frame = Frame {
            locals: HashMap::new(),
        };
        if let (Some(tv), Some(t)) = (method.this_var(), this) {
            frame.write(tv, t);
        }
        for (&p, &a) in method.params().iter().zip(args) {
            frame.write(p, a);
        }
        // The body is cloned out of the program to sidestep aliasing with
        // `&mut self`; bodies are small and this is the recall harness, not
        // the hot path.
        let body = method.body().to_vec();
        self.exec_block(&mut frame, &body, depth)?;
        Ok(match method.ret_var() {
            Some(rv) => frame.read(self.program, rv),
            None => Value::Null,
        })
    }

    fn exec_block(&mut self, frame: &mut Frame, body: &[Stmt], depth: usize) -> Result<Flow, Stop> {
        for s in body {
            self.tick()?;
            match s {
                Stmt::New { lhs, obj } => {
                    let class = self.program.obj(*obj).class();
                    let r = self.heap.alloc(class, *obj);
                    self.trace.allocations += 1;
                    frame.write(*lhs, Value::Ref(r));
                }
                Stmt::Assign { lhs, rhs } => {
                    let v = frame.read(self.program, *rhs);
                    frame.write(*lhs, v);
                }
                Stmt::Cast(id) => {
                    let c = self.program.cast(*id);
                    let v = frame.read(self.program, c.rhs());
                    let ok = match (v, c.ty()) {
                        (Value::Null, _) => true,
                        (Value::Ref(r), Type::Class(target)) => {
                            self.program.is_subclass(self.heap.get(r).class, target)
                        }
                        _ => false,
                    };
                    if ok {
                        frame.write(c.lhs(), v);
                    } else {
                        self.trace.failed_casts += 1;
                        frame.write(c.lhs(), Value::Null);
                    }
                }
                Stmt::Load(id) => {
                    let l = self.program.load(*id);
                    match frame.read(self.program, l.base()) {
                        Value::Ref(r) => {
                            let v = self
                                .heap
                                .get(r)
                                .fields
                                .get(&l.field())
                                .copied()
                                .unwrap_or_else(|| default_of(self.program, l.lhs()));
                            frame.write(l.lhs(), v);
                        }
                        _ => {
                            self.trace.null_derefs += 1;
                            frame.write(l.lhs(), default_of(self.program, l.lhs()));
                        }
                    }
                }
                Stmt::Store(id) => {
                    let st = self.program.store(*id);
                    let v = frame.read(self.program, st.rhs());
                    match frame.read(self.program, st.base()) {
                        Value::Ref(r) => {
                            self.heap.get_mut(r).fields.insert(st.field(), v);
                        }
                        _ => self.trace.null_derefs += 1,
                    }
                }
                Stmt::Call(id) => {
                    self.exec_call(frame, *id, depth)?;
                }
                Stmt::Return => return Ok(Flow::Return),
                Stmt::ConstInt { lhs, value } => frame.write(*lhs, Value::Int(*value)),
                Stmt::ConstBool { lhs, value } => frame.write(*lhs, Value::Bool(*value)),
                Stmt::ConstNull { lhs } => frame.write(*lhs, Value::Null),
                Stmt::BinOp { lhs, op, a, b } => {
                    let va = frame.read(self.program, *a);
                    let vb = frame.read(self.program, *b);
                    frame.write(*lhs, eval_binop(*op, va, vb));
                }
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    let branch = if frame.read(self.program, *cond).as_bool() {
                        then_branch
                    } else {
                        else_branch
                    };
                    if let Flow::Return = self.exec_block(frame, branch, depth)? {
                        return Ok(Flow::Return);
                    }
                }
                Stmt::While {
                    cond_stmts,
                    cond,
                    body,
                } => loop {
                    if let Flow::Return = self.exec_block(frame, cond_stmts, depth)? {
                        return Ok(Flow::Return);
                    }
                    if !frame.read(self.program, *cond).as_bool() {
                        break;
                    }
                    if let Flow::Return = self.exec_block(frame, body, depth)? {
                        return Ok(Flow::Return);
                    }
                },
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_call(&mut self, frame: &mut Frame, site: CallSiteId, depth: usize) -> Result<(), Stop> {
        let cs = self.program.call_site(site);
        let (kind, lhs, target) = (cs.kind(), cs.lhs(), cs.target());
        let args: Vec<Value> = cs
            .args()
            .iter()
            .map(|&a| frame.read(self.program, a))
            .collect();
        let (callee, this) = match kind {
            CallKind::Static => (Some(target), None),
            CallKind::Special | CallKind::Virtual => {
                match cs.recv().map(|r| frame.read(self.program, r)) {
                    Some(Value::Ref(r)) => {
                        let callee = if kind == CallKind::Special {
                            Some(target)
                        } else {
                            self.program.dispatch(self.heap.get(r).class, target)
                        };
                        (callee, Some(Value::Ref(r)))
                    }
                    _ => {
                        self.trace.null_derefs += 1;
                        (None, None)
                    }
                }
            }
        };
        let result = match callee {
            Some(callee) if depth < self.cfg.max_call_depth => {
                self.trace.call_edges.insert((site, callee));
                self.trace.reached_methods.insert(callee);
                self.run_method(callee, this, &args, depth + 1)?
            }
            Some(_) => {
                self.trace.truncated_calls += 1;
                Value::Null
            }
            None => Value::Null,
        };
        if let Some(lhs) = lhs {
            frame.write(lhs, result);
        }
        Ok(())
    }
}

fn default_of(program: &Program, v: VarId) -> Value {
    match program.var(v).ty() {
        Type::Int => Value::Int(0),
        Type::Boolean => Value::Bool(false),
        _ => Value::Null,
    }
}

fn eval_binop(op: BinOp, a: Value, b: Value) -> Value {
    match op {
        BinOp::Add => Value::Int(a.as_int().wrapping_add(b.as_int())),
        BinOp::Sub => Value::Int(a.as_int().wrapping_sub(b.as_int())),
        BinOp::Mul => Value::Int(a.as_int().wrapping_mul(b.as_int())),
        BinOp::Rem => {
            let d = b.as_int();
            Value::Int(if d == 0 { 0 } else { a.as_int() % d })
        }
        BinOp::Lt => Value::Bool(a.as_int() < b.as_int()),
        BinOp::Le => Value::Bool(a.as_int() <= b.as_int()),
        BinOp::EqInt => Value::Bool(a.as_int() == b.as_int()),
        BinOp::NeInt => Value::Bool(a.as_int() != b.as_int()),
        BinOp::EqRef => Value::Bool(a == b),
        BinOp::NeRef => Value::Bool(a != b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Trace {
        let program = csc_frontend::compile(src).expect("compiles");
        execute(&program, InterpConfig::default()).expect("within budget")
    }

    #[test]
    fn records_reached_methods_and_edges() {
        let t = run(r#"
            class A { void m() { } }
            class B extends A { void m() { } }
            class Main {
                static void main() {
                    A a = new B();
                    a.m();
                }
            }
        "#);
        assert_eq!(t.reached_methods.len(), 2, "main and B.m only");
        assert_eq!(t.call_edges.len(), 1);
        assert_eq!(t.allocations, 1);
    }

    #[test]
    fn loops_and_arithmetic() {
        let t = run(r#"
            class Main {
                static void main() {
                    int i = 0;
                    int sum = 0;
                    while (i < 10) {
                        sum = sum + i;
                        i = i + 1;
                    }
                }
            }
        "#);
        assert!(t.steps > 30);
    }

    #[test]
    fn field_roundtrip_and_dispatch() {
        let t = run(r#"
            class Box { Object f; void set(Object v) { this.f = v; } Object get() { return this.f; } }
            class Main {
                static void main() {
                    Box b = new Box();
                    Object o = new Object();
                    b.set(o);
                    Object got = b.get();
                }
            }
        "#);
        assert_eq!(t.null_derefs, 0);
        assert_eq!(t.call_edges.len(), 2);
    }

    #[test]
    fn failing_cast_continues_with_null() {
        let t = run(r#"
            class A { }
            class B { void m() { } }
            class Main {
                static void main() {
                    Object o = new A();
                    B b = (B) o;
                    if (b == null) { } else { b.m(); }
                }
            }
        "#);
        assert_eq!(t.failed_casts, 1);
        // B.m never runs because the cast yielded null.
        assert_eq!(t.call_edges.len(), 0);
    }

    #[test]
    fn early_return_from_loop() {
        let t = run(r#"
            class Main {
                static int find() {
                    int i = 0;
                    while (i < 100) {
                        if (i == 3) { return i; }
                        i = i + 1;
                    }
                    return 0;
                }
                static void main() { int x = Main.find(); }
            }
        "#);
        assert!(t.steps < 100, "early return must exit the loop");
    }

    #[test]
    fn step_budget_enforced() {
        let program = csc_frontend::compile(
            r#"
            class Main {
                static void main() {
                    int i = 0;
                    while (0 <= i) { i = 1; }
                }
            }
        "#,
        )
        .unwrap();
        let err = execute(
            &program,
            InterpConfig {
                max_steps: 1000,
                max_call_depth: 16,
            },
        )
        .unwrap_err();
        assert!(err.partial.steps >= 1000);
    }

    #[test]
    fn null_deref_is_lenient() {
        let t = run(r#"
            class Box { Object f; }
            class Main {
                static void main() {
                    Box b = null;
                    Object x = b.f;
                    b.f = x;
                }
            }
        "#);
        assert_eq!(t.null_derefs, 2);
    }
}
