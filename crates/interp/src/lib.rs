//! # csc-interp — concrete interpreter for the csc IR
//!
//! Executes a program from `main` with real heap allocation, field
//! mutation, and dynamic dispatch, recording the dynamically reachable
//! methods and call edges. This is the ground truth for the paper's §5.1
//! **recall (soundness) experiment**: every dynamically observed method /
//! call edge must be over-approximated by every sound static analysis.
//!
//! The interpreter is total on the workload language: loops are bounded by
//! the programs themselves, a configurable step budget guards against
//! accidental divergence, division by zero yields zero, reading an
//! uninitialized field yields `null`, and a failing cast or a `null`
//! dereference aborts the enclosing activation (recording stops there, which
//! only ever *shrinks* the dynamic ground truth — safe for recall).
//!
//! ```
//! let program = csc_frontend::compile(r#"
//!     class A { void m() { } }
//!     class Main { static void main() { A a = new A(); a.m(); } }
//! "#).unwrap();
//! let trace = csc_interp::execute(&program, csc_interp::InterpConfig::default()).unwrap();
//! assert_eq!(trace.reached_methods.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod eval;
mod heap;
mod recall;

pub use eval::{execute, ExecError, InterpConfig, Trace};
pub use heap::{Heap, HeapObj, Value};
pub use recall::{check_recall, RecallReport};
