//! Dynamic-semantics tests: the mini-JDK containers must behave correctly
//! under concrete execution — the recall experiment's ground truth is only
//! as good as the interpreter and the library it runs.

use csc_interp::{execute, InterpConfig, Trace};

fn run(main_body: &str) -> Trace {
    let src = format!(
        "{}\nclass Probe {{ int id; }}\nclass Mark0 {{ void hit0() {{ }} }}\nclass Mark1 {{ void hit1() {{ }} }}\nclass Mark2 {{ void hit2() {{ }} }}\nclass Main {{ static void main() {{\n{main_body}\n}} }}",
        csc_workloads::MINI_JDK
    );
    let program = csc_frontend::compile(&src).expect("compiles");
    execute(&program, InterpConfig::default()).expect("bounded")
}

fn reached(trace: &Trace, src: &str, qualified: &str) -> bool {
    let program = csc_frontend::compile(src).unwrap();
    let m = program.method_by_qualified_name(qualified);
    match m {
        Some(m) => trace.reached_methods.contains(&m),
        None => false,
    }
}

/// get(i) must return the i-th element in insertion order.
#[test]
fn arraylist_preserves_insertion_order() {
    let body = r#"
        ArrayList l = new ArrayList();
        l.add(new Mark0());
        l.add(new Mark1());
        l.add(new Mark2());
        Object a = l.get(0);
        Object b = l.get(1);
        Object c = l.get(2);
        Mark0 m0 = (Mark0) a;
        Mark1 m1 = (Mark1) b;
        Mark2 m2 = (Mark2) c;
        m0.hit0();
        m1.hit1();
        m2.hit2();
        int n = l.size();
    "#;
    let t = run(body);
    assert_eq!(t.failed_casts, 0, "order correct => casts succeed");
    assert_eq!(t.null_derefs, 0);
    assert!(t.call_edges.len() > 6);
}

/// The iterator must visit every element exactly once.
#[test]
fn iterator_visits_all_elements() {
    let body = r#"
        ArrayList l = new ArrayList();
        int i = 0;
        while (i < 5) {
            l.add(new Probe());
            i = i + 1;
        }
        Iterator it = l.iterator();
        int seen = 0;
        while (it.hasNext()) {
            Object o = it.next();
            seen = seen + 1;
        }
        if (seen == 5) { } else { Object crash = null; Object x = crash.toStringLike; }
    "#;
    // The `crash` line is a deliberate null dereference; reaching it means
    // the iterator yielded the wrong number of elements.
    let t = run(&body.replace(
        "Object x = crash.toStringLike;",
        "Probe p = (Probe) crash; int z = p.id;",
    ));
    assert_eq!(t.null_derefs, 0, "iterator must yield exactly 5 elements");
}

/// removeFirst is FIFO for add(); addFirst prepends.
#[test]
fn linkedlist_add_first_and_remove_first() {
    let body = r#"
        LinkedList l = new LinkedList();
        l.add(new Mark1());
        l.addFirst(new Mark0());
        Object first = l.removeFirst();
        Mark0 m = (Mark0) first;
        m.hit0();
        Object second = l.removeFirst();
        Mark1 m1 = (Mark1) second;
        m1.hit1();
        boolean e = l.isEmpty();
    "#;
    let t = run(body);
    assert_eq!(t.failed_casts, 0);
    assert_eq!(t.null_derefs, 0);
}

/// put/get key association; overwriting a key returns the old value.
#[test]
fn hashmap_put_get_overwrite() {
    let body = r#"
        HashMap m = new HashMap();
        Probe k = new Probe();
        Object old1 = m.put(k, new Mark0());
        Object old2 = m.put(k, new Mark1());
        Mark0 prev = (Mark0) old2;
        prev.hit0();
        Object got = m.get(k);
        Mark1 cur = (Mark1) got;
        cur.hit1();
        int n = m.size();
        Object miss = m.get(new Probe());
        if (miss == null) { } else { Mark2 bad = (Mark2) miss; bad.hit2(); }
    "#;
    let t = run(body);
    assert_eq!(t.failed_casts, 0, "old value / current value correct");
    // The miss branch must not run.
    let full_src = format!(
        "{}\nclass Probe {{ int id; }}\nclass Mark0 {{ void hit0() {{ }} }}\nclass Mark1 {{ void hit1() {{ }} }}\nclass Mark2 {{ void hit2() {{ }} }}\nclass Main {{ static void main() {{\n{body}\n}} }}",
        csc_workloads::MINI_JDK
    );
    assert!(!reached(&t, &full_src, "Mark2.hit2"));
}

/// remove() unlinks an entry; size shrinks; get() stops finding it.
#[test]
fn hashmap_remove_unlinks() {
    let body = r#"
        HashMap m = new HashMap();
        Probe k1 = new Probe();
        Probe k2 = new Probe();
        m.put(k1, new Mark0());
        m.put(k2, new Mark1());
        Object removed = m.remove(k1);
        Mark0 r = (Mark0) removed;
        r.hit0();
        Object gone = m.get(k1);
        Object still = m.get(k2);
        Mark1 s = (Mark1) still;
        s.hit1();
        int n = m.size();
        if (gone == null) { } else { Mark2 bad = (Mark2) gone; bad.hit2(); }
    "#;
    let t = run(body);
    assert_eq!(t.failed_casts, 0);
    let full_src = format!(
        "{}\nclass Probe {{ int id; }}\nclass Mark0 {{ void hit0() {{ }} }}\nclass Mark1 {{ void hit1() {{ }} }}\nclass Mark2 {{ void hit2() {{ }} }}\nclass Main {{ static void main() {{\n{body}\n}} }}",
        csc_workloads::MINI_JDK
    );
    assert!(!reached(&t, &full_src, "Mark2.hit2"));
}

/// keySet / values views iterate the map's current entries.
#[test]
fn map_views_iterate_entries() {
    let body = r#"
        HashMap m = new HashMap();
        m.put(new Mark0(), new Mark1());
        KeySetView ks = m.keySet();
        KeyIterator ki = ks.iterator();
        while (ki.hasNext()) {
            Object k = ki.next();
            Mark0 mk = (Mark0) k;
            mk.hit0();
        }
        ValuesView vs = m.values();
        ValueIterator vi = vs.iterator();
        while (vi.hasNext()) {
            Object v = vi.next();
            Mark1 mv = (Mark1) v;
            mv.hit1();
        }
    "#;
    let t = run(body);
    assert_eq!(t.failed_casts, 0, "keys are Mark0s, values are Mark1s");
}

/// HashSet deduplicates by reference identity.
#[test]
fn hashset_dedups_by_identity() {
    let body = r#"
        HashSet s = new HashSet();
        Probe p = new Probe();
        s.add(p);
        s.add(p);
        s.add(new Probe());
        int n = s.size();
        if (n == 2) { } else { Probe crash = null; int z = crash.id; }
    "#;
    let t = run(body);
    assert_eq!(t.null_derefs, 0, "size must be exactly 2");
}
