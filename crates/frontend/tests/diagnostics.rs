//! Frontend diagnostics: every class of semantic error must be rejected
//! with a useful message, and accepted programs must have the expected
//! shape.

use csc_frontend::compile;

fn err(src: &str) -> String {
    compile(src).expect_err("must be rejected").to_string()
}

#[test]
fn unknown_type_in_field() {
    let e = err("class A { Missing f; } class Main { static void main() { } }");
    assert!(e.contains("unknown type `Missing`"), "{e}");
}

#[test]
fn unknown_superclass() {
    let e = err("class A extends Nope { } class Main { static void main() { } }");
    assert!(e.contains("unknown superclass"), "{e}");
}

#[test]
fn unknown_variable() {
    let e = err("class Main { static void main() { x = new Object(); } }");
    assert!(e.contains("unknown variable `x`"), "{e}");
}

#[test]
fn unknown_method() {
    let e = err("class Main { static void main() { Object o = new Object(); o.nope(); } }");
    assert!(e.contains("has no method `nope`"), "{e}");
}

#[test]
fn unknown_field() {
    let e = err("class Main { static void main() { Object o = new Object(); Object x = o.f; } }");
    assert!(e.contains("has no field `f`"), "{e}");
}

#[test]
fn arity_mismatch() {
    let e = err("class A { void m(Object x) { } } \
         class Main { static void main() { A a = new A(); a.m(); } }");
    assert!(e.contains("expected 1 argument(s), found 0"), "{e}");
}

#[test]
fn type_mismatch_on_assignment() {
    let e = err("class A { } class B { } \
         class Main { static void main() { A a = new B(); } }");
    assert!(e.contains("cannot assign `B` to `A`"), "{e}");
}

#[test]
fn int_to_reference_rejected() {
    let e = err("class Main { static void main() { Object o = 3; } }");
    assert!(e.contains("cannot assign `int` to `Object`"), "{e}");
}

#[test]
fn void_method_as_value() {
    let e = err("class A { void m() { } } \
         class Main { static void main() { A a = new A(); Object x = a.m(); } }");
    assert!(e.contains("void method `m` used as a value"), "{e}");
}

#[test]
fn missing_main() {
    let e = err("class A { void m() { } }");
    assert!(e.contains("no `static void main()`"), "{e}");
}

#[test]
fn multiple_mains_without_main_class() {
    let e = err("class A { static void main() { } } class B { static void main() { } }");
    assert!(e.contains("multiple `main`"), "{e}");
}

#[test]
fn multiple_mains_with_main_class_resolves() {
    let p = compile("class A { static void main() { } } class Main { static void main() { } }")
        .unwrap();
    assert_eq!(p.qualified_name(p.entry()), "Main.main");
}

#[test]
fn abstract_class_not_instantiable() {
    let e = err("abstract class A { } \
         class Main { static void main() { A a = new A(); } }");
    assert!(e.contains("cannot instantiate abstract class"), "{e}");
}

#[test]
fn super_outside_constructor() {
    let e = err("class A { } class B extends A { void m() { super(); } }
         class Main { static void main() { } }");
    assert!(e.contains("only allowed in constructors"), "{e}");
}

#[test]
fn this_in_static_method() {
    let e = err("class Main { static void main() { Object o = this; } }");
    assert!(e.contains("`this` used in a static method"), "{e}");
}

#[test]
fn duplicate_variable_in_scope() {
    let e = err("class Main { static void main() { int x; int x; } }");
    assert!(e.contains("duplicate variable `x`"), "{e}");
}

#[test]
fn shadowing_across_blocks_allowed() {
    let p = compile(
        "class Main { static void main() { int x = 1; if (x < 2) { int y = 2; } int y = 3; } }",
    );
    assert!(p.is_ok());
}

#[test]
fn condition_must_be_boolean() {
    let e = err("class Main { static void main() { if (1 + 2) { } } }");
    assert!(e.contains("condition must be boolean"), "{e}");
}

#[test]
fn mixed_eq_operands_rejected() {
    let e =
        err("class Main { static void main() { Object o = new Object(); boolean b = o == 1; } }");
    assert!(e.contains("`==`/`!=` require"), "{e}");
}

#[test]
fn implicit_this_field_access() {
    // `item = v;` and reading `item` without `this.` must resolve to the
    // field.
    let p = compile(
        r#"
        class Box {
            Object item;
            void set(Object v) { item = v; }
            Object get() { return item; }
        }
        class Main { static void main() { Box b = new Box(); b.set(new Object()); Object x = b.get(); } }
        "#,
    )
    .unwrap();
    assert_eq!(p.stores().len(), 1);
    assert_eq!(p.loads().len(), 1);
}

#[test]
fn static_call_qualified_and_unqualified() {
    let p = compile(
        r#"
        class Util { static Object id(Object o) { return o; } }
        class Main {
            static Object wrap(Object o) { Object r = Util.id(o); return r; }
            static void main() { Object x = wrap(new Object()); }
        }
        "#,
    )
    .unwrap();
    assert_eq!(p.call_sites().len(), 2);
    assert!(p
        .call_sites()
        .iter()
        .all(|c| c.kind() == csc_ir::CallKind::Static));
}

#[test]
fn deep_field_chains_lower_to_load_sequences() {
    let p = compile(
        r#"
        class A { B b; }
        class B { C c; }
        class C { Object o; }
        class Main {
            static void main() {
                A a = new A();
                Object x = a.b.c.o;
            }
        }
        "#,
    )
    .unwrap();
    assert_eq!(p.loads().len(), 3, "a.b, .c, .o");
}
