//! # csc-frontend — MiniJava frontend for the cut-shortcut pointer analysis
//!
//! Compiles MiniJava — a Java-like source language with classes, single
//! inheritance, constructors, instance fields, virtual/static dispatch,
//! reference casts, and just enough integer arithmetic and structured control
//! flow to make programs executable — into the `csc-ir` program
//! representation analysed by `csc-core` and executed by `csc-interp`.
//!
//! This crate substitutes for the Java bytecode frontend used by the paper's
//! Tai-e/Doop implementations (see DESIGN.md §2): the produced IR matches
//! the paper's formalism domain statement-for-statement.
//!
//! ## Example
//!
//! ```
//! let program = csc_frontend::compile(r#"
//!     class Carton {
//!         Item item;
//!         void setItem(Item item) { this.item = item; }
//!         Item getItem() { Item r; r = this.item; return r; }
//!     }
//!     class Item { }
//!     class Main {
//!         static void main() {
//!             Carton c1 = new Carton();
//!             Item item1 = new Item();
//!             c1.setItem(item1);
//!             Item result1 = c1.getItem();
//!         }
//!     }
//! "#)?;
//! assert_eq!(program.classes().len(), 4); // Object + 3
//! # Ok::<(), csc_frontend::FrontendError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
mod error;
mod lexer;
mod lower;
mod parser;

pub use error::{FrontendError, Pos, Result};
pub use lexer::{lex, Tok, Token};
pub use lower::{compile, lower};
pub use parser::parse;

/// Fingerprint of the *observable lowering semantics* of this frontend.
///
/// Bump it with any change that alters the IR produced for an unchanged
/// source program (new desugarings, statement ordering, id assignment,
/// hierarchy resolution). Consumers that persist lowered IR — the
/// `csc_workloads` on-disk compiled-IR cache — mix this into their cache
/// keys, so stale entries from an older lowering can never be mistaken
/// for fresh output (the `csc-ir` codec version only guards the byte
/// *layout*, not what the frontend put in it).
pub const LOWERING_VERSION: u32 = 1;
