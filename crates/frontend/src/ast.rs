//! Abstract syntax tree for MiniJava.

use crate::error::Pos;

/// A parsed compilation unit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SourceProgram {
    /// All class declarations, in source order.
    pub classes: Vec<ClassDecl>,
}

/// A class declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassDecl {
    /// Class name.
    pub name: String,
    /// Superclass name (`None` means `Object`).
    pub superclass: Option<String>,
    /// Whether the class is abstract.
    pub is_abstract: bool,
    /// Declared fields.
    pub fields: Vec<FieldDecl>,
    /// Declared methods (including constructors).
    pub methods: Vec<MethodDecl>,
    /// Source position of the `class` keyword.
    pub pos: Pos,
}

/// A field declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FieldDecl {
    /// Declared type.
    pub ty: TypeName,
    /// Field name.
    pub name: String,
    /// Source position.
    pub pos: Pos,
}

/// A method or constructor declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MethodDecl {
    /// `static` modifier.
    pub is_static: bool,
    /// `abstract` modifier (no body).
    pub is_abstract: bool,
    /// Whether this is a constructor (name equals the class name).
    pub is_ctor: bool,
    /// Return type (constructors use `void`).
    pub ret: TypeName,
    /// Method name.
    pub name: String,
    /// Parameters as `(type, name)` pairs.
    pub params: Vec<(TypeName, String)>,
    /// Body (absent for abstract methods).
    pub body: Option<Vec<AStmt>>,
    /// Source position.
    pub pos: Pos,
}

/// A syntactic type name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TypeName {
    /// `int`
    Int,
    /// `boolean`
    Boolean,
    /// `void`
    Void,
    /// A class name.
    Named(String),
}

/// A statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AStmt {
    /// `T x;` or `T x = e;`
    Decl {
        /// Declared type.
        ty: TypeName,
        /// Variable name.
        name: String,
        /// Optional initializer.
        init: Option<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// `target = e;`
    Assign {
        /// Assignment target (variable or field).
        target: Target,
        /// Assigned expression.
        value: Expr,
        /// Source position.
        pos: Pos,
    },
    /// An expression evaluated for effect (must be a call).
    ExprStmt(Expr),
    /// `if (cond) { .. } else { .. }`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_branch: Vec<AStmt>,
        /// Else branch (possibly empty).
        else_branch: Vec<AStmt>,
        /// Source position.
        pos: Pos,
    },
    /// `while (cond) { .. }`
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Vec<AStmt>,
        /// Source position.
        pos: Pos,
    },
    /// `return;` or `return e;`
    Return {
        /// Returned expression, if any.
        value: Option<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// `super(args);` — superclass constructor invocation.
    SuperCall {
        /// Arguments.
        args: Vec<Expr>,
        /// Source position.
        pos: Pos,
    },
}

/// An assignment target.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Target {
    /// A local variable.
    Var(String, Pos),
    /// A field of an arbitrary base expression (`base.name = ..`).
    Field {
        /// The base object expression.
        base: Expr,
        /// Field name.
        name: String,
        /// Source position.
        pos: Pos,
    },
}

/// Binary operators at the AST level.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ABinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `%`
    Rem,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

/// An expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// `this`
    This(Pos),
    /// A name (local variable, or a class name when used as a static-call
    /// receiver — disambiguated during lowering).
    Var(String, Pos),
    /// Integer literal.
    Int(i64, Pos),
    /// Boolean literal.
    Bool(bool, Pos),
    /// `null`
    Null(Pos),
    /// `new C(args)`
    New {
        /// Class name.
        class: String,
        /// Constructor arguments.
        args: Vec<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// `base.name` (field read).
    Field {
        /// Base expression.
        base: Box<Expr>,
        /// Field name.
        name: String,
        /// Source position.
        pos: Pos,
    },
    /// `base.name(args)`; a `None` base means an unqualified call (implicit
    /// `this` or a static method of the enclosing class).
    Call {
        /// Receiver expression (or `None` for unqualified calls).
        base: Option<Box<Expr>>,
        /// Method name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// `(T) e`
    Cast {
        /// Target class name.
        ty: String,
        /// Casted expression.
        expr: Box<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// `a <op> b` over primitives.
    Bin {
        /// Operator.
        op: ABinOp,
        /// Left operand.
        a: Box<Expr>,
        /// Right operand.
        b: Box<Expr>,
        /// Source position.
        pos: Pos,
    },
}

impl Expr {
    /// The source position of the expression.
    pub fn pos(&self) -> Pos {
        match self {
            Expr::This(p)
            | Expr::Var(_, p)
            | Expr::Int(_, p)
            | Expr::Bool(_, p)
            | Expr::Null(p) => *p,
            Expr::New { pos, .. }
            | Expr::Field { pos, .. }
            | Expr::Call { pos, .. }
            | Expr::Cast { pos, .. }
            | Expr::Bin { pos, .. } => *pos,
        }
    }
}
