//! Recursive-descent parser for MiniJava.

use crate::ast::{
    ABinOp, AStmt, ClassDecl, Expr, FieldDecl, MethodDecl, SourceProgram, Target, TypeName,
};
use crate::error::{FrontendError, Pos, Result};
use crate::lexer::{lex, Tok, Token};

/// Parses MiniJava source text into an AST.
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
pub fn parse(src: &str) -> Result<SourceProgram> {
    let toks = lex(src)?;
    Parser { toks, idx: 0 }.program()
}

struct Parser {
    toks: Vec<Token>,
    idx: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.idx].tok
    }

    fn peek_at(&self, n: usize) -> &Tok {
        let i = (self.idx + n).min(self.toks.len() - 1);
        &self.toks[i].tok
    }

    fn pos(&self) -> Pos {
        self.toks[self.idx].pos
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.idx].clone();
        if self.idx + 1 < self.toks.len() {
            self.idx += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<Token> {
        if self.peek() == &tok {
            Ok(self.bump())
        } else {
            Err(FrontendError::new(
                self.pos(),
                format!(
                    "expected {}, found {}",
                    tok.describe(),
                    self.peek().describe()
                ),
            ))
        }
    }

    fn ident(&mut self) -> Result<(String, Pos)> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok((s, pos))
            }
            other => Err(FrontendError::new(
                pos,
                format!("expected identifier, found {}", other.describe()),
            )),
        }
    }

    // ---- declarations ---------------------------------------------------

    fn program(&mut self) -> Result<SourceProgram> {
        let mut classes = Vec::new();
        while self.peek() != &Tok::Eof {
            classes.push(self.class_decl()?);
        }
        Ok(SourceProgram { classes })
    }

    fn class_decl(&mut self) -> Result<ClassDecl> {
        let pos = self.pos();
        let is_abstract = self.eat(&Tok::Abstract);
        self.expect(Tok::Class)?;
        let (name, _) = self.ident()?;
        let superclass = if self.eat(&Tok::Extends) {
            Some(self.ident()?.0)
        } else {
            None
        };
        self.expect(Tok::LBrace)?;
        let mut fields = Vec::new();
        let mut methods = Vec::new();
        while self.peek() != &Tok::RBrace {
            self.member(&name, &mut fields, &mut methods)?;
        }
        self.expect(Tok::RBrace)?;
        Ok(ClassDecl {
            name,
            superclass,
            is_abstract,
            fields,
            methods,
            pos,
        })
    }

    fn member(
        &mut self,
        class_name: &str,
        fields: &mut Vec<FieldDecl>,
        methods: &mut Vec<MethodDecl>,
    ) -> Result<()> {
        let pos = self.pos();

        // Constructor: `ClassName ( ... ) { ... }`
        if let Tok::Ident(n) = self.peek() {
            if n == class_name && self.peek_at(1) == &Tok::LParen {
                self.bump();
                let params = self.params()?;
                let body = self.block()?;
                methods.push(MethodDecl {
                    is_static: false,
                    is_abstract: false,
                    is_ctor: true,
                    ret: TypeName::Void,
                    name: "<init>".to_owned(),
                    params,
                    body: Some(body),
                    pos,
                });
                return Ok(());
            }
        }

        let is_abstract = self.eat(&Tok::Abstract);
        let is_static = self.eat(&Tok::Static);
        if is_abstract && is_static {
            return Err(FrontendError::new(
                pos,
                "a method cannot be abstract and static",
            ));
        }
        let ty = self.type_name()?;
        let (name, _) = self.ident()?;
        if self.peek() == &Tok::LParen {
            let params = self.params()?;
            let body = if is_abstract {
                self.expect(Tok::Semi)?;
                None
            } else {
                Some(self.block()?)
            };
            methods.push(MethodDecl {
                is_static,
                is_abstract,
                is_ctor: false,
                ret: ty,
                name,
                params,
                body,
                pos,
            });
        } else {
            if is_static || is_abstract {
                return Err(FrontendError::new(pos, "fields cannot have modifiers"));
            }
            self.expect(Tok::Semi)?;
            fields.push(FieldDecl { ty, name, pos });
        }
        Ok(())
    }

    fn params(&mut self) -> Result<Vec<(TypeName, String)>> {
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                let ty = self.type_name()?;
                let (name, _) = self.ident()?;
                params.push((ty, name));
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        Ok(params)
    }

    fn type_name(&mut self) -> Result<TypeName> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::IntKw => {
                self.bump();
                Ok(TypeName::Int)
            }
            Tok::BooleanKw => {
                self.bump();
                Ok(TypeName::Boolean)
            }
            Tok::Void => {
                self.bump();
                Ok(TypeName::Void)
            }
            Tok::Ident(s) => {
                self.bump();
                Ok(TypeName::Named(s))
            }
            other => Err(FrontendError::new(
                pos,
                format!("expected a type, found {}", other.describe()),
            )),
        }
    }

    // ---- statements -----------------------------------------------------

    fn block(&mut self) -> Result<Vec<AStmt>> {
        self.expect(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != &Tok::RBrace {
            stmts.push(self.stmt()?);
        }
        self.expect(Tok::RBrace)?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<AStmt> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::If => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let then_branch = self.block()?;
                let else_branch = if self.eat(&Tok::Else) {
                    self.block()?
                } else {
                    Vec::new()
                };
                Ok(AStmt::If {
                    cond,
                    then_branch,
                    else_branch,
                    pos,
                })
            }
            Tok::While => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let body = self.block()?;
                Ok(AStmt::While { cond, body, pos })
            }
            Tok::Return => {
                self.bump();
                let value = if self.peek() == &Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Tok::Semi)?;
                Ok(AStmt::Return { value, pos })
            }
            Tok::Super if self.peek_at(1) == &Tok::LParen => {
                self.bump();
                let args = self.args()?;
                self.expect(Tok::Semi)?;
                Ok(AStmt::SuperCall { args, pos })
            }
            Tok::IntKw | Tok::BooleanKw => self.decl_stmt(),
            Tok::Ident(_) if matches!(self.peek_at(1), Tok::Ident(_)) => self.decl_stmt(),
            _ => {
                let e = self.expr()?;
                if self.eat(&Tok::Assign) {
                    let target = match e {
                        Expr::Var(n, p) => Target::Var(n, p),
                        Expr::Field { base, name, pos } => Target::Field {
                            base: *base,
                            name,
                            pos,
                        },
                        other => {
                            return Err(FrontendError::new(
                                other.pos(),
                                "invalid assignment target",
                            ));
                        }
                    };
                    let value = self.expr()?;
                    self.expect(Tok::Semi)?;
                    Ok(AStmt::Assign { target, value, pos })
                } else {
                    self.expect(Tok::Semi)?;
                    match &e {
                        Expr::Call { .. } | Expr::New { .. } => Ok(AStmt::ExprStmt(e)),
                        other => Err(FrontendError::new(
                            other.pos(),
                            "only calls and allocations may be used as statements",
                        )),
                    }
                }
            }
        }
    }

    fn decl_stmt(&mut self) -> Result<AStmt> {
        let pos = self.pos();
        let ty = self.type_name()?;
        let (name, _) = self.ident()?;
        let init = if self.eat(&Tok::Assign) {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect(Tok::Semi)?;
        Ok(AStmt::Decl {
            ty,
            name,
            init,
            pos,
        })
    }

    // ---- expressions ----------------------------------------------------

    fn args(&mut self) -> Result<Vec<Expr>> {
        self.expect(Tok::LParen)?;
        let mut args = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                args.push(self.expr()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        Ok(args)
    }

    fn expr(&mut self) -> Result<Expr> {
        let a = self.add_expr()?;
        let op = match self.peek() {
            Tok::EqEq => Some(ABinOp::Eq),
            Tok::NotEq => Some(ABinOp::Ne),
            Tok::Lt => Some(ABinOp::Lt),
            Tok::Le => Some(ABinOp::Le),
            _ => None,
        };
        if let Some(op) = op {
            let pos = self.pos();
            self.bump();
            let b = self.add_expr()?;
            Ok(Expr::Bin {
                op,
                a: Box::new(a),
                b: Box::new(b),
                pos,
            })
        } else {
            Ok(a)
        }
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut a = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => ABinOp::Add,
                Tok::Minus => ABinOp::Sub,
                _ => break,
            };
            let pos = self.pos();
            self.bump();
            let b = self.mul_expr()?;
            a = Expr::Bin {
                op,
                a: Box::new(a),
                b: Box::new(b),
                pos,
            };
        }
        Ok(a)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut a = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => ABinOp::Mul,
                Tok::Percent => ABinOp::Rem,
                _ => break,
            };
            let pos = self.pos();
            self.bump();
            let b = self.unary_expr()?;
            a = Expr::Bin {
                op,
                a: Box::new(a),
                b: Box::new(b),
                pos,
            };
        }
        Ok(a)
    }

    fn starts_expr(t: &Tok) -> bool {
        matches!(
            t,
            Tok::Ident(_)
                | Tok::This
                | Tok::New
                | Tok::Int(_)
                | Tok::True
                | Tok::False
                | Tok::Null
                | Tok::LParen
        )
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        // Cast: `( Ident ) <expr-start>` — binds to a whole unary expression,
        // as in Java: `(T) x.f()` casts the call result.
        if self.peek() == &Tok::LParen {
            if let Tok::Ident(ty) = self.peek_at(1).clone() {
                if self.peek_at(2) == &Tok::RParen && Self::starts_expr(self.peek_at(3)) {
                    let pos = self.pos();
                    self.bump(); // (
                    self.bump(); // Ident
                    self.bump(); // )
                    let expr = self.unary_expr()?;
                    return Ok(Expr::Cast {
                        ty,
                        expr: Box::new(expr),
                        pos,
                    });
                }
            }
        }
        let mut e = self.primary()?;
        loop {
            if self.peek() == &Tok::Dot {
                self.bump();
                let (name, pos) = self.ident()?;
                if self.peek() == &Tok::LParen {
                    let args = self.args()?;
                    e = Expr::Call {
                        base: Some(Box::new(e)),
                        name,
                        args,
                        pos,
                    };
                } else {
                    e = Expr::Field {
                        base: Box::new(e),
                        name,
                        pos,
                    };
                }
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::This => {
                self.bump();
                Ok(Expr::This(pos))
            }
            Tok::Null => {
                self.bump();
                Ok(Expr::Null(pos))
            }
            Tok::True => {
                self.bump();
                Ok(Expr::Bool(true, pos))
            }
            Tok::False => {
                self.bump();
                Ok(Expr::Bool(false, pos))
            }
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Int(v, pos))
            }
            Tok::New => {
                self.bump();
                let (class, _) = self.ident()?;
                let args = self.args()?;
                Ok(Expr::New { class, args, pos })
            }
            Tok::Ident(n) => {
                self.bump();
                if self.peek() == &Tok::LParen {
                    let args = self.args()?;
                    Ok(Expr::Call {
                        base: None,
                        name: n,
                        args,
                        pos,
                    })
                } else {
                    Ok(Expr::Var(n, pos))
                }
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            other => Err(FrontendError::new(
                pos,
                format!("expected an expression, found {}", other.describe()),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_class_with_field_and_methods() {
        let src = r#"
            class Carton {
                Item item;
                void setItem(Item item) { this.item = item; }
                Item getItem() { Item r; r = this.item; return r; }
            }
            class Item { }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.classes.len(), 2);
        let carton = &p.classes[0];
        assert_eq!(carton.name, "Carton");
        assert_eq!(carton.fields.len(), 1);
        assert_eq!(carton.methods.len(), 2);
        assert_eq!(carton.methods[0].params.len(), 1);
    }

    #[test]
    fn parse_constructor() {
        let src = "class A { T f; A(T t) { this.f = t; } }";
        let p = parse(src).unwrap();
        let ctor = &p.classes[0].methods[0];
        assert!(ctor.is_ctor);
        assert_eq!(ctor.name, "<init>");
    }

    #[test]
    fn parse_abstract() {
        let src = "abstract class A { abstract void m(); } class B extends A { void m() { } }";
        let p = parse(src).unwrap();
        assert!(p.classes[0].is_abstract);
        assert!(p.classes[0].methods[0].is_abstract);
        assert!(p.classes[0].methods[0].body.is_none());
        assert_eq!(p.classes[1].superclass.as_deref(), Some("A"));
    }

    #[test]
    fn parse_cast_vs_paren() {
        let src = "class C { Object m(Object o) { Object x = (C) o; Object y = (x); return y; } }";
        let p = parse(src).unwrap();
        let body = p.classes[0].methods[0].body.as_ref().unwrap();
        match &body[0] {
            AStmt::Decl {
                init: Some(Expr::Cast { ty, .. }),
                ..
            } => assert_eq!(ty, "C"),
            other => panic!("expected cast decl, got {other:?}"),
        }
        match &body[1] {
            AStmt::Decl {
                init: Some(Expr::Var(n, _)),
                ..
            } => assert_eq!(n, "x"),
            other => panic!("expected paren var decl, got {other:?}"),
        }
    }

    #[test]
    fn parse_control_flow_and_arith() {
        let src = r#"
            class Main {
                static void main() {
                    int i = 0;
                    while (i < 10) {
                        if (i % 2 == 0) { i = i + 1; } else { i = i + 2; }
                    }
                }
            }
        "#;
        let p = parse(src).unwrap();
        let body = p.classes[0].methods[0].body.as_ref().unwrap();
        assert_eq!(body.len(), 2);
        assert!(matches!(&body[1], AStmt::While { .. }));
    }

    #[test]
    fn parse_calls_and_chains() {
        let src = "class C { void m(C c) { c.m(this); m(c); A.stat(c); Object x = c.f.g; } }";
        let p = parse(src).unwrap();
        let body = p.classes[0].methods[0].body.as_ref().unwrap();
        assert!(matches!(
            &body[0],
            AStmt::ExprStmt(Expr::Call { base: Some(_), .. })
        ));
        assert!(matches!(
            &body[1],
            AStmt::ExprStmt(Expr::Call { base: None, .. })
        ));
        // `A.stat(c)` parses as a call with base Var("A"); lowering decides
        // whether `A` is a variable or a class.
        match &body[2] {
            AStmt::ExprStmt(Expr::Call { base: Some(b), .. }) => {
                assert!(matches!(&**b, Expr::Var(n, _) if n == "A"));
            }
            other => panic!("unexpected {other:?}"),
        }
        match &body[3] {
            AStmt::Decl {
                init: Some(Expr::Field { base, .. }),
                ..
            } => {
                assert!(matches!(&**base, Expr::Field { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_super_call() {
        let src = "class B extends A { B(T t) { super(t); } }";
        let p = parse(src).unwrap();
        let body = p.classes[0].methods[0].body.as_ref().unwrap();
        assert!(matches!(&body[0], AStmt::SuperCall { args, .. } if args.len() == 1));
    }

    #[test]
    fn error_reports_position() {
        let err = parse("class { }").unwrap_err();
        assert_eq!(err.pos.line, 1);
        assert!(err.message.contains("identifier"));
    }

    #[test]
    fn assignment_target_validation() {
        assert!(parse("class C { void m() { 1 = 2; } }").is_err());
        assert!(parse("class C { void m() { x + y; } }").is_err());
    }
}
