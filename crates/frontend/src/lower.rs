//! Name resolution, type checking, and lowering from the MiniJava AST to the
//! `csc-ir` program representation.
//!
//! Lowering proceeds in four passes so that classes, fields, and methods may
//! reference each other freely regardless of declaration order:
//!
//! 1. declare all classes;
//! 2. resolve superclasses (with cycle detection);
//! 3. declare fields and method signatures;
//! 4. lower method bodies to three-address IR statements.

use std::collections::HashMap;

use csc_ir::{
    BinOp, CallKind, ClassId, FieldId, MethodBuilder, MethodId, MethodKind, Program,
    ProgramBuilder, Type, VarId,
};

use crate::ast::{ABinOp, AStmt, Expr, SourceProgram, Target, TypeName};
use crate::error::{FrontendError, Pos, Result};

/// Per-class symbol information.
struct ClassSym {
    id: ClassId,
    name: String,
    superclass: Option<usize>,
    is_abstract: bool,
    fields: HashMap<String, (FieldId, Type)>,
    methods: HashMap<String, MethodSym>,
}

/// Per-method symbol information.
#[derive(Clone)]
struct MethodSym {
    id: MethodId,
    is_static: bool,
    params: Vec<Type>,
    ret: Type,
}

struct SymTab {
    classes: Vec<ClassSym>,
    by_name: HashMap<String, usize>,
}

impl SymTab {
    fn class(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// Inclusive ancestor chain indices, self first.
    fn ancestors(&self, mut c: usize) -> Vec<usize> {
        let mut chain = vec![c];
        while let Some(sup) = self.classes[c].superclass {
            chain.push(sup);
            c = sup;
        }
        chain
    }

    fn resolve_field(&self, class: usize, name: &str) -> Option<(FieldId, Type)> {
        self.ancestors(class)
            .into_iter()
            .find_map(|c| self.classes[c].fields.get(name).copied())
    }

    fn resolve_method(&self, class: usize, name: &str) -> Option<&MethodSym> {
        self.ancestors(class)
            .into_iter()
            .find_map(|c| self.classes[c].methods.get(name))
    }

    fn is_subclass(&self, sub: usize, sup: usize) -> bool {
        self.ancestors(sub).contains(&sup)
    }

    fn is_subtype(&self, sub: Type, sup: Type) -> bool {
        match (sub, sup) {
            (Type::Null, t) => t.is_reference(),
            (Type::Class(a), Type::Class(b)) => {
                let (Some(ai), Some(bi)) = (self.idx_of(a), self.idx_of(b)) else {
                    return a == b;
                };
                self.is_subclass(ai, bi)
            }
            (a, b) => a == b,
        }
    }

    fn idx_of(&self, id: ClassId) -> Option<usize> {
        self.classes.iter().position(|c| c.id == id)
    }

    fn type_name_of(&self, ty: Type) -> String {
        match ty {
            Type::Int => "int".into(),
            Type::Boolean => "boolean".into(),
            Type::Void => "void".into(),
            Type::Null => "null".into(),
            Type::Class(id) => self
                .classes
                .iter()
                .find(|c| c.id == id)
                .map(|c| c.name.clone())
                .unwrap_or_else(|| format!("{id}")),
        }
    }
}

/// Compiles MiniJava source text all the way to an IR [`Program`].
///
/// # Errors
///
/// Returns the first lexical, syntactic, or semantic error.
///
/// # Examples
///
/// ```
/// let program = csc_frontend::compile(r#"
///     class Main {
///         static void main() {
///             Object o = new Object();
///         }
///     }
/// "#)?;
/// assert_eq!(program.objs().len(), 1);
/// # Ok::<(), csc_frontend::FrontendError>(())
/// ```
pub fn compile(src: &str) -> Result<Program> {
    let ast = crate::parser::parse(src)?;
    lower(&ast)
}

/// Lowers a parsed AST to an IR [`Program`].
///
/// # Errors
///
/// Returns the first semantic error (unknown names, type mismatches, missing
/// or ambiguous `main`, hierarchy cycles, …).
pub fn lower(ast: &SourceProgram) -> Result<Program> {
    let mut pb = ProgramBuilder::new();
    let object = pb.object_class();

    // Pass 1: declare classes.
    let mut symtab = SymTab {
        classes: vec![ClassSym {
            id: object,
            name: "Object".to_owned(),
            superclass: None,
            is_abstract: false,
            fields: HashMap::new(),
            methods: HashMap::new(),
        }],
        by_name: HashMap::from([("Object".to_owned(), 0usize)]),
    };
    for decl in &ast.classes {
        if symtab.by_name.contains_key(&decl.name) {
            return Err(FrontendError::new(
                decl.pos,
                format!("duplicate class `{}`", decl.name),
            ));
        }
        let id = if decl.is_abstract {
            pb.add_abstract_class(&decl.name, None)
        } else {
            pb.add_class(&decl.name, None)
        };
        symtab
            .by_name
            .insert(decl.name.clone(), symtab.classes.len());
        symtab.classes.push(ClassSym {
            id,
            name: decl.name.clone(),
            superclass: Some(0),
            is_abstract: decl.is_abstract,
            fields: HashMap::new(),
            methods: HashMap::new(),
        });
    }

    // Pass 2: superclasses + cycle detection.
    for decl in &ast.classes {
        let idx = symtab.class(&decl.name).expect("declared in pass 1");
        if let Some(sup_name) = &decl.superclass {
            let sup = symtab.class(sup_name).ok_or_else(|| {
                FrontendError::new(decl.pos, format!("unknown superclass `{sup_name}`"))
            })?;
            symtab.classes[idx].superclass = Some(sup);
            pb.set_superclass(symtab.classes[idx].id, symtab.classes[sup].id);
        }
    }
    for i in 0..symtab.classes.len() {
        let mut cur = i;
        let mut steps = 0;
        while let Some(sup) = symtab.classes[cur].superclass {
            cur = sup;
            steps += 1;
            if steps > symtab.classes.len() {
                return Err(FrontendError::new(
                    Pos::default(),
                    format!(
                        "class hierarchy cycle involving `{}`",
                        symtab.classes[i].name
                    ),
                ));
            }
        }
    }

    let resolve_ty = |symtab: &SymTab, ty: &TypeName, pos: Pos| -> Result<Type> {
        match ty {
            TypeName::Int => Ok(Type::Int),
            TypeName::Boolean => Ok(Type::Boolean),
            TypeName::Void => Ok(Type::Void),
            TypeName::Named(n) => symtab
                .class(n)
                .map(|i| Type::Class(symtab.classes[i].id))
                .ok_or_else(|| FrontendError::new(pos, format!("unknown type `{n}`"))),
        }
    };

    // Pass 3: fields and method signatures.
    let mut bodies: Vec<(usize, MethodId, &crate::ast::MethodDecl)> = Vec::new();
    for decl in &ast.classes {
        let idx = symtab.class(&decl.name).expect("declared");
        let class_id = symtab.classes[idx].id;
        for field in &decl.fields {
            let ty = resolve_ty(&symtab, &field.ty, field.pos)?;
            if ty == Type::Void {
                return Err(FrontendError::new(
                    field.pos,
                    "fields cannot have type void",
                ));
            }
            if symtab.classes[idx].fields.contains_key(&field.name) {
                return Err(FrontendError::new(
                    field.pos,
                    format!("duplicate field `{}`", field.name),
                ));
            }
            let fid = pb.add_field(class_id, &field.name, ty);
            symtab.classes[idx]
                .fields
                .insert(field.name.clone(), (fid, ty));
        }
        for method in &decl.methods {
            let ret = resolve_ty(&symtab, &method.ret, method.pos)?;
            let mut param_tys = Vec::new();
            let mut params: Vec<(&str, Type)> = Vec::new();
            for (ty, name) in &method.params {
                let t = resolve_ty(&symtab, ty, method.pos)?;
                if t == Type::Void {
                    return Err(FrontendError::new(method.pos, "parameters cannot be void"));
                }
                param_tys.push(t);
                params.push((name.as_str(), t));
            }
            if symtab.classes[idx].methods.contains_key(&method.name) {
                return Err(FrontendError::new(
                    method.pos,
                    format!(
                        "duplicate method `{}` (overloading is not supported)",
                        method.name
                    ),
                ));
            }
            let kind = if method.is_ctor {
                MethodKind::Constructor
            } else if method.is_static {
                MethodKind::Static
            } else {
                MethodKind::Instance
            };
            let mid = if method.is_abstract {
                pb.add_abstract_method(class_id, &method.name, &params, ret)
            } else {
                let mb = pb.begin_method(class_id, &method.name, kind, &params, ret);
                mb.finish()
            };
            symtab.classes[idx].methods.insert(
                method.name.clone(),
                MethodSym {
                    id: mid,
                    is_static: method.is_static,
                    params: param_tys,
                    ret,
                },
            );
            if method.body.is_some() {
                bodies.push((idx, mid, method));
            }
        }
    }

    // Pass 4: bodies.
    for (class_idx, mid, method) in bodies {
        let mb = pb.resume_method(mid);
        let mut ctx = BodyCtx {
            symtab: &symtab,
            class_idx,
            ret: resolve_ty(&symtab, &method.ret, method.pos)?,
            is_ctor: method.is_ctor,
            mb,
            scopes: vec![HashMap::new()],
            tmp_count: 0,
        };
        for (i, (_, name)) in method.params.iter().enumerate() {
            let v = ctx.mb.param(i);
            ctx.scopes[0].insert(name.clone(), v);
        }
        let body = method.body.as_ref().expect("collected only with body");
        for stmt in body {
            ctx.stmt(stmt)?;
        }
        ctx.mb.finish();
    }

    // Entry point: prefer `Main.main`, else a unique `static void main()`.
    let mut mains: Vec<(usize, MethodId)> = Vec::new();
    for (i, class) in symtab.classes.iter().enumerate() {
        if let Some(m) = class.methods.get("main") {
            if m.is_static && m.params.is_empty() && m.ret == Type::Void {
                mains.push((i, m.id));
            }
        }
    }
    let entry = match mains.len() {
        0 => {
            return Err(FrontendError::new(
                Pos::default(),
                "no `static void main()` entry point found",
            ))
        }
        1 => mains[0].1,
        _ => mains
            .iter()
            .find(|&&(i, _)| symtab.classes[i].name == "Main")
            .map(|&(_, m)| m)
            .ok_or_else(|| {
                FrontendError::new(Pos::default(), "multiple `main` methods and none in `Main`")
            })?,
    };
    pb.set_entry(entry);

    pb.finish()
        .map_err(|e| FrontendError::new(Pos::default(), e.to_string()))
}

struct BodyCtx<'a, 'p> {
    symtab: &'a SymTab,
    class_idx: usize,
    ret: Type,
    is_ctor: bool,
    mb: MethodBuilder<'p>,
    scopes: Vec<HashMap<String, VarId>>,
    tmp_count: u32,
}

impl BodyCtx<'_, '_> {
    fn lookup(&self, name: &str) -> Option<VarId> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn fresh(&mut self, ty: Type) -> VarId {
        self.tmp_count += 1;
        self.mb.local(&format!("$t{}", self.tmp_count), ty)
    }

    fn this_var(&self, pos: Pos) -> Result<VarId> {
        self.mb
            .this()
            .ok_or_else(|| FrontendError::new(pos, "`this` used in a static method"))
    }

    fn check_assign(&self, dst: Type, src: Type, pos: Pos) -> Result<()> {
        if self.symtab.is_subtype(src, dst) {
            Ok(())
        } else {
            Err(FrontendError::new(
                pos,
                format!(
                    "type mismatch: cannot assign `{}` to `{}`",
                    self.symtab.type_name_of(src),
                    self.symtab.type_name_of(dst)
                ),
            ))
        }
    }

    fn class_of(&self, ty: Type, pos: Pos) -> Result<usize> {
        match ty {
            Type::Class(id) => self
                .symtab
                .idx_of(id)
                .ok_or_else(|| FrontendError::new(pos, "internal: unresolved class")),
            other => Err(FrontendError::new(
                pos,
                format!(
                    "expected an object, found `{}`",
                    self.symtab.type_name_of(other)
                ),
            )),
        }
    }

    // ---- statements -----------------------------------------------------

    fn stmt(&mut self, s: &AStmt) -> Result<()> {
        match s {
            AStmt::Decl {
                ty,
                name,
                init,
                pos,
            } => {
                let ty = self.resolve_ty(ty, *pos)?;
                if self
                    .scopes
                    .last()
                    .expect("scope stack non-empty")
                    .contains_key(name)
                {
                    return Err(FrontendError::new(
                        *pos,
                        format!("duplicate variable `{name}`"),
                    ));
                }
                let v = self.mb.local(name, ty);
                self.scopes
                    .last_mut()
                    .expect("scope stack non-empty")
                    .insert(name.clone(), v);
                if let Some(init) = init {
                    self.expr_into(v, ty, init)?;
                }
                Ok(())
            }
            AStmt::Assign { target, value, pos } => match target {
                Target::Var(name, vpos) => {
                    if let Some(v) = self.lookup(name) {
                        self.expr_into(v, self.mb.var_ty(v), value)?;
                        Ok(())
                    } else if let Some((fid, fty)) = self.symtab.resolve_field(self.class_idx, name)
                    {
                        // Implicit `this.name = value`.
                        let this = self.this_var(*vpos)?;
                        let (rv, rt) = self.expr(value)?;
                        self.check_assign(fty, rt, *pos)?;
                        self.mb.store(this, fid, rv);
                        Ok(())
                    } else {
                        Err(FrontendError::new(
                            *vpos,
                            format!("unknown variable `{name}`"),
                        ))
                    }
                }
                Target::Field { base, name, pos } => {
                    let (bv, bt) = self.expr(base)?;
                    let bclass = self.class_of(bt, *pos)?;
                    let (fid, fty) = self.symtab.resolve_field(bclass, name).ok_or_else(|| {
                        FrontendError::new(
                            *pos,
                            format!(
                                "class `{}` has no field `{name}`",
                                self.symtab.classes[bclass].name
                            ),
                        )
                    })?;
                    let (rv, rt) = self.expr(value)?;
                    self.check_assign(fty, rt, *pos)?;
                    self.mb.store(bv, fid, rv);
                    Ok(())
                }
            },
            AStmt::ExprStmt(e) => {
                match e {
                    Expr::Call { .. } => {
                        self.call_expr(e, CallDst::Discard)?;
                    }
                    Expr::New { .. } => {
                        self.expr(e)?;
                    }
                    other => {
                        return Err(FrontendError::new(
                            other.pos(),
                            "only calls and allocations may be used as statements",
                        ))
                    }
                }
                Ok(())
            }
            AStmt::If {
                cond,
                then_branch,
                else_branch,
                pos,
            } => {
                let (cv, ct) = self.expr(cond)?;
                if ct != Type::Boolean {
                    return Err(FrontendError::new(*pos, "condition must be boolean"));
                }
                self.mb.push_block();
                self.scopes.push(HashMap::new());
                for s in then_branch {
                    self.stmt(s)?;
                }
                self.scopes.pop();
                let then_stmts = self.mb.pop_block();
                self.mb.push_block();
                self.scopes.push(HashMap::new());
                for s in else_branch {
                    self.stmt(s)?;
                }
                self.scopes.pop();
                let else_stmts = self.mb.pop_block();
                self.mb.emit_if(cv, then_stmts, else_stmts);
                Ok(())
            }
            AStmt::While { cond, body, pos } => {
                self.mb.push_block();
                let (cv, ct) = self.expr(cond)?;
                let cond_stmts = self.mb.pop_block();
                if ct != Type::Boolean {
                    return Err(FrontendError::new(*pos, "condition must be boolean"));
                }
                self.mb.push_block();
                self.scopes.push(HashMap::new());
                for s in body {
                    self.stmt(s)?;
                }
                self.scopes.pop();
                let body_stmts = self.mb.pop_block();
                self.mb.emit_while(cond_stmts, cv, body_stmts);
                Ok(())
            }
            AStmt::Return { value, pos } => {
                match (value, self.ret) {
                    (None, Type::Void) => self.mb.ret(None),
                    (None, _) => {
                        return Err(FrontendError::new(*pos, "missing return value"));
                    }
                    (Some(_), Type::Void) => {
                        return Err(FrontendError::new(
                            *pos,
                            "void method cannot return a value",
                        ));
                    }
                    (Some(e), ret) => {
                        let (v, t) = self.expr(e)?;
                        self.check_assign(ret, t, *pos)?;
                        self.mb.ret(Some(v));
                    }
                }
                Ok(())
            }
            AStmt::SuperCall { args, pos } => {
                if !self.is_ctor {
                    return Err(FrontendError::new(
                        *pos,
                        "`super(..)` is only allowed in constructors",
                    ));
                }
                let sup = self.symtab.classes[self.class_idx]
                    .superclass
                    .ok_or_else(|| FrontendError::new(*pos, "`Object` has no superclass"))?;
                let ctor = self.symtab.classes[sup]
                    .methods
                    .get("<init>")
                    .cloned()
                    .ok_or_else(|| {
                        FrontendError::new(
                            *pos,
                            format!(
                                "superclass `{}` has no constructor",
                                self.symtab.classes[sup].name
                            ),
                        )
                    })?;
                let this = self.this_var(*pos)?;
                let arg_vars = self.lower_args(&ctor.params, args, *pos)?;
                self.mb
                    .call(CallKind::Special, None, Some(this), ctor.id, &arg_vars);
                Ok(())
            }
        }
    }

    fn resolve_ty(&self, ty: &TypeName, pos: Pos) -> Result<Type> {
        match ty {
            TypeName::Int => Ok(Type::Int),
            TypeName::Boolean => Ok(Type::Boolean),
            TypeName::Void => Ok(Type::Void),
            TypeName::Named(n) => self
                .symtab
                .class(n)
                .map(|i| Type::Class(self.symtab.classes[i].id))
                .ok_or_else(|| FrontendError::new(pos, format!("unknown type `{n}`"))),
        }
    }

    fn lower_args(&mut self, param_tys: &[Type], args: &[Expr], pos: Pos) -> Result<Vec<VarId>> {
        if param_tys.len() != args.len() {
            return Err(FrontendError::new(
                pos,
                format!(
                    "expected {} argument(s), found {}",
                    param_tys.len(),
                    args.len()
                ),
            ));
        }
        let mut vars = Vec::with_capacity(args.len());
        for (arg, &pt) in args.iter().zip(param_tys) {
            let (v, t) = self.expr(arg)?;
            self.check_assign(pt, t, arg.pos())?;
            vars.push(v);
        }
        Ok(vars)
    }

    // ---- expressions ----------------------------------------------------

    /// Lowers `e` directly *into* an existing destination variable, without
    /// a temporary, whenever the expression form allows it (field loads,
    /// calls, casts, literals, arithmetic). This mirrors Tai-e's IR — e.g.
    /// `r = this.f;` is a single load statement with `r` as its target —
    /// which is what the Cut-Shortcut pattern rules match on.
    fn expr_into(&mut self, dst: VarId, dst_ty: Type, e: &Expr) -> Result<()> {
        match e {
            Expr::Field { base, name, pos } => {
                let (bv, bt) = self.expr(base)?;
                let bclass = self.class_of(bt, *pos)?;
                let (fid, fty) = self.symtab.resolve_field(bclass, name).ok_or_else(|| {
                    FrontendError::new(
                        *pos,
                        format!(
                            "class `{}` has no field `{name}`",
                            self.symtab.classes[bclass].name
                        ),
                    )
                })?;
                self.check_assign(dst_ty, fty, *pos)?;
                self.mb.load(dst, bv, fid);
                Ok(())
            }
            Expr::Call { pos, .. } => {
                let (_, rt) = self.call_expr(e, CallDst::Into(dst))?;
                self.check_assign(dst_ty, rt, *pos)?;
                Ok(())
            }
            Expr::Cast { ty, expr, pos } => {
                let target = self
                    .symtab
                    .class(ty)
                    .map(|i| Type::Class(self.symtab.classes[i].id))
                    .ok_or_else(|| FrontendError::new(*pos, format!("unknown type `{ty}`")))?;
                let (v, t) = self.expr(expr)?;
                if !t.is_reference() {
                    return Err(FrontendError::new(*pos, "only object casts are supported"));
                }
                self.check_assign(dst_ty, target, *pos)?;
                self.mb.cast(dst, target, v);
                Ok(())
            }
            Expr::Int(v, pos) => {
                self.check_assign(dst_ty, Type::Int, *pos)?;
                self.mb.const_int(dst, *v);
                Ok(())
            }
            Expr::Bool(v, pos) => {
                self.check_assign(dst_ty, Type::Boolean, *pos)?;
                self.mb.const_bool(dst, *v);
                Ok(())
            }
            Expr::Null(pos) => {
                self.check_assign(dst_ty, Type::Null, *pos)?;
                self.mb.const_null(dst);
                Ok(())
            }
            Expr::Bin { .. } => {
                let (v, t) = self.expr(e)?;
                // Arithmetic produces a fresh temp anyway; fold the copy.
                self.check_assign(dst_ty, t, e.pos())?;
                self.mb.assign(dst, v);
                Ok(())
            }
            // `this`, variables, and `new` (whose constructor arguments may
            // mention the destination) go through a plain copy.
            _ => {
                let (v, t) = self.expr(e)?;
                self.check_assign(dst_ty, t, e.pos())?;
                self.mb.assign(dst, v);
                Ok(())
            }
        }
    }

    fn expr(&mut self, e: &Expr) -> Result<(VarId, Type)> {
        match e {
            Expr::This(pos) => {
                let v = self.this_var(*pos)?;
                Ok((v, self.mb.var_ty(v)))
            }
            Expr::Var(name, pos) => {
                if let Some(v) = self.lookup(name) {
                    Ok((v, self.mb.var_ty(v)))
                } else if let Some((fid, fty)) = self.symtab.resolve_field(self.class_idx, name) {
                    // Implicit `this.name`.
                    let this = self.this_var(*pos)?;
                    let t = self.fresh(fty);
                    self.mb.load(t, this, fid);
                    Ok((t, fty))
                } else {
                    Err(FrontendError::new(
                        *pos,
                        format!("unknown variable `{name}`"),
                    ))
                }
            }
            Expr::Int(v, _) => {
                let t = self.fresh(Type::Int);
                self.mb.const_int(t, *v);
                Ok((t, Type::Int))
            }
            Expr::Bool(v, _) => {
                let t = self.fresh(Type::Boolean);
                self.mb.const_bool(t, *v);
                Ok((t, Type::Boolean))
            }
            Expr::Null(_) => {
                let t = self.fresh(Type::Null);
                self.mb.const_null(t);
                Ok((t, Type::Null))
            }
            Expr::New { class, args, pos } => {
                let idx = self
                    .symtab
                    .class(class)
                    .ok_or_else(|| FrontendError::new(*pos, format!("unknown class `{class}`")))?;
                let sym = &self.symtab.classes[idx];
                if sym.is_abstract {
                    return Err(FrontendError::new(
                        *pos,
                        format!("cannot instantiate abstract class `{class}`"),
                    ));
                }
                let class_id = sym.id;
                let ty = Type::Class(class_id);
                let v = self.fresh(ty);
                self.mb
                    .new_obj(v, class_id, &format!("{class}@{}", pos.line));
                // Constructors are not inherited: resolve in the exact class.
                match self.symtab.classes[idx].methods.get("<init>").cloned() {
                    Some(ctor) => {
                        let arg_vars = self.lower_args(&ctor.params, args, *pos)?;
                        self.mb
                            .call(CallKind::Special, None, Some(v), ctor.id, &arg_vars);
                    }
                    None if args.is_empty() => {}
                    None => {
                        return Err(FrontendError::new(
                            *pos,
                            format!("class `{class}` has no constructor"),
                        ));
                    }
                }
                Ok((v, ty))
            }
            Expr::Field { base, name, pos } => {
                let (bv, bt) = self.expr(base)?;
                let bclass = self.class_of(bt, *pos)?;
                let (fid, fty) = self.symtab.resolve_field(bclass, name).ok_or_else(|| {
                    FrontendError::new(
                        *pos,
                        format!(
                            "class `{}` has no field `{name}`",
                            self.symtab.classes[bclass].name
                        ),
                    )
                })?;
                let t = self.fresh(fty);
                self.mb.load(t, bv, fid);
                Ok((t, fty))
            }
            Expr::Call { .. } => {
                let (v, t) = self.call_expr(e, CallDst::Fresh)?;
                Ok((v.expect("value requested"), t))
            }
            Expr::Cast { ty, expr, pos } => {
                let target = self
                    .symtab
                    .class(ty)
                    .map(|i| Type::Class(self.symtab.classes[i].id))
                    .ok_or_else(|| FrontendError::new(*pos, format!("unknown type `{ty}`")))?;
                let (v, t) = self.expr(expr)?;
                if !t.is_reference() {
                    return Err(FrontendError::new(*pos, "only object casts are supported"));
                }
                let dst = self.fresh(target);
                self.mb.cast(dst, target, v);
                Ok((dst, target))
            }
            Expr::Bin { op, a, b, pos } => {
                let (av, at) = self.expr(a)?;
                let (bv, bt) = self.expr(b)?;
                let both_int = at == Type::Int && bt == Type::Int;
                let both_ref = at.is_reference() && bt.is_reference();
                let (irop, result) = match op {
                    ABinOp::Add => (BinOp::Add, Type::Int),
                    ABinOp::Sub => (BinOp::Sub, Type::Int),
                    ABinOp::Mul => (BinOp::Mul, Type::Int),
                    ABinOp::Rem => (BinOp::Rem, Type::Int),
                    ABinOp::Lt => (BinOp::Lt, Type::Boolean),
                    ABinOp::Le => (BinOp::Le, Type::Boolean),
                    ABinOp::Eq if both_ref => (BinOp::EqRef, Type::Boolean),
                    ABinOp::Ne if both_ref => (BinOp::NeRef, Type::Boolean),
                    ABinOp::Eq => (BinOp::EqInt, Type::Boolean),
                    ABinOp::Ne => (BinOp::NeInt, Type::Boolean),
                };
                let ref_ok = both_ref && matches!(irop, BinOp::EqRef | BinOp::NeRef);
                if !both_int && !ref_ok {
                    return Err(FrontendError::new(
                        *pos,
                        "arithmetic requires int operands; `==`/`!=` require two ints or two references",
                    ));
                }
                let t = self.fresh(result);
                self.mb.bin_op(t, irop, av, bv);
                Ok((t, result))
            }
        }
    }

    /// Lowers a call expression into the requested destination.
    fn call_expr(&mut self, e: &Expr, dst: CallDst) -> Result<(Option<VarId>, Type)> {
        let Expr::Call {
            base,
            name,
            args,
            pos,
        } = e
        else {
            unreachable!("call_expr invoked on non-call");
        };

        // Resolve the callee: static vs virtual, explicit vs implicit recv.
        let (kind, recv, target): (CallKind, Option<VarId>, MethodSym) = match base {
            Some(b) => {
                // `Name.m(..)` where `Name` is not a variable is a static call.
                if let Expr::Var(n, npos) = &**b {
                    if self.lookup(n).is_none()
                        && self.symtab.resolve_field(self.class_idx, n).is_none()
                    {
                        let cidx = self.symtab.class(n).ok_or_else(|| {
                            FrontendError::new(*npos, format!("unknown variable or class `{n}`"))
                        })?;
                        let m =
                            self.symtab
                                .resolve_method(cidx, name)
                                .cloned()
                                .ok_or_else(|| {
                                    FrontendError::new(
                                        *pos,
                                        format!("class `{n}` has no method `{name}`"),
                                    )
                                })?;
                        if !m.is_static {
                            return Err(FrontendError::new(
                                *pos,
                                format!("method `{n}.{name}` is not static"),
                            ));
                        }
                        (CallKind::Static, None, m)
                    } else {
                        let (bv, bt) = self.expr(b)?;
                        let bclass = self.class_of(bt, *pos)?;
                        let m = self
                            .symtab
                            .resolve_method(bclass, name)
                            .cloned()
                            .ok_or_else(|| {
                                FrontendError::new(
                                    *pos,
                                    format!(
                                        "class `{}` has no method `{name}`",
                                        self.symtab.classes[bclass].name
                                    ),
                                )
                            })?;
                        if m.is_static {
                            return Err(FrontendError::new(
                                *pos,
                                format!("static method `{name}` called on an instance"),
                            ));
                        }
                        (CallKind::Virtual, Some(bv), m)
                    }
                } else {
                    let (bv, bt) = self.expr(b)?;
                    let bclass = self.class_of(bt, *pos)?;
                    let m = self
                        .symtab
                        .resolve_method(bclass, name)
                        .cloned()
                        .ok_or_else(|| {
                            FrontendError::new(
                                *pos,
                                format!(
                                    "class `{}` has no method `{name}`",
                                    self.symtab.classes[bclass].name
                                ),
                            )
                        })?;
                    if m.is_static {
                        return Err(FrontendError::new(
                            *pos,
                            format!("static method `{name}` called on an instance"),
                        ));
                    }
                    (CallKind::Virtual, Some(bv), m)
                }
            }
            None => {
                let m = self
                    .symtab
                    .resolve_method(self.class_idx, name)
                    .cloned()
                    .ok_or_else(|| FrontendError::new(*pos, format!("unknown method `{name}`")))?;
                if m.is_static {
                    (CallKind::Static, None, m)
                } else {
                    let this = self.this_var(*pos)?;
                    (CallKind::Virtual, Some(this), m)
                }
            }
        };

        let arg_vars = self.lower_args(&target.params, args, *pos)?;
        let lhs = match dst {
            CallDst::Discard => None,
            CallDst::Fresh => {
                if target.ret == Type::Void {
                    return Err(FrontendError::new(
                        *pos,
                        format!("void method `{name}` used as a value"),
                    ));
                }
                Some(self.fresh(target.ret))
            }
            CallDst::Into(v) => {
                if target.ret == Type::Void {
                    return Err(FrontendError::new(
                        *pos,
                        format!("void method `{name}` used as a value"),
                    ));
                }
                Some(v)
            }
        };
        self.mb.call(kind, lhs, recv, target.id, &arg_vars);
        Ok((lhs, target.ret))
    }
}

/// Where a call's return value goes.
#[derive(Copy, Clone, Debug)]
enum CallDst {
    /// No destination (`foo();` as a statement).
    Discard,
    /// A fresh temporary (call in expression position).
    Fresh,
    /// An existing variable (`x = foo();`).
    Into(VarId),
}
