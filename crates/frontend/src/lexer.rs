//! Hand-written lexer for MiniJava.

use crate::error::{FrontendError, Pos, Result};

/// A lexical token kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier (class/method/field/variable name).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Keyword `class`.
    Class,
    /// Keyword `abstract`.
    Abstract,
    /// Keyword `extends`.
    Extends,
    /// Keyword `static`.
    Static,
    /// Keyword `void`.
    Void,
    /// Keyword `int`.
    IntKw,
    /// Keyword `boolean`.
    BooleanKw,
    /// Keyword `if`.
    If,
    /// Keyword `else`.
    Else,
    /// Keyword `while`.
    While,
    /// Keyword `return`.
    Return,
    /// Keyword `new`.
    New,
    /// Keyword `this`.
    This,
    /// Keyword `super`.
    Super,
    /// Keyword `null`.
    Null,
    /// Keyword `true`.
    True,
    /// Keyword `false`.
    False,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `%`
    Percent,
    /// End of input.
    Eof,
}

impl Tok {
    /// Short printable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier `{s}`"),
            Tok::Int(v) => format!("integer `{v}`"),
            Tok::Eof => "end of input".to_owned(),
            other => format!("`{}`", other.lexeme()),
        }
    }

    fn lexeme(&self) -> &'static str {
        match self {
            Tok::Class => "class",
            Tok::Abstract => "abstract",
            Tok::Extends => "extends",
            Tok::Static => "static",
            Tok::Void => "void",
            Tok::IntKw => "int",
            Tok::BooleanKw => "boolean",
            Tok::If => "if",
            Tok::Else => "else",
            Tok::While => "while",
            Tok::Return => "return",
            Tok::New => "new",
            Tok::This => "this",
            Tok::Super => "super",
            Tok::Null => "null",
            Tok::True => "true",
            Tok::False => "false",
            Tok::LBrace => "{",
            Tok::RBrace => "}",
            Tok::LParen => "(",
            Tok::RParen => ")",
            Tok::Semi => ";",
            Tok::Comma => ",",
            Tok::Dot => ".",
            Tok::Assign => "=",
            Tok::EqEq => "==",
            Tok::NotEq => "!=",
            Tok::Lt => "<",
            Tok::Le => "<=",
            Tok::Plus => "+",
            Tok::Minus => "-",
            Tok::Star => "*",
            Tok::Percent => "%",
            Tok::Ident(_) | Tok::Int(_) | Tok::Eof => unreachable!(),
        }
    }
}

/// A token with its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token kind.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

/// Tokenizes the entire source, ending with a [`Tok::Eof`] token.
///
/// # Errors
///
/// Returns an error on unknown characters, unterminated block comments, or
/// integer literals that overflow `i64`.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            if bytes[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        let pos = Pos { line, col };
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => bump!(),
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    bump!();
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                bump!();
                bump!();
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(FrontendError::new(pos, "unterminated block comment"));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        bump!();
                        bump!();
                        break;
                    }
                    bump!();
                }
            }
            b'{' => {
                toks.push(Token {
                    tok: Tok::LBrace,
                    pos,
                });
                bump!();
            }
            b'}' => {
                toks.push(Token {
                    tok: Tok::RBrace,
                    pos,
                });
                bump!();
            }
            b'(' => {
                toks.push(Token {
                    tok: Tok::LParen,
                    pos,
                });
                bump!();
            }
            b')' => {
                toks.push(Token {
                    tok: Tok::RParen,
                    pos,
                });
                bump!();
            }
            b';' => {
                toks.push(Token {
                    tok: Tok::Semi,
                    pos,
                });
                bump!();
            }
            b',' => {
                toks.push(Token {
                    tok: Tok::Comma,
                    pos,
                });
                bump!();
            }
            b'.' => {
                toks.push(Token { tok: Tok::Dot, pos });
                bump!();
            }
            b'+' => {
                toks.push(Token {
                    tok: Tok::Plus,
                    pos,
                });
                bump!();
            }
            b'-' => {
                toks.push(Token {
                    tok: Tok::Minus,
                    pos,
                });
                bump!();
            }
            b'*' => {
                toks.push(Token {
                    tok: Tok::Star,
                    pos,
                });
                bump!();
            }
            b'%' => {
                toks.push(Token {
                    tok: Tok::Percent,
                    pos,
                });
                bump!();
            }
            b'=' => {
                bump!();
                if i < bytes.len() && bytes[i] == b'=' {
                    bump!();
                    toks.push(Token {
                        tok: Tok::EqEq,
                        pos,
                    });
                } else {
                    toks.push(Token {
                        tok: Tok::Assign,
                        pos,
                    });
                }
            }
            b'!' => {
                bump!();
                if i < bytes.len() && bytes[i] == b'=' {
                    bump!();
                    toks.push(Token {
                        tok: Tok::NotEq,
                        pos,
                    });
                } else {
                    return Err(FrontendError::new(pos, "expected `!=`"));
                }
            }
            b'<' => {
                bump!();
                if i < bytes.len() && bytes[i] == b'=' {
                    bump!();
                    toks.push(Token { tok: Tok::Le, pos });
                } else {
                    toks.push(Token { tok: Tok::Lt, pos });
                }
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    bump!();
                }
                let text = &src[start..i];
                let value: i64 = text.parse().map_err(|_| {
                    FrontendError::new(pos, format!("integer literal `{text}` overflows i64"))
                })?;
                toks.push(Token {
                    tok: Tok::Int(value),
                    pos,
                });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    bump!();
                }
                let word = &src[start..i];
                let tok = match word {
                    "class" => Tok::Class,
                    "abstract" => Tok::Abstract,
                    "extends" => Tok::Extends,
                    "static" => Tok::Static,
                    "void" => Tok::Void,
                    "int" => Tok::IntKw,
                    "boolean" => Tok::BooleanKw,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "while" => Tok::While,
                    "return" => Tok::Return,
                    "new" => Tok::New,
                    "this" => Tok::This,
                    "super" => Tok::Super,
                    "null" => Tok::Null,
                    "true" => Tok::True,
                    "false" => Tok::False,
                    _ => Tok::Ident(word.to_owned()),
                };
                toks.push(Token { tok, pos });
            }
            other => {
                return Err(FrontendError::new(
                    pos,
                    format!("unexpected character `{}`", other as char),
                ));
            }
        }
    }
    toks.push(Token {
        tok: Tok::Eof,
        pos: Pos { line, col },
    });
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lex_keywords_and_idents() {
        assert_eq!(
            kinds("class Foo extends Bar"),
            vec![
                Tok::Class,
                Tok::Ident("Foo".into()),
                Tok::Extends,
                Tok::Ident("Bar".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lex_operators() {
        assert_eq!(
            kinds("= == != < <= + - * %"),
            vec![
                Tok::Assign,
                Tok::EqEq,
                Tok::NotEq,
                Tok::Lt,
                Tok::Le,
                Tok::Plus,
                Tok::Minus,
                Tok::Star,
                Tok::Percent,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lex_comments() {
        assert_eq!(
            kinds("a // line\n b /* block\n comment */ c"),
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn positions_track_lines() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn unterminated_comment_is_error() {
        assert!(lex("/* oops").is_err());
    }

    #[test]
    fn unknown_char_is_error() {
        let err = lex("a & b").unwrap_err();
        assert!(err.message.contains('&'));
    }

    #[test]
    fn int_literals() {
        assert_eq!(kinds("42"), vec![Tok::Int(42), Tok::Eof]);
        assert!(lex("99999999999999999999999").is_err());
    }
}
