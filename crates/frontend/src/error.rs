//! Frontend diagnostics.

use std::error::Error;
use std::fmt;

/// A position in the source text (1-based line and column).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// An error produced by any frontend phase (lexing, parsing, resolution,
/// lowering).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrontendError {
    /// Source position where the error was detected.
    pub pos: Pos,
    /// Human-readable description.
    pub message: String,
}

impl FrontendError {
    /// Creates a new error.
    pub fn new(pos: Pos, message: impl Into<String>) -> Self {
        FrontendError {
            pos,
            message: message.into(),
        }
    }
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.pos, self.message)
    }
}

impl Error for FrontendError {}

/// Convenient alias for frontend results.
pub type Result<T> = std::result::Result<T, FrontendError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = FrontendError::new(Pos { line: 3, col: 14 }, "unexpected token");
        assert_eq!(e.to_string(), "3:14: unexpected token");
    }
}
