//! Property tests for the points-to set representations.
//!
//! The chunked hybrid set (PR 9) replaces the whole-range bitmap behind
//! the same [`csc_core::PointsToSet`] API, and the solver flips between
//! the two via a process-global mode knob — so every observable must be
//! representation-independent:
//!
//! * arbitrary interleavings of `insert` / `union_with` / `union_delta` /
//!   `is_subset` / `intersects` must agree with a `BTreeSet` reference,
//!   under both representations, including the `union_delta` contract
//!   (the returned delta is *exactly* the genuinely-new elements, and
//!   `None` means no growth);
//! * iteration is ascending and duplicate-free regardless of which
//!   chunks are sparse, dense, or CoW-shared;
//! * copy-on-write chunk sharing is invisible: after a clone or an
//!   absorbing union aliases dense blocks between two sets, mutating
//!   either set never perturbs the other.
//!
//! The representation mode is a process-global (the solver sets it once
//! per solve), so tests that pin a representation serialize on a lock —
//! integration-test functions in one binary run on concurrent threads.

use csc_core::pts::set_default_repr;
use csc_core::{PointsToSet, PtsRepr};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Mutex;

/// Serializes tests that pin the process-global representation mode.
static REPR_LOCK: Mutex<()> = Mutex::new(());

/// Element domain: mostly ids inside one or two chunks (the hot case),
/// with a scattered tail across a 2²⁰ universe so multi-chunk paths,
/// promotion, and inter-chunk boundaries all get exercised.
fn elem() -> impl Strategy<Value = u32> {
    prop_oneof![
        4 => 0u32..300,
        3 => 3_900u32..4_400,   // straddles the first chunk boundary
        2 => 0u32..20_000,
        1 => 0u32..(1 << 20),
    ]
}

#[derive(Clone, Debug)]
enum Op {
    Insert(u32),
    UnionWith(Vec<u32>),
    UnionDelta(Vec<u32>),
    IsSubset(Vec<u32>),
    Intersects(Vec<u32>),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => elem().prop_map(Op::Insert),
        2 => proptest::collection::vec(elem(), 0..200).prop_map(Op::UnionWith),
        2 => proptest::collection::vec(elem(), 0..200).prop_map(Op::UnionDelta),
        1 => proptest::collection::vec(elem(), 0..60).prop_map(Op::IsSubset),
        1 => proptest::collection::vec(elem(), 0..60).prop_map(Op::Intersects),
    ]
}

fn set_of(elems: &[u32]) -> PointsToSet {
    elems.iter().copied().collect()
}

/// Runs one op stream against both the set under test and a `BTreeSet`
/// reference, checking every observable after every op.
fn check_against_reference(ops: &[Op]) {
    let mut s = PointsToSet::new();
    let mut r: BTreeSet<u32> = BTreeSet::new();
    for op in ops {
        match op {
            Op::Insert(e) => {
                prop_assert_eq!(s.insert(*e), r.insert(*e), "insert({}) novelty", e);
            }
            Op::UnionWith(elems) => {
                let grew = s.union_with(&set_of(elems));
                let before = r.len();
                r.extend(elems.iter().copied());
                prop_assert_eq!(grew, r.len() > before, "union_with growth flag");
            }
            Op::UnionDelta(elems) => {
                let delta = s.union_delta(&set_of(elems));
                let expect: BTreeSet<u32> =
                    elems.iter().copied().filter(|e| !r.contains(e)).collect();
                r.extend(elems.iter().copied());
                match delta {
                    None => prop_assert!(expect.is_empty(), "None delta but {:?} new", expect),
                    Some(d) => {
                        let got: Vec<u32> = d.iter().collect();
                        let want: Vec<u32> = expect.into_iter().collect();
                        prop_assert_eq!(got, want, "union_delta contents");
                    }
                }
            }
            Op::IsSubset(elems) => {
                let probe = set_of(elems);
                let probe_r: BTreeSet<u32> = elems.iter().copied().collect();
                prop_assert_eq!(probe.is_subset(&s), probe_r.is_subset(&r), "is_subset");
                let r_probe: BTreeSet<u32> = probe.iter().collect();
                prop_assert_eq!(
                    s.is_subset(&probe),
                    r.is_subset(&r_probe),
                    "is_subset reversed"
                );
            }
            Op::Intersects(elems) => {
                let probe = set_of(elems);
                let probe_r: BTreeSet<u32> = elems.iter().copied().collect();
                prop_assert_eq!(s.intersects(&probe), !r.is_disjoint(&probe_r), "intersects");
            }
        }
        prop_assert_eq!(s.len(), r.len(), "len after {:?}", op);
        // Ascending, duplicate-free, element-identical iteration.
        let got: Vec<u32> = s.iter().collect();
        let want: Vec<u32> = r.iter().copied().collect();
        prop_assert_eq!(got, want, "iteration order/content after {:?}", op);
        for &e in r.iter().take(8) {
            prop_assert!(s.contains(e), "contains({}) after {:?}", e, op);
        }
    }
}

proptest! {
    /// Differential: the full op algebra agrees with `BTreeSet` under the
    /// chunked representation.
    #[test]
    fn chunked_matches_btreeset(ops in proptest::collection::vec(op(), 0..30)) {
        let _g = REPR_LOCK.lock().unwrap();
        set_default_repr(PtsRepr::Chunked);
        check_against_reference(&ops);
    }

    /// Differential: the same algebra agrees under the legacy whole-range
    /// bitmap, so the `CSC_PTS_REPR=legacy` escape hatch is a real A/B.
    #[test]
    fn legacy_matches_btreeset(ops in proptest::collection::vec(op(), 0..30)) {
        let _g = REPR_LOCK.lock().unwrap();
        set_default_repr(PtsRepr::Legacy);
        check_against_reference(&ops);
        set_default_repr(PtsRepr::Chunked);
    }

    /// CoW aliasing safety: clone a set (sharing every dense chunk block),
    /// then mutate both sides independently — neither may observe the
    /// other's writes, and both must equal their references.
    #[test]
    fn cow_clone_isolates_mutations(
        base in proptest::collection::vec(elem(), 0..600),
        left in proptest::collection::vec(elem(), 0..200),
        right in proptest::collection::vec(elem(), 0..200),
    ) {
        let _g = REPR_LOCK.lock().unwrap();
        set_default_repr(PtsRepr::Chunked);
        let a = set_of(&base);
        let mut b = a.clone();
        let mut a = a;
        for &e in &left {
            a.insert(e);
        }
        b.union_with(&set_of(&right));

        let mut ra: BTreeSet<u32> = base.iter().copied().collect();
        let mut rb = ra.clone();
        ra.extend(left.iter().copied());
        rb.extend(right.iter().copied());
        prop_assert_eq!(a.iter().collect::<Vec<_>>(), ra.into_iter().collect::<Vec<_>>());
        prop_assert_eq!(b.iter().collect::<Vec<_>>(), rb.into_iter().collect::<Vec<_>>());
    }

    /// CoW absorption safety: `union_with` into an empty (or smaller) set
    /// shares the source's chunk blocks; the source must stay intact when
    /// the destination keeps growing, and vice versa.
    #[test]
    fn cow_union_sharing_isolates_mutations(
        src in proptest::collection::vec(elem(), 0..600),
        grow_dst in proptest::collection::vec(elem(), 0..200),
        grow_src in proptest::collection::vec(elem(), 0..200),
    ) {
        let _g = REPR_LOCK.lock().unwrap();
        set_default_repr(PtsRepr::Chunked);
        let mut source = set_of(&src);
        let mut dst = PointsToSet::new();
        dst.union_with(&source);

        for &e in &grow_dst {
            dst.insert(e);
        }
        source.union_with(&set_of(&grow_src));

        let mut rd: BTreeSet<u32> = src.iter().copied().collect();
        let mut rs = rd.clone();
        rd.extend(grow_dst.iter().copied());
        rs.extend(grow_src.iter().copied());
        prop_assert_eq!(dst.iter().collect::<Vec<_>>(), rd.into_iter().collect::<Vec<_>>());
        prop_assert_eq!(source.iter().collect::<Vec<_>>(), rs.into_iter().collect::<Vec<_>>());
    }

    /// Mode flips only steer *new* promotions: sets built under one
    /// representation keep working (and agreeing with the reference) when
    /// unioned with sets built under the other — exactly what happens when
    /// a process solves twice with different `CSC_PTS_REPR` settings.
    #[test]
    fn mixed_representation_unions_agree(
        a in proptest::collection::vec(elem(), 0..400),
        b in proptest::collection::vec(elem(), 0..400),
    ) {
        let _g = REPR_LOCK.lock().unwrap();
        set_default_repr(PtsRepr::Legacy);
        let legacy = set_of(&a);
        set_default_repr(PtsRepr::Chunked);
        let chunked = set_of(&b);

        let mut union_lc = legacy.clone();
        union_lc.union_with(&chunked);
        let mut union_cl = chunked.clone();
        union_cl.union_with(&legacy);

        let expect: BTreeSet<u32> = a.iter().chain(b.iter()).copied().collect();
        let want: Vec<u32> = expect.into_iter().collect();
        prop_assert_eq!(union_lc.iter().collect::<Vec<_>>(), want.clone());
        prop_assert_eq!(union_cl.iter().collect::<Vec<_>>(), want);
        prop_assert!(legacy.is_subset(&union_cl));
        prop_assert!(chunked.is_subset(&union_lc));
    }
}
