//! Property tests for the async engine's quiescence detector.
//!
//! [`Quiesce`] underpins the work-stealing engine's pause points: the
//! coordinator declares an async phase over when every worker is idle and
//! the outstanding-work counter reads zero. The safety property is **no
//! premature termination**: under *any* interleaving of work creation,
//! completion, deferred (batched) decrements, and park/unpark — the
//! exact freedoms the engine's protocol exploits — the detector must
//! never report quiescence while work still exists. The dual liveness
//! property is that once everything genuinely drains and every worker
//! parks, it must report quiescence.
//!
//! The model drives a real [`Quiesce`] with an abstract fleet of workers
//! obeying the engine's three protocol rules (count before publish,
//! decrement after the spawned work is counted, park only clean) and
//! checks the detector against ground truth after every single step.

use csc_core::Quiesce;
use proptest::prelude::*;

/// One modeled worker: parked or not, units it is currently processing
/// (claimed but not completed), and completed units whose decrements it
/// has batched but not yet flushed.
#[derive(Clone, Copy, Default)]
struct Worker {
    idle: bool,
    busy: u64,
    deferred: u64,
}

/// Ground truth the detector is checked against: work exists iff some
/// unit is unclaimed or some worker holds claimed units; the system is
/// quiescent iff every worker is parked and nothing is unclaimed (parked
/// workers cannot hold busy or deferred units, by the park guard below).
struct Model {
    unclaimed: u64,
    workers: Vec<Worker>,
}

impl Model {
    fn truly_quiescent(&self) -> bool {
        self.unclaimed == 0 && self.workers.iter().all(|w| w.idle)
    }
}

/// Applies one operation code to (model, detector) — operations whose
/// protocol guards fail are no-ops, so arbitrary byte streams explore
/// exactly the reachable interleavings.
fn apply(op: u8, w: usize, model: &mut Model, q: &Quiesce) {
    let worker = &mut model.workers[w];
    match op % 6 {
        // Claim: take an unclaimed unit (pop a queue entry / drain an
        // inbox message). No counter traffic — the unit stays counted
        // while the worker processes it.
        0 => {
            if !worker.idle && model.unclaimed > 0 {
                model.unclaimed -= 1;
                worker.busy += 1;
            }
        }
        // Spawn: a held unit creates a new one (an outbox flush, a
        // self-shard enqueue). Counted *before* it becomes visible.
        1 => {
            if worker.busy > 0 {
                q.add_work(1);
                model.unclaimed += 1;
            }
        }
        // Complete: finish processing a held unit, but *defer* its
        // decrement (the engine batches them per flush interval).
        2 => {
            if worker.busy > 0 {
                worker.busy -= 1;
                worker.deferred += 1;
            }
        }
        // Flush: the batched decrement of every completed unit.
        3 => {
            if worker.deferred > 0 {
                q.finish_work(worker.deferred);
                worker.deferred = 0;
            }
        }
        // Park: only with no held units, no pending decrements (protocol
        // rule 3 — a worker flushes everything before entering idle).
        4 => {
            if !worker.idle && worker.busy == 0 && worker.deferred == 0 {
                q.enter_idle();
                worker.idle = true;
            }
        }
        // Unpark: a worker waking to look for work.
        _ => {
            if worker.idle {
                q.leave_idle();
                worker.idle = false;
            }
        }
    }
}

proptest! {
    /// After every step of an arbitrary interleaving, the detector and
    /// the ground-truth model agree exactly — in particular it never
    /// reports quiescence while unclaimed or held work exists.
    #[test]
    fn detector_matches_ground_truth(
        nworkers in 1usize..5,
        seed in 0u64..21,
        ops in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..200),
    ) {
        let q = Quiesce::new(nworkers);
        q.add_work(seed);
        let mut model = Model {
            unclaimed: seed,
            workers: vec![Worker::default(); nworkers],
        };
        for &(op, w) in &ops {
            apply(op, w as usize % nworkers, &mut model, &q);
            prop_assert_eq!(
                q.is_quiescent(),
                model.truly_quiescent(),
                "detector diverged from ground truth (unclaimed={}, \
                 idle={:?}, busy={:?}, deferred={:?})",
                model.unclaimed,
                model.workers.iter().map(|w| w.idle).collect::<Vec<_>>(),
                model.workers.iter().map(|w| w.busy).collect::<Vec<_>>(),
                model.workers.iter().map(|w| w.deferred).collect::<Vec<_>>()
            );
        }
        // Liveness: drive the system to completion deterministically —
        // wake everyone, drain every unit, flush, park — and the
        // detector must report quiescence.
        for w in 0..nworkers {
            if model.workers[w].idle {
                apply(5, w, &mut model, &q);
            }
        }
        while model.unclaimed > 0 {
            apply(0, 0, &mut model, &q); // claim
            apply(2, 0, &mut model, &q); // complete
            apply(3, 0, &mut model, &q); // flush
        }
        for w in 0..nworkers {
            while model.workers[w].busy > 0 {
                apply(2, w, &mut model, &q); // complete held units
            }
            apply(3, w, &mut model, &q); // flush any stragglers
            apply(4, w, &mut model, &q); // park
        }
        prop_assert!(model.truly_quiescent());
        prop_assert!(q.is_quiescent(), "quiescent system not detected");
    }
}
