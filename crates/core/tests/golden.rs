//! Golden snapshot tests for the projected analysis results on three
//! small programs (the paper's motivating and pattern examples).
//!
//! The differential and property harnesses catch *divergence* between
//! engines, but a determinism regression that shifts both engines at once
//! (e.g. an iteration-order change leaking into projections) would slip
//! through them and only surface as an unreadable proptest failure
//! downstream. These snapshots pin the exact projected output — points-to
//! sets, reachable methods, call edges — so such a regression fails with a
//! line-level diff instead.
//!
//! Bless new snapshots with `CSC_UPDATE_GOLDEN=1 cargo test -p csc-core
//! --test golden` after verifying a change is intentional.

use std::fmt::Write as _;
use std::path::PathBuf;

use csc_core::{run_analysis_opts, Analysis, Budget, PtaResult, SolverOptions};
use csc_ir::{Program, VarId};

/// Renders every projection of a result as a deterministic text snapshot.
fn render(program: &Program, result: &PtaResult<'_>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## points-to");
    for i in 0..program.vars().len() {
        let v = VarId::from_usize(i);
        let pt = result.state.pt_var_projected(v);
        if pt.is_empty() {
            continue;
        }
        let var = program.var(v);
        let labels: Vec<&str> = pt.iter().map(|&o| program.obj(o).label()).collect();
        let _ = writeln!(
            out,
            "{}/{} -> [{}]",
            program.qualified_name(var.method()),
            var.name(),
            labels.join(", ")
        );
    }
    let _ = writeln!(out, "## reachable");
    for m in result.state.reachable_methods_projected() {
        let _ = writeln!(out, "{}", program.qualified_name(m));
    }
    let _ = writeln!(out, "## call-edges");
    for (site, callee) in result.state.call_edges_projected() {
        let cs = program.call_site(site);
        let _ = writeln!(
            out,
            "cs{}@{} -> {}",
            site.index(),
            program.qualified_name(cs.method()),
            program.qualified_name(callee)
        );
    }
    out
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

/// Compares a rendered snapshot against the committed golden file, with a
/// readable first-difference report. `CSC_UPDATE_GOLDEN=1` re-blesses.
fn check_golden(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var("CSC_UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden snapshot {}: {e}", path.display()));
    if want == got {
        return;
    }
    let mut diff = String::new();
    for (i, (w, g)) in want.lines().zip(got.lines()).enumerate() {
        if w != g {
            let _ = writeln!(diff, "  line {}:\n    golden: {w}\n    got:    {g}", i + 1);
        }
    }
    let (wn, gn) = (want.lines().count(), got.lines().count());
    if wn != gn {
        let _ = writeln!(diff, "  line counts differ: golden {wn}, got {gn}");
    }
    panic!(
        "golden snapshot {name} drifted (re-bless with CSC_UPDATE_GOLDEN=1 \
         if intentional):\n{diff}"
    );
}

/// The three snapshot subjects: the paper's motivating example (field
/// pattern), the container example, and the local-flow example.
fn subjects() -> Vec<(&'static str, String)> {
    vec![
        ("figure1", csc_workloads::examples::FIGURE1.to_owned()),
        ("figure4", csc_workloads::examples::figure4()),
        ("figure5", csc_workloads::examples::FIGURE5.to_owned()),
    ]
}

#[test]
fn golden_projections_are_stable() {
    for (name, src) in subjects() {
        let program = csc_frontend::compile(&src).expect("example compiles");
        for (label, analysis) in [
            ("ci", Analysis::Ci),
            ("csc", Analysis::CutShortcut),
            ("2obj", Analysis::KObj(2)),
        ] {
            let out = run_analysis_opts(
                &program,
                analysis,
                Budget::unlimited(),
                SolverOptions::default(),
            );
            assert!(out.completed());
            let got = render(&program, &out.result);
            check_golden(&format!("{name}_{label}"), &got);
        }
    }
}

/// The snapshot must not depend on the engine variant: uncollapsed and
/// aggressively-collapsed runs render byte-identical text.
#[test]
fn golden_projections_are_engine_invariant() {
    for (name, src) in subjects() {
        let program = csc_frontend::compile(&src).expect("example compiles");
        for (label, analysis) in [("ci", Analysis::Ci), ("csc", Analysis::CutShortcut)] {
            for opts in [SolverOptions::no_collapse(), SolverOptions::with_epoch(2)] {
                let out = run_analysis_opts(&program, analysis.clone(), Budget::unlimited(), opts);
                assert!(out.completed());
                let got = render(&program, &out.result);
                check_golden(&format!("{name}_{label}"), &got);
            }
        }
    }
}
