//! Differential harness for the incremental re-solver.
//!
//! The incremental contract is absolute: for every base program, every
//! generated delta, and every analysis configuration,
//! [`csc_core::resolve_analysis_opts`] on the base outcome must produce
//! **bit-identical projections** to running the analysis on the patched
//! program from scratch — whether the resolve took the localized
//! re-propagation path or fell back to a full solve. This harness crosses
//! suite programs × the four pipeline configurations (`ci`, `csc`,
//! `zipper`, `csc-hybrid`) × engines × thread counts {1, 4} and compares:
//!
//! * the projected points-to set of **every** variable (base and
//!   delta-added),
//! * the projected reachable-method set,
//! * the projected call-graph edge set,
//! * the four precision metrics.
//!
//! Deltas come from the seeded generator (`csc_workloads::generate_delta`)
//! in both monotone (additions-only) and mixed (add/remove) modes, and
//! chain: each step resolves on top of the previous step's outcome, so
//! incremental state survives repeated rebasing.

use std::collections::BTreeSet;

use csc_core::{
    resolve_analysis_opts, run_analysis_opts, Analysis, AnalysisOutcome, Budget, Engine,
    PrecisionMetrics, PtaResult, SolverOptions,
};
use csc_ir::{CallSiteId, MethodId, ObjId, Program, VarId};
use csc_workloads::{generate_delta, DeltaGenConfig};

/// The four configurations the acceptance criteria name.
fn configurations() -> Vec<(&'static str, Analysis)> {
    vec![
        ("ci", Analysis::Ci),
        ("csc", Analysis::CutShortcut),
        ("zipper", Analysis::ZipperE),
        ("csc-hybrid", Analysis::CscHybrid),
    ]
}

/// Everything required to be bit-identical between the incremental and
/// from-scratch solves of the patched program.
#[derive(PartialEq, Eq)]
struct Projections {
    pts: Vec<(VarId, Vec<ObjId>)>,
    reachable: BTreeSet<MethodId>,
    call_edges: BTreeSet<(CallSiteId, MethodId)>,
    metrics: PrecisionMetrics,
}

impl Projections {
    fn capture(program: &Program, result: &PtaResult<'_>) -> Self {
        let pts = (0..program.vars().len())
            .map(|i| {
                let v = VarId::from_usize(i);
                (v, result.state.pt_var_projected(v))
            })
            .collect();
        Projections {
            pts,
            reachable: result.state.reachable_methods_projected(),
            call_edges: result.state.call_edges_projected(),
            metrics: PrecisionMetrics::compute(result),
        }
    }

    fn assert_identical(&self, other: &Projections, program: &Program, what: &str) {
        assert_eq!(
            self.reachable, other.reachable,
            "{what}: reachable-method sets differ"
        );
        assert_eq!(
            self.call_edges, other.call_edges,
            "{what}: call-graph edges differ"
        );
        for ((v, a), (_, b)) in self.pts.iter().zip(other.pts.iter()) {
            if a != b {
                let var = program.var(*v);
                panic!(
                    "{what}: pt({}.{}) differs\n  incremental:  {a:?}\n  from-scratch: {b:?}",
                    program.qualified_name(var.method()),
                    var.name(),
                );
            }
        }
        assert_eq!(
            self.metrics, other.metrics,
            "{what}: precision metrics differ"
        );
    }
}

/// Drives `steps` chained deltas over one (program, analysis, options)
/// cell: at each step the previous outcome is resolved incrementally
/// against the patched program and compared bit-for-bit to a from-scratch
/// solve. Returns how many steps took the incremental path (no fallback),
/// so callers can assert the machinery actually engages.
fn differential_chain(
    base: &Program,
    analysis: Analysis,
    opts: SolverOptions,
    seed: u64,
    steps: usize,
    removals: bool,
    what: &str,
) -> usize {
    // Each resolve borrows the patched program for the outcome's
    // lifetime; leaking the few chain steps keeps lifetimes trivial
    // (mirrors `csc_workloads::compiled`'s deliberate leak).
    let mut current: &'static Program = Box::leak(Box::new(base.clone()));
    let mut outcome = run_analysis_opts(current, analysis.clone(), Budget::unlimited(), opts);
    assert!(outcome.completed(), "{what}: base run hit budget");
    let mut incremental_steps = 0;
    for step in 0..steps {
        let cfg = DeltaGenConfig {
            seed: seed.wrapping_add(step as u64),
            actions: 6,
            removals,
        };
        let delta = generate_delta(current, &cfg);
        let (patched, fx) = delta
            .apply(current)
            .unwrap_or_else(|e| panic!("{what} step {step}: delta must apply: {e}"));
        let patched: &'static Program = Box::leak(Box::new(patched));
        let scratch = run_analysis_opts(patched, analysis.clone(), Budget::unlimited(), opts);
        assert!(
            scratch.completed(),
            "{what} step {step}: scratch run hit budget"
        );
        let next: AnalysisOutcome<'_> = resolve_analysis_opts(
            outcome,
            patched,
            &fx,
            analysis.clone(),
            Budget::unlimited(),
            opts,
        );
        assert!(next.completed(), "{what} step {step}: resolve hit budget");
        let stats = next.result.state.stats;
        assert!(
            stats.incr_resolves > 0,
            "{what} step {step}: resolve did not count itself"
        );
        if stats.incr_fallback_reason.is_none() {
            incremental_steps += 1;
        }
        let p_incr = Projections::capture(patched, &next.result);
        let p_scratch = Projections::capture(patched, &scratch.result);
        p_incr.assert_identical(
            &p_scratch,
            patched,
            &format!(
                "{what} step {step} (fallback={:?})",
                stats.incr_fallback_reason
            ),
        );
        outcome = next;
        current = patched;
    }
    incremental_steps
}

/// Monotone (additions-only) chains: the plain analyses must take the
/// incremental path on every step that doesn't grow the dispatch surface
/// — and in aggregate the fast matrix must exercise it.
#[test]
fn incremental_monotone_small_suite() {
    let mut incremental = 0;
    for name in ["hsqldb", "findbugs"] {
        let program = csc_workloads::compiled(name).unwrap();
        for (label, analysis) in configurations() {
            let what = format!("{name}/{label} (monotone, epoch=32)");
            incremental += differential_chain(
                program,
                analysis,
                SolverOptions::with_epoch(32),
                0xadd0,
                3,
                false,
                &what,
            );
        }
    }
    assert!(
        incremental > 0,
        "no monotone step took the incremental path"
    );
}

/// Mixed add/remove chains: removal cones, fallback gates, and the
/// SCC-structure bail must all keep projections bit-identical.
#[test]
fn incremental_removals_small_suite() {
    for name in ["hsqldb", "findbugs"] {
        let program = csc_workloads::compiled(name).unwrap();
        for (label, analysis) in configurations() {
            let what = format!("{name}/{label} (removals, epoch=32)");
            differential_chain(
                program,
                analysis,
                SolverOptions::with_epoch(32),
                0xde1e,
                3,
                true,
                &what,
            );
        }
    }
}

/// Incremental resolve on the multi-threaded engines: the rebased state
/// carries the engine configuration, and re-propagation must stay
/// projection-identical to a from-scratch parallel solve.
#[test]
fn incremental_parallel_small_suite() {
    let program = csc_workloads::compiled("hsqldb").unwrap();
    for (label, analysis) in configurations() {
        for engine in [Engine::Bsp, Engine::Async] {
            let opts = SolverOptions::with_epoch(32)
                .with_threads(4)
                .with_engine(engine);
            let what = format!("hsqldb/{label} (threads=4, {engine:?}, epoch=32)");
            differential_chain(program, analysis.clone(), opts, 0x9a7, 2, true, &what);
        }
    }
}

/// Context-sensitive baselines ride the same incremental machinery
/// (context-qualified cones).
#[test]
fn incremental_context_sensitive_baselines() {
    let program = csc_workloads::compiled("findbugs").unwrap();
    for (label, analysis) in [
        ("2obj", Analysis::KObj(2)),
        ("2type", Analysis::KType(2)),
        ("1cs", Analysis::KCallSite(1)),
    ] {
        let what = format!("findbugs/{label} (removals, epoch=8)");
        differential_chain(
            program,
            analysis,
            SolverOptions::with_epoch(8),
            0xc5,
            2,
            true,
            &what,
        );
    }
}

/// Collapsing disabled end-to-end: with no SCC members the taint closure
/// can never hit the SccStructure bail, so removals should still resolve
/// incrementally (for plain analyses) whenever dispatch is stable.
#[test]
fn incremental_no_collapse() {
    let program = csc_workloads::compiled("hsqldb").unwrap();
    for (label, analysis) in configurations() {
        let what = format!("hsqldb/{label} (removals, no-collapse)");
        differential_chain(
            program,
            analysis,
            SolverOptions::no_collapse(),
            0x70c0,
            3,
            true,
            &what,
        );
    }
}

/// The full-matrix leg: every suite program × four configurations ×
/// both engines × threads {1, 4}, chained monotone and mixed deltas.
/// Ignored by default (run in release mode; CI has a dedicated job).
#[test]
#[ignore = "full suite x 4 configs x engines x threads; run in release mode (see doc comment)"]
fn incremental_full_suite() {
    for bench in csc_workloads::suite() {
        let program = csc_workloads::compiled(bench.name).unwrap();
        for (label, analysis) in configurations() {
            for (threads, engine) in [(1, Engine::Bsp), (4, Engine::Bsp), (4, Engine::Async)] {
                let opts = SolverOptions::default()
                    .with_threads(threads)
                    .with_engine(engine);
                for removals in [false, true] {
                    let what = format!(
                        "{}/{label} (threads={threads}, {engine:?}, removals={removals})",
                        bench.name
                    );
                    differential_chain(program, analysis.clone(), opts, 0xf511, 2, removals, &what);
                }
            }
        }
    }
}
