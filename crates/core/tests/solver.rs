//! Engine-level tests: worklist solver behavior, budgets, context
//! selectors, and result projections — independent of the Cut-Shortcut
//! plugin.

use std::collections::HashSet;

use csc_core::{
    run_analysis, Analysis, Budget, CallSiteSelector, CiSelector, NoPlugin, ObjSelector,
    SelectiveSelector, SolveStatus, Solver,
};
use csc_ir::Program;

fn compile(src: &str) -> Program {
    csc_frontend::compile(src).expect("compiles")
}

#[test]
fn unreachable_methods_stay_unreachable() {
    let p = compile(
        r#"
        class A {
            void used() { }
            void unused() { this.alsoUnused(); }
            void alsoUnused() { }
        }
        class Main { static void main() { A a = new A(); a.used(); } }
        "#,
    );
    let (r, _) = Solver::new(&p, CiSelector, NoPlugin, Budget::unlimited()).solve();
    let reach = r.state.reachable_methods_projected();
    assert!(reach.contains(&p.method_by_qualified_name("A.used").unwrap()));
    assert!(!reach.contains(&p.method_by_qualified_name("A.unused").unwrap()));
    assert!(!reach.contains(&p.method_by_qualified_name("A.alsoUnused").unwrap()));
}

#[test]
fn dispatch_uses_runtime_type_not_declared_type() {
    let p = compile(
        r#"
        class A { void m() { this.onlyA(); } void onlyA() { } }
        class B extends A { void m() { this.onlyB(); } void onlyB() { } }
        class Main { static void main() { A a = new B(); a.m(); } }
        "#,
    );
    let (r, _) = Solver::new(&p, CiSelector, NoPlugin, Budget::unlimited()).solve();
    let reach = r.state.reachable_methods_projected();
    assert!(reach.contains(&p.method_by_qualified_name("B.onlyB").unwrap()));
    assert!(
        !reach.contains(&p.method_by_qualified_name("A.onlyA").unwrap()),
        "only B's override runs: A.m must not be reachable"
    );
}

/// Store through one alias, load through another: flow-insensitive
/// analysis must connect them.
#[test]
fn field_flow_through_aliases_dispatches() {
    let p = compile(
        r#"
        class Payload { void go() { } }
        class Box { Payload f; }
        class Main {
            static void main() {
                Box b1 = new Box();
                Box b2 = b1;
                b1.f = new Payload();
                Payload x = b2.f;
                x.go();
            }
        }
        "#,
    );
    let (r, _) = Solver::new(&p, CiSelector, NoPlugin, Budget::unlimited()).solve();
    assert!(r
        .state
        .reachable_methods_projected()
        .contains(&p.method_by_qualified_name("Payload.go").unwrap()));
}

#[test]
fn null_only_variables_have_empty_pts() {
    let p = compile(
        r#"
        class Main {
            static void main() {
                Object x = null;
                Object y = x;
            }
        }
        "#,
    );
    let (r, _) = Solver::new(&p, CiSelector, NoPlugin, Budget::unlimited()).solve();
    for &v in p.method(p.entry()).vars() {
        assert!(r.state.pt_var_projected(v).is_empty());
    }
}

#[test]
fn propagation_budget_times_out_deterministically() {
    // A program with plenty of propagation work: a chain of copies fed by
    // many allocations.
    let mut src = String::from("class Main { static void main() {\n");
    for i in 0..40 {
        src.push_str(&format!("Object a{i} = new Object();\n"));
    }
    src.push_str("Object c0 = a0;\n");
    for i in 1..40 {
        src.push_str(&format!("Object c{i} = c{};\n", i - 1));
        src.push_str(&format!("c{i} = a{i};\n"));
    }
    src.push_str("} }\n");
    let p = compile(&src);
    let budget = Budget {
        time: None,
        max_propagations: Some(50),
    };
    let (r, _) = Solver::new(&p, CiSelector, NoPlugin, budget).solve();
    assert_eq!(r.status, SolveStatus::Timeout);
    assert!(r.state.stats.propagations <= 51);
}

#[test]
fn call_site_sensitivity_separates_static_helpers() {
    // 1-call-site sensitivity distinguishes the two calls of `id`, which
    // neither CI nor object sensitivity can (static call, no receiver).
    let src = r#"
        class A { void m() { } }
        class B { void m() { } }
        class Main {
            static Object id(Object o) { return o; }
            static void main() {
                Object a = Main.id(new A());
                Object b = Main.id(new B());
            }
        }
    "#;
    let p = compile(src);
    let var = |name: &str| {
        p.method(p.entry())
            .vars()
            .iter()
            .copied()
            .find(|&v| p.var(v).name() == name)
            .unwrap()
    };
    let (ci, _) = Solver::new(&p, CiSelector, NoPlugin, Budget::unlimited()).solve();
    assert_eq!(ci.state.pt_var_projected(var("a")).len(), 2, "CI merges");
    let (cs1, _) = Solver::new(&p, CallSiteSelector::new(1), NoPlugin, Budget::unlimited()).solve();
    assert_eq!(cs1.state.pt_var_projected(var("a")).len(), 1);
    assert_eq!(cs1.state.pt_var_projected(var("b")).len(), 1);
    let (obj2, _) = Solver::new(&p, ObjSelector::new(2), NoPlugin, Budget::unlimited()).solve();
    assert_eq!(
        obj2.state.pt_var_projected(var("a")).len(),
        2,
        "object sensitivity cannot split static calls"
    );
}

#[test]
fn obj_sensitivity_separates_by_receiver() {
    let src = r#"
        class Box {
            Object f;
            void set(Object v) { this.f = v; }
            Object get() { Object r; r = this.f; return r; }
        }
        class Main {
            static void main() {
                Box b1 = new Box();
                b1.set(new Object());
                Object x = b1.get();
                Box b2 = new Box();
                b2.set(new Object());
                Object y = b2.get();
            }
        }
    "#;
    let p = compile(src);
    let var = |name: &str| {
        p.method(p.entry())
            .vars()
            .iter()
            .copied()
            .find(|&v| p.var(v).name() == name)
            .unwrap()
    };
    for k in [1usize, 2, 3] {
        let (r, _) = Solver::new(&p, ObjSelector::new(k), NoPlugin, Budget::unlimited()).solve();
        assert_eq!(r.state.pt_var_projected(var("x")).len(), 1, "k={k}");
        assert_eq!(r.state.pt_var_projected(var("y")).len(), 1, "k={k}");
    }
}

#[test]
fn selective_selector_restricts_contexts_to_selected() {
    let src = r#"
        class Box {
            Object f;
            void set(Object v) { this.f = v; }
            Object get() { Object r; r = this.f; return r; }
        }
        class Main {
            static void main() {
                Box b1 = new Box();
                b1.set(new Object());
                Object x = b1.get();
                Box b2 = new Box();
                b2.set(new Object());
                Object y = b2.get();
            }
        }
    "#;
    let p = compile(src);
    let var = |name: &str| {
        p.method(p.entry())
            .vars()
            .iter()
            .copied()
            .find(|&v| p.var(v).name() == name)
            .unwrap()
    };
    // Selecting nothing behaves like CI.
    let none = SelectiveSelector::new(ObjSelector::new(2), HashSet::new(), "none");
    let (r, _) = Solver::new(&p, none, NoPlugin, Budget::unlimited()).solve();
    assert_eq!(r.state.pt_var_projected(var("x")).len(), 2);
    // Selecting Box's methods recovers 2obj's precision.
    let selected: HashSet<_> = ["Box.set", "Box.get"]
        .iter()
        .map(|n| p.method_by_qualified_name(n).unwrap())
        .collect();
    let sel = SelectiveSelector::new(ObjSelector::new(2), selected, "box-only");
    let (r, _) = Solver::new(&p, sel, NoPlugin, Budget::unlimited()).solve();
    assert_eq!(r.state.pt_var_projected(var("x")).len(), 1);
    assert_eq!(r.state.pt_var_projected(var("y")).len(), 1);
}

#[test]
fn cast_edges_filter_by_type() {
    let p = compile(
        r#"
        class A { void onlyA() { } }
        class B { void onlyB() { } }
        class Main {
            static Object pick(Object x, Object y) {
                Object r;
                if (x == y) { r = x; } else { r = y; }
                return r;
            }
            static void main() {
                Object o = Main.pick(new A(), new B());
                A a = (A) o;
                a.onlyA();
            }
        }
        "#,
    );
    let (r, _) = Solver::new(&p, CiSelector, NoPlugin, Budget::unlimited()).solve();
    let a_var = p
        .method(p.entry())
        .vars()
        .iter()
        .copied()
        .find(|&v| p.var(v).name() == "a")
        .unwrap();
    // The cast filters the B object out of `a`, checkcast-style.
    assert_eq!(r.state.pt_var_projected(a_var).len(), 1);
    assert!(!r
        .state
        .reachable_methods_projected()
        .contains(&p.method_by_qualified_name("B.onlyB").unwrap()));
}

#[test]
fn recursion_reaches_fixpoint() {
    let p = compile(
        r#"
        class Node { Object item; Node next; }
        class Main {
            static Node build(int n, Node tail) {
                if (n == 0) { return tail; }
                Node h = new Node();
                h.next = tail;
                h.item = new Object();
                Node r = Main.build(n - 1, h);
                return r;
            }
            static void main() {
                Node list = Main.build(5, null);
                Object x = list.item;
            }
        }
        "#,
    );
    let out = run_analysis(&p, Analysis::Ci, Budget::unlimited());
    assert_eq!(out.result.status, SolveStatus::Completed);
    let x = p
        .method(p.entry())
        .vars()
        .iter()
        .copied()
        .find(|&v| p.var(v).name() == "x")
        .unwrap();
    assert_eq!(out.result.state.pt_var_projected(x).len(), 1);
    // Cut-Shortcut handles recursion too (the temp-store propagation must
    // terminate on the cyclic call graph).
    let out = run_analysis(&p, Analysis::CutShortcut, Budget::unlimited());
    assert_eq!(out.result.status, SolveStatus::Completed);
    assert_eq!(out.result.state.pt_var_projected(x).len(), 1);
}

#[test]
fn constructor_chaining_via_super() {
    let p = compile(
        r#"
        class Base {
            Object v;
            Base(Object v) { this.v = v; }
        }
        class Derived extends Base {
            Derived(Object v) { super(v); }
        }
        class Probe { void hit() { } }
        class Main {
            static void main() {
                Derived d = new Derived(new Probe());
                Probe p = (Probe) d.v;
                p.hit();
            }
        }
        "#,
    );
    let out = run_analysis(&p, Analysis::CutShortcut, Budget::unlimited());
    assert!(out
        .result
        .state
        .reachable_methods_projected()
        .contains(&p.method_by_qualified_name("Probe.hit").unwrap()));
    // The nested store `this.v = v` behind `super(v)` is still tracked
    // precisely: pt(p) is the single Probe object.
    let pv = p
        .method(p.entry())
        .vars()
        .iter()
        .copied()
        .find(|&v| p.var(v).name() == "p")
        .unwrap();
    assert_eq!(out.result.state.pt_var_projected(pv).len(), 1);
}
