//! Differential harness for SCC-collapsed and sharded parallel propagation.
//!
//! Both engine variants must be *precision-neutral*: for every program and
//! every analysis configuration, the solver with cycle collapsing enabled
//! must produce bit-identical projected results to the uncollapsed
//! reference engine, and the sharded parallel engine (threads ≥ 2) must
//! produce bit-identical projected results to the sequential engine for
//! every thread count. This harness runs every suite program under the
//! four configurations of the paper's pipeline — `ci`, `csc`, `zipper`,
//! `csc-hybrid` — across those engine variants and compares:
//!
//! * the projected points-to set of **every** variable of the program,
//! * the projected reachable-method set,
//! * the projected call-graph edge set,
//! * the four precision metrics.
//!
//! The fast tests additionally force a tiny condensation epoch
//! (`SolverOptions::with_epoch`) so merge/catch-up paths run even on small
//! programs — for the parallel tests that also forces condensation epochs
//! to interleave with parallel rounds; the full-suite tests use the
//! production (adaptive) epoch. Programs come from the process-wide
//! compiled-IR cache (`csc_workloads::compiled`), so each benchmark is
//! lowered once per test process, not once per configuration.

use std::collections::BTreeSet;

use csc_core::{
    run_analysis_opts, Analysis, Budget, Engine, PrecisionMetrics, PtaResult, SolverOptions,
};
use csc_ir::{CallSiteId, MethodId, ObjId, Program, VarId};

/// The four configurations the acceptance criteria name.
fn configurations() -> Vec<(&'static str, Analysis)> {
    vec![
        ("ci", Analysis::Ci),
        ("csc", Analysis::CutShortcut),
        ("zipper", Analysis::ZipperE),
        ("csc-hybrid", Analysis::CscHybrid),
    ]
}

/// Everything we require to be bit-identical between the collapsed and
/// uncollapsed engines.
#[derive(PartialEq, Eq)]
struct Projections {
    pts: Vec<(VarId, Vec<ObjId>)>,
    reachable: BTreeSet<MethodId>,
    call_edges: BTreeSet<(CallSiteId, MethodId)>,
    metrics: PrecisionMetrics,
}

impl Projections {
    fn capture(program: &Program, result: &PtaResult<'_>) -> Self {
        let pts = (0..program.vars().len())
            .map(|i| {
                let v = VarId::from_usize(i);
                (v, result.state.pt_var_projected(v))
            })
            .collect();
        Projections {
            pts,
            reachable: result.state.reachable_methods_projected(),
            call_edges: result.state.call_edges_projected(),
            metrics: PrecisionMetrics::compute(result),
        }
    }

    /// Panics with a readable location on the first difference.
    fn assert_identical(&self, other: &Projections, program: &Program, what: &str) {
        assert_eq!(
            self.reachable, other.reachable,
            "{what}: reachable-method sets differ"
        );
        assert_eq!(
            self.call_edges, other.call_edges,
            "{what}: call-graph edges differ"
        );
        for ((v, a), (_, b)) in self.pts.iter().zip(other.pts.iter()) {
            if a != b {
                let var = program.var(*v);
                panic!(
                    "{what}: pt({}.{}) differs\n  collapsed:   {a:?}\n  uncollapsed: {b:?}",
                    program.qualified_name(var.method()),
                    var.name(),
                );
            }
        }
        assert_eq!(
            self.metrics, other.metrics,
            "{what}: precision metrics differ"
        );
    }
}

/// Runs one (program, analysis) pair under both engines and asserts
/// bit-identical projections. Returns the two propagation counts so
/// callers can assert the collapsed engine actually saved work.
fn differential(
    program: &Program,
    analysis: Analysis,
    collapsed_opts: SolverOptions,
    what: &str,
) -> (u64, u64) {
    let on = run_analysis_opts(
        program,
        analysis.clone(),
        Budget::unlimited(),
        collapsed_opts,
    );
    let off = run_analysis_opts(
        program,
        analysis,
        Budget::unlimited(),
        SolverOptions::no_collapse(),
    );
    assert!(on.completed(), "{what}: collapsed run hit budget");
    assert!(off.completed(), "{what}: uncollapsed run hit budget");
    let p_on = Projections::capture(program, &on.result);
    let p_off = Projections::capture(program, &off.result);
    p_on.assert_identical(&p_off, program, what);
    (
        on.result.state.stats.propagations,
        off.result.state.stats.propagations,
    )
}

/// Runs one (program, analysis) pair on the sequential engine and on
/// *both* multi-threaded engines at each requested thread count,
/// asserting bit-identical projections throughout:
///
/// * `CSC_ENGINE=bsp` — the bulk-synchronous engine, under both commit
///   modes: the sharded commit plane (worker-owned edge growth + stride
///   interning) and the coordinator-replay fallback (the
///   `CSC_PAR_COMMIT=0` path);
/// * `CSC_ENGINE=async` — the work-stealing engine, whose determinism
///   contract is results-only (schedule-free): projections and metrics
///   must still match the sequential engine exactly, which is precisely
///   what this harness checks. The commit switch is irrelevant there
///   (async phases always commit fan-out at the pause point), so it runs
///   once per thread count.
///
/// Engine and commit mode are pinned through [`SolverOptions`] rather
/// than the env vars so the matrix is race-free under parallel test
/// execution. `base_opts` carries the epoch configuration so
/// collapse-during-parallel paths get stressed too.
fn differential_threads(
    program: &Program,
    analysis: Analysis,
    base_opts: SolverOptions,
    threads: &[usize],
    what: &str,
) {
    let seq = run_analysis_opts(
        program,
        analysis.clone(),
        Budget::unlimited(),
        base_opts.with_threads(1),
    );
    assert!(seq.completed(), "{what}: sequential run hit budget");
    let p_seq = Projections::capture(program, &seq.result);
    for &t in threads {
        for engine in [Engine::Bsp, Engine::Async] {
            let commits: &[bool] = match engine {
                Engine::Bsp => &[true, false],
                Engine::Async => &[true],
            };
            for &commit in commits {
                let par = run_analysis_opts(
                    program,
                    analysis.clone(),
                    Budget::unlimited(),
                    base_opts
                        .with_threads(t)
                        .with_par_commit(commit)
                        .with_engine(engine),
                );
                assert!(
                    par.completed(),
                    "{what}: {t}-thread ({engine:?}, commit={commit}) run hit budget"
                );
                let p_par = Projections::capture(program, &par.result);
                p_par.assert_identical(
                    &p_seq,
                    program,
                    &format!("{what} [threads={t}, engine={engine:?}, commit={commit} vs 1]"),
                );
            }
        }
    }
}

/// Small programs under an aggressive epoch (condense after every 32 copy
/// edges) so the merge, catch-up, and requeue paths are exercised hard.
#[test]
fn differential_small_suite_aggressive_epochs() {
    for name in ["hsqldb", "findbugs", "jython"] {
        let program = csc_workloads::compiled(name).unwrap();
        for (label, analysis) in configurations() {
            let what = format!("{name}/{label} (epoch=32)");
            differential(program, analysis, SolverOptions::with_epoch(32), &what);
        }
    }
}

/// The sharded parallel engine against the sequential engine: small
/// programs × the four pipeline configurations × {2, 4, 8} threads, with
/// the aggressive epoch so condensation interleaves with parallel rounds.
/// 8 threads oversubscribes small programs on purpose — shards with empty
/// batches and sparse outboxes are where routing bugs hide.
#[test]
fn differential_parallel_small_suite() {
    for name in ["hsqldb", "findbugs", "jython"] {
        let program = csc_workloads::compiled(name).unwrap();
        for (label, analysis) in configurations() {
            let what = format!("{name}/{label} (parallel, epoch=32)");
            differential_threads(
                program,
                analysis,
                SolverOptions::with_epoch(32),
                &[2, 4, 8],
                &what,
            );
        }
    }
}

/// Topology-aware shard routing (`CSC_SHARD_ROUTE=balanced`) re-homes
/// slots at condensation epochs; the differential contract is unchanged —
/// routing is a physical-placement lever, so projections must stay
/// bit-identical to the sequential engine under both commit modes. The
/// mode is pinned through [`SolverOptions`] (race-free, like the commit
/// switch); the aggressive epoch forces many rebalance passes, so rows
/// migrate while strides, outboxes, and edge commits are in flight
/// between epochs.
#[test]
fn differential_parallel_balanced_route() {
    for name in ["hsqldb", "findbugs"] {
        let program = csc_workloads::compiled(name).unwrap();
        for (label, analysis) in configurations() {
            differential_threads(
                program,
                analysis,
                SolverOptions::with_epoch(32).with_balanced_route(true),
                &[2, 4],
                &format!("{name}/{label} (parallel, balanced route, epoch=32)"),
            );
        }
    }
}

/// BSP round fusion (`SolverOptions::with_round_fusion`) adaptively
/// raises the inline-round threshold, so consecutive small rounds run on
/// the coordinator instead of being dispatched — a pure scheduling
/// lever, so projections must stay bit-identical to the sequential
/// engine. Pinned through options (race-free under parallel test
/// execution); the async engine ignores the knob, so the crossing inside
/// [`differential_threads`] doubles as a no-interference check.
#[test]
fn differential_parallel_round_fusion() {
    for name in ["hsqldb", "jython"] {
        let program = csc_workloads::compiled(name).unwrap();
        for (label, analysis) in configurations() {
            differential_threads(
                program,
                analysis,
                SolverOptions::with_epoch(32).with_round_fusion(true),
                &[2, 4],
                &format!("{name}/{label} (parallel, round fusion, epoch=32)"),
            );
        }
    }
}

/// The parallel engine must also commute with the context-sensitive
/// baselines (context-qualified pointers shard like any other slot) and
/// with collapsing disabled entirely.
#[test]
fn differential_parallel_context_sensitive() {
    let program = csc_workloads::compiled("findbugs").unwrap();
    for (label, analysis) in [
        ("2obj", Analysis::KObj(2)),
        ("2type", Analysis::KType(2)),
        ("1cs", Analysis::KCallSite(1)),
    ] {
        differential_threads(
            program,
            analysis.clone(),
            SolverOptions::with_epoch(8),
            &[2, 4, 8],
            &format!("findbugs/{label} (parallel, epoch=8)"),
        );
        differential_threads(
            program,
            analysis,
            SolverOptions::no_collapse(),
            &[2, 4, 8],
            &format!("findbugs/{label} (parallel, no-collapse)"),
        );
    }
}

/// The full ten-program suite × four configurations under the production
/// (adaptive) epoch. The heavy configs must also show the point of the
/// exercise: fewer propagations with collapsing on.
///
/// Ignored by default: the 80 solver runs take tens of minutes unoptimized.
/// CI runs it in release mode; locally use
/// `cargo test --release -p csc-core --test differential -- --ignored`.
#[test]
#[ignore = "full suite x 4 configs x 2 engines; run in release mode (see doc comment)"]
fn differential_full_suite() {
    let mut heavy_savings = Vec::new();
    for bench in csc_workloads::suite() {
        let program = csc_workloads::compiled(bench.name).unwrap();
        for (label, analysis) in configurations() {
            let what = format!("{}/{label}", bench.name);
            let (on, off) = differential(program, analysis, SolverOptions::default(), &what);
            if matches!(bench.name, "freecol" | "eclipse") {
                heavy_savings.push((what, on, off));
            }
        }
    }
    for (what, on, off) in heavy_savings {
        assert!(
            on <= off,
            "{what}: collapsed engine propagated more ({on} > {off})"
        );
    }
}

/// The full ten-program suite × four configurations on the parallel engine
/// at 2, 4 and 8 threads, against the sequential engine, under the
/// production (adaptive) epoch. Ignored for the same reason as
/// [`differential_full_suite`]; CI runs it in release mode.
#[test]
#[ignore = "full suite x 4 configs x 4 thread counts; run in release mode (see doc comment)"]
fn differential_parallel_full_suite() {
    for bench in csc_workloads::suite() {
        let program = csc_workloads::compiled(bench.name).unwrap();
        for (label, analysis) in configurations() {
            let what = format!("{}/{label} (parallel)", bench.name);
            differential_threads(
                program,
                analysis,
                SolverOptions::default(),
                &[2, 4, 8],
                &what,
            );
        }
    }
}

/// Runs one (program, analysis) pair under both points-to
/// representations (the chunked hybrid vs the legacy whole-range
/// bitmap) across engines and thread counts, asserting bit-identical
/// projections against a sequential chunked reference. The
/// representation is a pure data-plane swap — same elements, different
/// layout — so *every* projection must survive the flip exactly. The
/// mode is pinned through [`SolverOptions::with_pts_repr`], race-free
/// under parallel test execution up to the process-global promotion
/// knob (which any concurrent solve re-pins at its own start; a
/// mid-solve flip only changes which layout new sets promote into,
/// never their contents — that is what this leg proves).
fn differential_repr(
    program: &Program,
    analysis: Analysis,
    base_opts: SolverOptions,
    threads: &[usize],
    what: &str,
) {
    use csc_core::PtsRepr;
    let reference = run_analysis_opts(
        program,
        analysis.clone(),
        Budget::unlimited(),
        base_opts.with_threads(1).with_pts_repr(PtsRepr::Chunked),
    );
    assert!(
        reference.completed(),
        "{what}: chunked reference hit budget"
    );
    let p_ref = Projections::capture(program, &reference.result);
    for repr in [PtsRepr::Legacy, PtsRepr::Chunked] {
        for &t in threads {
            let engines: &[Engine] = if t <= 1 {
                &[Engine::Bsp] // below two threads both engines are the sequential path
            } else {
                &[Engine::Bsp, Engine::Async]
            };
            for &engine in engines {
                if repr == PtsRepr::Chunked && t <= 1 {
                    continue; // that run *is* the reference
                }
                let run = run_analysis_opts(
                    program,
                    analysis.clone(),
                    Budget::unlimited(),
                    base_opts
                        .with_threads(t)
                        .with_engine(engine)
                        .with_pts_repr(repr),
                );
                assert!(
                    run.completed(),
                    "{what}: {repr:?} ({t} threads, {engine:?}) run hit budget"
                );
                let p = Projections::capture(program, &run.result);
                p.assert_identical(
                    &p_ref,
                    program,
                    &format!("{what} [{repr:?}, threads={t}, engine={engine:?} vs chunked seq]"),
                );
            }
        }
    }
}

/// The chunked points-to representation against the legacy bitmap on the
/// small suite: repr × four configurations × {1, 4} threads × both
/// parallel engines, with the aggressive epoch so CoW-shared chunks live
/// through SCC merges and row migrations.
#[test]
fn differential_pts_repr() {
    for name in ["hsqldb", "findbugs", "jython"] {
        let program = csc_workloads::compiled(name).unwrap();
        for (label, analysis) in configurations() {
            differential_repr(
                program,
                analysis,
                SolverOptions::with_epoch(32),
                &[1, 4],
                &format!("{name}/{label} (pts-repr, epoch=32)"),
            );
        }
    }
}

/// The full ten-program suite × four configurations across both
/// representations under the production epoch. Ignored for the same
/// reason as [`differential_full_suite`]; CI runs it in release mode.
#[test]
#[ignore = "full suite x 4 configs x 2 reprs; run in release mode (see doc comment)"]
fn differential_pts_repr_full_suite() {
    for bench in csc_workloads::suite() {
        let program = csc_workloads::compiled(bench.name).unwrap();
        for (label, analysis) in configurations() {
            differential_repr(
                program,
                analysis,
                SolverOptions::default(),
                &[1, 4],
                &format!("{}/{label} (pts-repr)", bench.name),
            );
        }
    }
}

/// Collapsing must also commute with the per-pattern ablations (the Doop
/// configuration exercises the relay rule hardest).
#[test]
fn differential_ablations_on_hsqldb() {
    use csc_core::CscConfig;
    let program = csc_workloads::compiled("hsqldb").unwrap();
    for (label, cfg) in [
        ("doop", CscConfig::doop()),
        ("only-field", CscConfig::only_field()),
        ("only-container", CscConfig::only_container()),
        ("only-local-flow", CscConfig::only_local_flow()),
    ] {
        let what = format!("hsqldb/csc-{label} (epoch=32)");
        differential(
            program,
            Analysis::CutShortcutWith(cfg),
            SolverOptions::with_epoch(32),
            &what,
        );
    }
}

/// The object-sensitive baselines go through the same propagation engine;
/// keep them honest too (context-qualified nodes must collapse safely).
#[test]
fn differential_context_sensitive_baselines() {
    let program = csc_workloads::compiled("findbugs").unwrap();
    for (label, analysis) in [
        ("2obj", Analysis::KObj(2)),
        ("2type", Analysis::KType(2)),
        ("1cs", Analysis::KCallSite(1)),
    ] {
        let what = format!("findbugs/{label} (epoch=8)");
        differential(program, analysis, SolverOptions::with_epoch(8), &what);
    }
}
