//! Property tests for the online SCC structure behind cycle-collapsed
//! propagation: random digraphs, arbitrary interleavings of edge
//! insertions and queries, checked against a naive offline reference model
//! (transitive-closure condensation — `u` and `v` share an SCC iff each
//! reaches the other).

use csc_core::OnlineScc;
use proptest::prelude::*;

/// Transitive closure over `n` nodes (Floyd–Warshall on booleans): the
/// clearly-correct reference the online structure must match.
fn closure(n: usize, edges: &[(u32, u32)]) -> Vec<Vec<bool>> {
    let mut r = vec![vec![false; n]; n];
    for (i, row) in r.iter_mut().enumerate() {
        row[i] = true;
    }
    for &(u, v) in edges {
        r[u as usize][v as usize] = true;
    }
    for k in 0..n {
        let row_k = r[k].clone();
        for row in r.iter_mut() {
            if row[k] {
                row.iter_mut()
                    .zip(&row_k)
                    .for_each(|(dst, &via_k)| *dst |= via_k);
            }
        }
    }
    r
}

/// Asserts the online partition over `n` nodes equals the reference
/// partition of `edges`, and that every representative is the smallest
/// member of its SCC (the deterministic election the solver relies on).
fn assert_partition_matches(scc: &mut OnlineScc, n: usize, edges: &[(u32, u32)]) {
    let reach = closure(n, edges);
    for u in 0..n as u32 {
        let mut min_member = u;
        for v in 0..n as u32 {
            let same_ref = reach[u as usize][v as usize] && reach[v as usize][u as usize];
            assert_eq!(
                scc.same_component(u, v),
                same_ref,
                "nodes {u} and {v}: online/offline disagree on edges {edges:?}"
            );
            if same_ref {
                min_member = min_member.min(v);
            }
        }
        assert_eq!(
            scc.repr(u),
            min_member,
            "node {u}: representative must be the smallest SCC member"
        );
    }
}

proptest! {
    /// After *every* insertion of a random edge stream, with queries
    /// interleaved (each `assert_partition_matches` call queries all
    /// pairs, flipping the dirty bit at arbitrary points of the stream),
    /// the online partition equals offline condensation of the prefix.
    #[test]
    fn online_matches_offline_after_every_insertion(
        n in 2usize..16,
        raw in proptest::collection::vec((0u32..1000, 0u32..1000), 1..40),
        query_every in 1usize..5,
    ) {
        let edges: Vec<(u32, u32)> = raw
            .iter()
            .map(|&(a, b)| (a % n as u32, b % n as u32))
            .collect();
        let mut scc = OnlineScc::with_nodes(n);
        for (i, &(u, v)) in edges.iter().enumerate() {
            scc.add_edge(u, v);
            if i % query_every == 0 {
                assert_partition_matches(&mut scc, n, &edges[..=i]);
            }
        }
        assert_partition_matches(&mut scc, n, &edges);
    }

    /// Insertion order must not matter: the final partition of a shuffled
    /// edge stream equals the partition of the sorted stream.
    #[test]
    fn partition_is_order_independent(
        n in 2usize..14,
        raw in proptest::collection::vec((0u32..1000, 0u32..1000), 1..30),
        rot in 0usize..29,
    ) {
        let edges: Vec<(u32, u32)> = raw
            .iter()
            .map(|&(a, b)| (a % n as u32, b % n as u32))
            .collect();
        let mut rotated = edges.clone();
        rotated.rotate_left(rot % edges.len());
        let mut a = OnlineScc::with_nodes(n);
        let mut b = OnlineScc::with_nodes(n);
        for &(u, v) in &edges {
            a.add_edge(u, v);
        }
        for &(u, v) in &rotated {
            b.add_edge(u, v);
        }
        for u in 0..n as u32 {
            prop_assert_eq!(a.repr(u), b.repr(u));
        }
    }

    /// Dense graphs collapse completely: once every ordered pair is an
    /// edge, all nodes share one SCC with representative 0.
    #[test]
    fn complete_digraph_collapses_to_one(n in 2usize..10) {
        let mut scc = OnlineScc::with_nodes(n);
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                scc.add_edge(u, v);
            }
        }
        for u in 0..n as u32 {
            prop_assert_eq!(scc.repr(u), 0);
        }
    }
}
