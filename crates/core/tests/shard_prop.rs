//! Property tests for the sharded parallel engine's delta plumbing and
//! the sharded plugin obligation tables.
//!
//! The parallel engine departs from the sequential worklist in three ways
//! that must be semantics-preserving:
//!
//! * cross-shard deltas are *routed*: each worker partitions its outgoing
//!   `(target, payload)` messages by the target's owning shard, and each
//!   shard merges the packets it receives in source-shard order — the
//!   final pending accumulators must not depend on the partitioning;
//! * deltas are *batched more aggressively*: payloads from many sources
//!   coalesce in a pending accumulator before one `union_delta` commits
//!   them, where the sequential engine may commit them one at a time —
//!   the committed set and the union of observed deltas must agree;
//! * plugin obligation state is *partitioned*: the Cut-Shortcut watch /
//!   obligation / host maps live in a [`ShardedTable`] so worker-side
//!   discovery reads stay shard-local — every observable of the
//!   partitioned table must coincide with a flat reference map under
//!   arbitrary interleavings of registrations and lookups, for every
//!   shard count.

use csc_core::{PointsToSet, ShardedTable};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// Messages: `(target, payload)` pairs; targets dense in `0..TARGETS`.
const TARGETS: u32 = 12;

fn set_of(elems: &[u32]) -> PointsToSet {
    elems.iter().copied().collect()
}

/// The commit plane's worker-side interner, modeled: worker `w` of `n`
/// resolves each key against a round-frozen base table first, then its own
/// fresh interns, and allocates misses from its pre-reserved id stride —
/// the `k`-th fresh id is `(owned + k) * n + w`, where `owned` is the
/// number of dense base ids the worker's shard already holds. Returns the
/// per-request resolved ids and the allocation-ordered fresh log, exactly
/// the two artifacts the real worker hands the coordinator.
fn stride_intern(
    n: usize,
    w: usize,
    base: &BTreeMap<u8, u32>,
    base_len: u32,
    keys: &[u8],
) -> (Vec<u32>, Vec<(u8, u32)>) {
    let owned = ((base_len as usize).saturating_sub(w)).div_ceil(n);
    let mut fresh: BTreeMap<u8, u32> = BTreeMap::new();
    let mut log: Vec<(u8, u32)> = Vec::new();
    let mut resolved = Vec::with_capacity(keys.len());
    for &k in keys {
        let id = if let Some(&id) = base.get(&k) {
            id
        } else if let Some(&id) = fresh.get(&k) {
            id
        } else {
            let id = u32::try_from((owned + log.len()) * n + w).unwrap();
            fresh.insert(k, id);
            log.push((k, id));
            id
        };
        resolved.push(id);
    }
    (resolved, log)
}

/// A frozen base table: distinct keys at dense ids `0..len`.
fn base_table(keys: &[u8]) -> (BTreeMap<u8, u32>, u32) {
    let mut base: BTreeMap<u8, u32> = BTreeMap::new();
    for &k in keys {
        let next = u32::try_from(base.len()).unwrap();
        base.entry(k).or_insert(next);
    }
    let len = u32::try_from(base.len()).unwrap();
    (base, len)
}

proptest! {
    /// Routing invariance: merging messages per shard (shard = target %
    /// nshards, packets visited in source order) yields exactly the same
    /// per-target pending accumulator as folding the flat message list,
    /// and the same newly-queued target set, for every shard count.
    #[test]
    fn sharded_merge_equals_flat_union(
        msgs in proptest::collection::vec(
            (0u32..TARGETS, proptest::collection::vec(0u32..200, 0..12)),
            0..40,
        ),
        nshards in 1usize..5,
        nsources in 1usize..5,
    ) {
        // Reference: fold the flat list in order.
        let mut flat: Vec<PointsToSet> = (0..TARGETS).map(|_| PointsToSet::new()).collect();
        for (t, payload) in &msgs {
            flat[*t as usize].union_with(&set_of(payload));
        }

        // Engine shape: source workers emit their slice of the messages
        // round-robin, each destination shard receives one packet per
        // source and merges in source order.
        let mut sharded: Vec<PointsToSet> = (0..TARGETS).map(|_| PointsToSet::new()).collect();
        let mut newly: Vec<u32> = Vec::new();
        for shard in 0..nshards {
            // Collect this shard's packets: one per source, in source order.
            for source in 0..nsources {
                for (i, (t, payload)) in msgs.iter().enumerate() {
                    if i % nsources != source || (*t as usize) % nshards != shard {
                        continue;
                    }
                    let payload = set_of(payload);
                    if payload.is_empty() {
                        continue;
                    }
                    let slot = &mut sharded[*t as usize];
                    let was_empty = slot.is_empty();
                    slot.union_with(&payload);
                    if was_empty {
                        newly.push(*t);
                    }
                }
            }
        }

        for t in 0..TARGETS as usize {
            prop_assert_eq!(
                &sharded[t], &flat[t],
                "pending[{}] differs between sharded and flat merge", t
            );
        }
        // Newly-queued = exactly the targets with a non-empty accumulator,
        // each queued once.
        let mut expect: Vec<u32> = (0..TARGETS).filter(|&t| !flat[t as usize].is_empty()).collect();
        let mut got = newly.clone();
        expect.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// Batching invariance: committing a coalesced pending accumulator
    /// with one `union_delta` produces the same final set, and the same
    /// union of new elements, as committing the payloads one at a time —
    /// i.e. a parallel round's coarse batches observe exactly the growth
    /// the sequential engine's finer steps observe.
    #[test]
    fn batched_delta_equals_stepwise_deltas(
        initial in proptest::collection::vec(0u32..300, 0..40),
        payloads in proptest::collection::vec(
            proptest::collection::vec(0u32..300, 0..20),
            0..8,
        ),
    ) {
        // Stepwise: one union_delta per payload, deltas unioned.
        let mut step_pts = set_of(&initial);
        let mut step_deltas = PointsToSet::new();
        for p in &payloads {
            if let Some(d) = step_pts.union_delta(&set_of(p)) {
                step_deltas.union_with(&d);
            }
        }

        // Batched: coalesce in a pending accumulator, commit once.
        let mut batch_pts = set_of(&initial);
        let mut pending = PointsToSet::new();
        for p in &payloads {
            pending.union_with(&set_of(p));
        }
        let batch_delta = batch_pts.union_delta(&pending).unwrap_or_default();

        prop_assert_eq!(&batch_pts, &step_pts);
        prop_assert_eq!(&batch_delta, &step_deltas);
    }

    /// Obligation-table equivalence: applying an arbitrary interleaving of
    /// obligation registrations (append under a key — exactly the shape of
    /// the Cut-Shortcut store/load obligation and watch events) to a
    /// [`ShardedTable`] at any shard count yields a table observably
    /// identical to the sequential (flat) reference: same per-key lookups,
    /// same size, and a deterministic merged view that never leaks hash
    /// order. Registrations and lookups interleave arbitrarily so a
    /// lookup-dependent registration path cannot behave differently
    /// against the partitioned table mid-stream.
    #[test]
    fn sharded_obligation_table_equals_sequential(
        ops in proptest::collection::vec((0u32..40, 0u16..500, any::<bool>()), 0..60),
        nshards in 1usize..6,
    ) {
        let mut sharded: ShardedTable<u32, Vec<u16>> = ShardedTable::new(nshards);
        let mut flat: BTreeMap<u32, Vec<u16>> = BTreeMap::new();

        for (key, val, is_lookup) in ops {
            if is_lookup {
                // Mid-stream lookups must already agree.
                prop_assert_eq!(sharded.get(&key), flat.get(&key));
            } else {
                // The event-handler idiom: append unless already present
                // (the duplicate check *reads through* the table, so a
                // routing bug would corrupt subsequent registrations).
                let entry = sharded.or_default(key);
                if !entry.contains(&val) {
                    entry.push(val);
                }
                let entry = flat.entry(key).or_default();
                if !entry.contains(&val) {
                    entry.push(val);
                }
            }
        }

        prop_assert_eq!(sharded.len(), flat.len());
        prop_assert_eq!(sharded.is_empty(), flat.is_empty());
        for (k, v) in &flat {
            prop_assert_eq!(sharded.get(k), Some(v), "lookup mismatch at key {}", k);
        }
        // The deterministic source-order merge: shard-major, key-sorted
        // within each shard — and in total exactly the reference entries.
        let merged = sharded.merged();
        prop_assert_eq!(merged.len(), flat.len());
        let mut expect: Vec<(&u32, &Vec<u16>)> = flat.iter().collect();
        expect.sort_by_key(|(k, _)| (**k as usize % nshards, **k));
        prop_assert_eq!(merged, expect);
    }

    /// Re-partitioning invariance: folding a table built at any shard
    /// count back to one shard (`set_shards(1)`) — the "merge the
    /// per-shard tables" direction the solver relies on when a plugin
    /// built for `n` workers is reused sequentially — loses nothing and
    /// reorders nothing observably.
    #[test]
    fn reshard_preserves_obligations(
        entries in proptest::collection::vec((0u32..60, 0u16..500), 0..50),
        from in 1usize..6,
        to in 1usize..6,
    ) {
        let mut table: ShardedTable<u32, Vec<u16>> = ShardedTable::new(from);
        let mut flat: BTreeMap<u32, Vec<u16>> = BTreeMap::new();
        for (k, v) in entries {
            table.or_default(k).push(v);
            flat.entry(k).or_default().push(v);
        }
        table.set_shards(to);
        prop_assert_eq!(table.shards(), to);
        prop_assert_eq!(table.len(), flat.len());
        for (k, v) in &flat {
            prop_assert_eq!(table.get(k), Some(v));
        }
        // At one shard the merged view is exactly the key-sorted flat map.
        table.set_shards(1);
        let merged: Vec<(u32, Vec<u16>)> =
            table.merged().into_iter().map(|(k, v)| (*k, v.clone())).collect();
        let expect: Vec<(u32, Vec<u16>)> =
            flat.iter().map(|(k, v)| (*k, v.clone())).collect();
        prop_assert_eq!(merged, expect);
    }

    /// Pre-reserved id ranges never collide: for arbitrary (and arbitrarily
    /// unbalanced) per-worker intern loads over a shared frozen base table,
    /// every stride-allocated id is self-owned (`id % n == worker`), lands
    /// strictly past the dense base id space, and is globally unique — no
    /// atomic, lock, or cross-worker coordination required.
    #[test]
    fn stride_id_ranges_never_collide(
        requests in proptest::collection::vec(
            proptest::collection::vec(0u8..24, 0..16),
            1..6,
        ),
        base_keys in proptest::collection::vec(0u8..24, 0..10),
    ) {
        let n = requests.len();
        let (base, base_len) = base_table(&base_keys);
        let mut all_ids: Vec<u32> = Vec::new();
        for (w, keys) in requests.iter().enumerate() {
            let (_, log) = stride_intern(n, w, &base, base_len, keys);
            for &(_, id) in &log {
                prop_assert_eq!(id as usize % n, w, "fresh id {} not owned by worker {}", id, w);
                prop_assert!(id >= base_len, "fresh id {} collides with the base id space", id);
            }
            all_ids.extend(log.iter().map(|&(_, id)| id));
        }
        let distinct: BTreeSet<u32> = all_ids.iter().copied().collect();
        prop_assert_eq!(distinct.len(), all_ids.len(), "stride ids collided across workers");
    }

    /// Parallel intern ≡ sequential intern up to canonical renaming: after
    /// the coordinator's reconciliation (shard-major first occurrence wins,
    /// later duplicates alias onto it), the parallel id assignment is
    /// related to the sequential interner's by a *bijection* — same fresh
    /// key set, and every request resolves to renaming-equivalent ids.
    /// This is the commit plane's determinism contract at the interning
    /// layer: internal ids may differ from the sequential engine's, but
    /// only up to a consistent renaming, so canonically-keyed projections
    /// come out bit-identical.
    #[test]
    fn stride_interning_matches_sequential_up_to_renaming(
        requests in proptest::collection::vec(
            proptest::collection::vec(0u8..24, 0..16),
            1..6,
        ),
        base_keys in proptest::collection::vec(0u8..24, 0..10),
    ) {
        let n = requests.len();
        let (base, base_len) = base_table(&base_keys);

        // Parallel: every worker interns independently against the frozen
        // base; then reconcile the logs in shard-major allocation order.
        let mut logs: Vec<Vec<(u8, u32)>> = Vec::with_capacity(n);
        let mut resolved_par: Vec<Vec<u32>> = Vec::with_capacity(n);
        for (w, keys) in requests.iter().enumerate() {
            let (resolved, log) = stride_intern(n, w, &base, base_len, keys);
            resolved_par.push(resolved);
            logs.push(log);
        }
        let mut canon: BTreeMap<u8, u32> = BTreeMap::new();
        let mut alias: BTreeMap<u32, u32> = BTreeMap::new();
        for log in &logs {
            for &(k, id) in log {
                match canon.get(&k) {
                    Some(&c) => {
                        alias.insert(id, c);
                    }
                    None => {
                        canon.insert(k, id);
                    }
                }
            }
        }
        // Alias targets are themselves canonical, never chained.
        for c in alias.values() {
            prop_assert!(!alias.contains_key(c), "alias chains must not form");
        }

        // Sequential reference: the same requests in shard-major order
        // against one dense table.
        let mut seq_table = base.clone();
        let mut resolved_seq: Vec<Vec<u32>> = Vec::with_capacity(n);
        for keys in &requests {
            let mut resolved = Vec::with_capacity(keys.len());
            for &k in keys {
                let next = u32::try_from(seq_table.len()).unwrap();
                resolved.push(*seq_table.entry(k).or_insert(next));
            }
            resolved_seq.push(resolved);
        }

        // Same fresh key set, one canonical id each.
        let par_fresh: BTreeSet<u8> = canon.keys().copied().collect();
        let seq_fresh: BTreeSet<u8> =
            seq_table.keys().filter(|k| !base.contains_key(k)).copied().collect();
        prop_assert_eq!(&par_fresh, &seq_fresh, "fresh key sets differ");

        // Request-level equivalence up to renaming: sequential id ↔
        // canonicalized parallel id must be a consistent bijection that
        // fixes the shared base ids.
        let mut rename: BTreeMap<u32, u32> = BTreeMap::new();
        for (ps, ss) in resolved_par.iter().zip(&resolved_seq) {
            prop_assert_eq!(ps.len(), ss.len());
            for (&p, &s) in ps.iter().zip(ss) {
                let p = alias.get(&p).copied().unwrap_or(p);
                if s < base_len {
                    prop_assert_eq!(p, s, "base ids must resolve identically");
                }
                match rename.get(&s) {
                    Some(&prev) => prop_assert_eq!(prev, p, "renaming must be a function"),
                    None => {
                        rename.insert(s, p);
                    }
                }
            }
        }
        let images: BTreeSet<u32> = rename.values().copied().collect();
        prop_assert_eq!(images.len(), rename.len(), "renaming must be injective");
    }
}
