//! Property tests for the sharded parallel engine's delta plumbing.
//!
//! The parallel engine departs from the sequential worklist in two ways
//! that must be semantics-preserving:
//!
//! * cross-shard deltas are *routed*: each worker partitions its outgoing
//!   `(target, payload)` messages by the target's owning shard, and each
//!   shard merges the packets it receives in source-shard order — the
//!   final pending accumulators must not depend on the partitioning;
//! * deltas are *batched more aggressively*: payloads from many sources
//!   coalesce in a pending accumulator before one `union_delta` commits
//!   them, where the sequential engine may commit them one at a time —
//!   the committed set and the union of observed deltas must agree.

use csc_core::PointsToSet;
use proptest::prelude::*;

/// Messages: `(target, payload)` pairs; targets dense in `0..TARGETS`.
const TARGETS: u32 = 12;

fn set_of(elems: &[u32]) -> PointsToSet {
    elems.iter().copied().collect()
}

proptest! {
    /// Routing invariance: merging messages per shard (shard = target %
    /// nshards, packets visited in source order) yields exactly the same
    /// per-target pending accumulator as folding the flat message list,
    /// and the same newly-queued target set, for every shard count.
    #[test]
    fn sharded_merge_equals_flat_union(
        msgs in proptest::collection::vec(
            (0u32..TARGETS, proptest::collection::vec(0u32..200, 0..12)),
            0..40,
        ),
        nshards in 1usize..5,
        nsources in 1usize..5,
    ) {
        // Reference: fold the flat list in order.
        let mut flat: Vec<PointsToSet> = (0..TARGETS).map(|_| PointsToSet::new()).collect();
        for (t, payload) in &msgs {
            flat[*t as usize].union_with(&set_of(payload));
        }

        // Engine shape: source workers emit their slice of the messages
        // round-robin, each destination shard receives one packet per
        // source and merges in source order.
        let mut sharded: Vec<PointsToSet> = (0..TARGETS).map(|_| PointsToSet::new()).collect();
        let mut newly: Vec<u32> = Vec::new();
        for shard in 0..nshards {
            // Collect this shard's packets: one per source, in source order.
            for source in 0..nsources {
                for (i, (t, payload)) in msgs.iter().enumerate() {
                    if i % nsources != source || (*t as usize) % nshards != shard {
                        continue;
                    }
                    let payload = set_of(payload);
                    if payload.is_empty() {
                        continue;
                    }
                    let slot = &mut sharded[*t as usize];
                    let was_empty = slot.is_empty();
                    slot.union_with(&payload);
                    if was_empty {
                        newly.push(*t);
                    }
                }
            }
        }

        for t in 0..TARGETS as usize {
            prop_assert_eq!(
                &sharded[t], &flat[t],
                "pending[{}] differs between sharded and flat merge", t
            );
        }
        // Newly-queued = exactly the targets with a non-empty accumulator,
        // each queued once.
        let mut expect: Vec<u32> = (0..TARGETS).filter(|&t| !flat[t as usize].is_empty()).collect();
        let mut got = newly.clone();
        expect.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// Batching invariance: committing a coalesced pending accumulator
    /// with one `union_delta` produces the same final set, and the same
    /// union of new elements, as committing the payloads one at a time —
    /// i.e. a parallel round's coarse batches observe exactly the growth
    /// the sequential engine's finer steps observe.
    #[test]
    fn batched_delta_equals_stepwise_deltas(
        initial in proptest::collection::vec(0u32..300, 0..40),
        payloads in proptest::collection::vec(
            proptest::collection::vec(0u32..300, 0..20),
            0..8,
        ),
    ) {
        // Stepwise: one union_delta per payload, deltas unioned.
        let mut step_pts = set_of(&initial);
        let mut step_deltas = PointsToSet::new();
        for p in &payloads {
            if let Some(d) = step_pts.union_delta(&set_of(p)) {
                step_deltas.union_with(&d);
            }
        }

        // Batched: coalesce in a pending accumulator, commit once.
        let mut batch_pts = set_of(&initial);
        let mut pending = PointsToSet::new();
        for p in &payloads {
            pending.union_with(&set_of(p));
        }
        let batch_delta = batch_pts.union_delta(&pending).unwrap_or_default();

        prop_assert_eq!(&batch_pts, &step_pts);
        prop_assert_eq!(&batch_delta, &step_deltas);
    }
}
