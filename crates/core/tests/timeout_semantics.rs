//! Regression pin for budget-exhaustion semantics across engines.
//!
//! A timed-out solve must look the same no matter which engine hit the
//! budget: `status == Timeout`, no typed error (timeouts are not
//! failures), state not poisoned — and a later incremental re-solve on
//! top of it must decline with [`FallbackReason::BaseIncomplete`] and
//! full-solve instead, because an interrupted fixpoint cannot be
//! extended.

use std::time::Duration;

use csc_core::{
    resolve_analysis_opts, run_analysis_opts, Analysis, Budget, Engine, FallbackReason,
    SolveStatus, SolverOptions,
};

fn opts(threads: usize, engine: Engine) -> SolverOptions {
    SolverOptions::default()
        .with_threads(threads)
        .with_engine(engine)
}

/// Every engine reports budget exhaustion with identical outcome fields.
#[test]
fn timeout_outcome_is_engine_invariant() {
    let program = csc_workloads::compiled("hsqldb").expect("hsqldb compiles");
    let budget = || Budget::with_time(Duration::ZERO);
    for (threads, engine) in [(1, Engine::Bsp), (4, Engine::Bsp), (4, Engine::Async)] {
        let out = run_analysis_opts(program, Analysis::Ci, budget(), opts(threads, engine));
        let leg = format!("{engine:?}/{threads}");
        assert!(!out.completed(), "{leg}: zero budget cannot complete");
        assert_eq!(
            out.result.status,
            SolveStatus::Timeout,
            "{leg}: exhaustion must report Timeout, not a failure status"
        );
        assert!(
            out.result.error.is_none(),
            "{leg}: a timeout is not a typed failure"
        );
        assert!(
            !out.result.state.is_poisoned(),
            "{leg}: a budget abort leaves clean (if partial) state"
        );
    }
}

/// Rebasing a delta onto a budget-aborted solve falls back to a full
/// solve with `BaseIncomplete` — and the full solve then completes.
#[test]
fn rebase_on_timed_out_base_falls_back() {
    let program = csc_workloads::compiled("hsqldb").expect("hsqldb compiles");
    let prev = run_analysis_opts(
        program,
        Analysis::Ci,
        Budget::with_time(Duration::ZERO),
        opts(1, Engine::Bsp),
    );
    assert!(!prev.completed());
    let delta = csc_workloads::generate_delta(
        program,
        &csc_workloads::DeltaGenConfig {
            seed: 11,
            actions: 6,
            removals: false,
        },
    );
    let (patched, fx) = delta.apply(program).expect("delta applies");
    let out = resolve_analysis_opts(
        prev,
        &patched,
        &fx,
        Analysis::Ci,
        Budget::unlimited(),
        opts(1, Engine::Bsp),
    );
    assert!(out.completed(), "fallback full solve must complete");
    assert_eq!(
        out.result.state.stats.incr_fallback_reason,
        Some(FallbackReason::BaseIncomplete),
        "an incomplete base must decline the incremental path"
    );
    assert_eq!(
        out.result.state.stats.incr_fallbacks, 1,
        "the declined attempt must be counted as a fallback"
    );
}
