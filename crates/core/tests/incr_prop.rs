//! Property tests for the incremental re-solver's *fallback contract*:
//! across interleaved add/remove delta sequences, the incremental resolve
//! must (a) stay projection-identical to a from-scratch solve of the
//! patched program and (b) fall back **exactly when the documented
//! preconditions fail** — no spurious fallbacks, no silently-wrong
//! incremental paths.
//!
//! The fallback gates of [`csc_core::Solver::resolve`] are checked in
//! order, and each has a pure oracle computable from the outside:
//!
//! 1. `BaseIncomplete` — the previous solve's status (deterministic test
//!    below, driven by a propagation budget);
//! 2. `DispatchChanged` — `Program::dispatch_stable_under`;
//! 3. `CscObligations` — [`csc_core::rebase_compatible`] (the exported
//!    pure twin of `CutShortcut`'s `Plugin::rebase`);
//! 4. `SccStructure` — only reachable on removal deltas when SCC
//!    collapsing is enabled; with [`SolverOptions::no_collapse`] it must
//!    never fire, making the predicted reason *exact* for the plain and
//!    CSC pipelines.
//!
//! The generated edits come from the seeded workload delta generator, so
//! the sequences here are the same distribution the differential harness
//! and the CLI `resolve --gen-deltas` path replay.

use std::collections::BTreeSet;
use std::sync::OnceLock;

use csc_core::{
    rebase_compatible, resolve_analysis_opts, run_analysis_opts, Analysis, Budget, CscConfig,
    FallbackReason, PrecisionMetrics, PtaResult, SolverOptions,
};
use csc_ir::{CallSiteId, DeltaEffects, DeltaOp, MethodId, ObjId, Program, ProgramDelta, VarId};
use csc_workloads::{generate_delta, DeltaGenConfig};
use proptest::prelude::*;

/// A small program with the surface the delta generator exercises:
/// a dispatch hierarchy (with an inherited-but-not-overridden method so a
/// hand-made override delta can rebind it), fields, loads, stores, casts,
/// and both static and virtual calls.
fn base_program() -> &'static Program {
    static BASE: OnceLock<Program> = OnceLock::new();
    BASE.get_or_init(|| {
        csc_frontend::compile(
            r#"
            class Animal {
                Animal friend;
                Animal speak(Animal a) {
                    this.friend = a;
                    Animal r;
                    r = this.friend;
                    return r;
                }
            }
            class Dog extends Animal {
                Animal speak(Animal a) {
                    Animal r;
                    r = a;
                    return r;
                }
            }
            class Cat extends Animal { }
            class Main {
                static void main() {
                    Animal x = new Animal();
                    Dog d = new Dog();
                    Cat c = new Cat();
                    Animal y = x.speak(d);
                    Animal z = d.speak(c);
                    Animal w = y.speak(z);
                    w = c.speak(x);
                }
            }
            "#,
        )
        .expect("base program compiles")
    })
}

/// Builds the owned program chain for one sampled edit sequence: the base
/// plus one patched program per generated delta, with the effects between
/// them. Owning the chain up front keeps every later borrow trivial.
fn chain(base: &Program, steps: &[(u64, bool)]) -> (Vec<Program>, Vec<DeltaEffects>) {
    let mut programs = vec![base.clone()];
    let mut fxs = Vec::new();
    for &(seed, removals) in steps {
        let current = programs.last().unwrap();
        let cfg = DeltaGenConfig {
            seed,
            actions: 5,
            removals,
        };
        let delta = generate_delta(current, &cfg);
        let (patched, fx) = delta.apply(current).expect("generated delta applies");
        programs.push(patched);
        fxs.push(fx);
    }
    (programs, fxs)
}

/// The pure oracle for the fallback reason, mirroring the gate order of
/// `Solver::resolve` (`SccStructure` excluded — it is unreachable with
/// collapsing disabled and bounded separately with it enabled).
fn predicted_reason(
    base: &Program,
    patched: &Program,
    fx: &DeltaEffects,
    csc_plugin: bool,
) -> Option<FallbackReason> {
    if !base.dispatch_stable_under(patched) {
        return Some(FallbackReason::DispatchChanged);
    }
    if csc_plugin && !rebase_compatible(base, patched, fx, &CscConfig::all()) {
        return Some(FallbackReason::CscObligations);
    }
    None
}

/// Projection capture (same surface as `tests/differential_incremental.rs`).
struct Projections {
    pts: Vec<(VarId, Vec<ObjId>)>,
    reachable: BTreeSet<MethodId>,
    call_edges: BTreeSet<(CallSiteId, MethodId)>,
    metrics: PrecisionMetrics,
}

impl Projections {
    fn capture(program: &Program, result: &PtaResult<'_>) -> Self {
        Projections {
            pts: (0..program.vars().len())
                .map(|i| {
                    let v = VarId::from_usize(i);
                    (v, result.state.pt_var_projected(v))
                })
                .collect(),
            reachable: result.state.reachable_methods_projected(),
            call_edges: result.state.call_edges_projected(),
            metrics: PrecisionMetrics::compute(result),
        }
    }

    fn assert_identical(&self, other: &Projections, what: &str) {
        assert_eq!(self.reachable, other.reachable, "{what}: reachable differ");
        assert_eq!(
            self.call_edges, other.call_edges,
            "{what}: call edges differ"
        );
        for ((v, a), (_, b)) in self.pts.iter().zip(other.pts.iter()) {
            assert_eq!(a, b, "{what}: pt({v:?}) differs");
        }
        assert_eq!(self.metrics, other.metrics, "{what}: metrics differ");
    }
}

/// Drives one sampled chain under one analysis/options cell, asserting at
/// every step: result equivalence, exact (or bounded) fallback reason, and
/// correct counter bookkeeping.
fn check_chain(
    programs: &[Program],
    fxs: &[DeltaEffects],
    analysis: Analysis,
    opts: SolverOptions,
    csc_plugin: bool,
    what: &str,
) {
    let mut outcome = run_analysis_opts(&programs[0], analysis.clone(), Budget::unlimited(), opts);
    assert!(outcome.completed(), "{what}: base run hit budget");
    for (i, fx) in fxs.iter().enumerate() {
        let base = &programs[i];
        let patched = &programs[i + 1];
        let prior = outcome.result.state.stats;
        let predicted = predicted_reason(base, patched, fx, csc_plugin);
        let next = resolve_analysis_opts(
            outcome,
            patched,
            fx,
            analysis.clone(),
            Budget::unlimited(),
            opts,
        );
        assert!(next.completed(), "{what} step {i}: resolve hit budget");
        let stats = next.result.state.stats;
        let reason = stats.incr_fallback_reason;
        if opts.collapse_sccs {
            // With collapsing, removal cones may additionally abort on a
            // collapsed pointer — but only then, and only for removals.
            if reason != predicted {
                assert_eq!(
                    reason,
                    Some(FallbackReason::SccStructure),
                    "{what} step {i}: reason {reason:?}, predicted {predicted:?}"
                );
                assert!(
                    predicted.is_none() && !fx.additions_only(),
                    "{what} step {i}: SccStructure on an additions-only or pre-gated delta"
                );
            }
        } else {
            assert_eq!(
                reason, predicted,
                "{what} step {i}: fallback reason disagrees with the oracle"
            );
        }
        assert_eq!(
            stats.incr_resolves,
            prior.incr_resolves + 1,
            "{what} step {i}: incr_resolves must count every resolve"
        );
        assert_eq!(
            stats.incr_fallbacks,
            prior.incr_fallbacks + u64::from(reason.is_some()),
            "{what} step {i}: incr_fallbacks must count exactly the fallbacks"
        );
        assert!(
            stats.resolve_secs >= 0.0,
            "{what} step {i}: resolve_secs unstamped"
        );
        let scratch = run_analysis_opts(patched, analysis.clone(), Budget::unlimited(), opts);
        Projections::capture(patched, &next.result).assert_identical(
            &Projections::capture(patched, &scratch.result),
            &format!("{what} step {i} (reason={reason:?})"),
        );
        outcome = next;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Plain (NoPlugin) pipeline, collapsing disabled: the predicted
    /// reason is exact — `DispatchChanged` or nothing; in particular
    /// removals must never surface `SccStructure`.
    #[test]
    fn ci_no_collapse_fallbacks_match_oracle(
        steps in proptest::collection::vec((0u64..1 << 16, any::<bool>()), 1..4),
    ) {
        let (programs, fxs) = chain(base_program(), &steps);
        check_chain(
            &programs,
            &fxs,
            Analysis::Ci,
            SolverOptions::no_collapse(),
            false,
            &format!("ci/no-collapse {steps:?}"),
        );
    }

    /// Cut-Shortcut pipeline, collapsing disabled: the reason is exactly
    /// what `dispatch_stable_under` + `rebase_compatible` predict.
    #[test]
    fn csc_no_collapse_fallbacks_match_oracle(
        steps in proptest::collection::vec((0u64..1 << 16, any::<bool>()), 1..4),
    ) {
        let (programs, fxs) = chain(base_program(), &steps);
        check_chain(
            &programs,
            &fxs,
            Analysis::CutShortcut,
            SolverOptions::no_collapse(),
            true,
            &format!("csc/no-collapse {steps:?}"),
        );
    }

    /// Default options (collapsing on): results stay bit-identical and the
    /// only extra fallback collapsing may introduce is `SccStructure`, and
    /// only on removal deltas.
    #[test]
    fn default_options_equivalence_with_bounded_reasons(
        steps in proptest::collection::vec((0u64..1 << 16, any::<bool>()), 1..3),
    ) {
        let (programs, fxs) = chain(base_program(), &steps);
        check_chain(
            &programs,
            &fxs,
            Analysis::Ci,
            SolverOptions::default(),
            false,
            &format!("ci/default {steps:?}"),
        );
        check_chain(
            &programs,
            &fxs,
            Analysis::CutShortcut,
            SolverOptions::default(),
            true,
            &format!("csc/default {steps:?}"),
        );
    }
}

/// Gate 1, deterministically: resolving on top of a budget-truncated base
/// must fall back with `BaseIncomplete` — and the fallback's full solve
/// (under the new, unlimited budget) must still match from-scratch.
#[test]
fn incomplete_base_reports_base_incomplete() {
    let base = base_program();
    let tight = Budget {
        time: None,
        max_propagations: Some(1),
    };
    let outcome = run_analysis_opts(base, Analysis::Ci, tight, SolverOptions::default());
    assert!(
        !outcome.completed(),
        "a 1-propagation budget must truncate the base solve"
    );
    let delta = generate_delta(
        base,
        &DeltaGenConfig {
            seed: 7,
            actions: 3,
            removals: false,
        },
    );
    let (patched, fx) = delta.apply(base).expect("delta applies");
    let next = resolve_analysis_opts(
        outcome,
        &patched,
        &fx,
        Analysis::Ci,
        Budget::unlimited(),
        SolverOptions::default(),
    );
    assert!(next.completed());
    assert_eq!(
        next.result.state.stats.incr_fallback_reason,
        Some(FallbackReason::BaseIncomplete)
    );
    let scratch = run_analysis_opts(
        &patched,
        Analysis::Ci,
        Budget::unlimited(),
        SolverOptions::default(),
    );
    Projections::capture(&patched, &next.result).assert_identical(
        &Projections::capture(&patched, &scratch.result),
        "base-incomplete fallback",
    );
}

/// Gate 2, deterministically: an override delta that rebinds an existing
/// `(class, signature)` pair — `Cat` gaining its own `speak` — must trip
/// `dispatch_stable_under` and report `DispatchChanged`, even though the
/// delta is additions-only.
#[test]
fn override_delta_reports_dispatch_changed() {
    let base = base_program();
    let animal = base.class_by_name("Animal").expect("Animal exists");
    let cat = base.class_by_name("Cat").expect("Cat exists");
    let delta = ProgramDelta {
        ops: vec![DeltaOp::AddMethod {
            class: cat,
            name: "speak".to_owned(),
            params: vec![animal],
            ret: Some(animal),
            is_static: false,
        }],
    };
    let (patched, fx) = delta.apply(base).expect("override delta applies");
    assert!(fx.additions_only());
    assert!(
        !base.dispatch_stable_under(&patched),
        "rebinding (Cat, speak) must destabilize dispatch"
    );
    for (analysis, csc_plugin) in [(Analysis::Ci, false), (Analysis::CutShortcut, true)] {
        assert_eq!(
            predicted_reason(base, &patched, &fx, csc_plugin),
            Some(FallbackReason::DispatchChanged)
        );
        let outcome = run_analysis_opts(
            base,
            analysis.clone(),
            Budget::unlimited(),
            SolverOptions::default(),
        );
        assert!(outcome.completed());
        let next = resolve_analysis_opts(
            outcome,
            &patched,
            &fx,
            analysis.clone(),
            Budget::unlimited(),
            SolverOptions::default(),
        );
        assert!(next.completed());
        assert_eq!(
            next.result.state.stats.incr_fallback_reason,
            Some(FallbackReason::DispatchChanged)
        );
        let scratch = run_analysis_opts(
            &patched,
            analysis,
            Budget::unlimited(),
            SolverOptions::default(),
        );
        Projections::capture(&patched, &next.result).assert_identical(
            &Projections::capture(&patched, &scratch.result),
            "dispatch-changed fallback",
        );
    }
}
