//! Thread-scaling smoke for the parallel engines, on the opt-in `xl`
//! stress program (>10⁵ statements — the only suite member whose
//! wave-front rounds are large enough to leave the inline-round path).
//!
//! The assertions are deliberately weak enough to hold on few-core CI
//! runners: each 4-thread engine must finish within a small factor of
//! the sequential engine's wall-clock. On a single core that catches
//! regressions in the parallel *machinery* (pool dispatch, packet
//! materialization, round/pause overhead, steal contention) — the kind
//! of slow leak per-row wall-clock gates miss because parallel rows are
//! opt-in there; on real multi-core hardware any speedup at all passes
//! with huge margin.
//!
//! Ignored by default (compiling xl is slow unoptimized) and skipped
//! unless `CSC_XL=1`, mirroring the bench harness's xl opt-in.

use csc_core::{run_analysis_opts, Analysis, Budget, Engine, SolverOptions};

/// One timed solve of xl/ci at the given thread count and engine.
fn one_run(program: &csc_ir::Program, threads: usize, engine: Engine) -> f64 {
    let out = run_analysis_opts(
        program,
        Analysis::Ci,
        Budget::unlimited(),
        SolverOptions::default()
            .with_threads(threads)
            .with_engine(engine),
    );
    assert!(
        out.completed(),
        "{threads}-thread ({engine:?}) xl run must complete"
    );
    out.total_time.as_secs_f64()
}

/// Shared body: best-of-three, interleaved so slow host-level drift
/// (shared runners throttle over tens of seconds) biases both sides
/// equally instead of whichever ran last.
fn smoke(engine: Engine, tolerance: f64) {
    if !matches!(std::env::var("CSC_XL").as_deref(), Ok("1") | Ok("on")) {
        eprintln!("CSC_XL not set; skipping thread-scaling smoke");
        return;
    }
    let program = csc_workloads::compiled("xl").expect("xl compiles");
    let (mut seq, mut par) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..3 {
        seq = seq.min(one_run(program, 1, engine));
        par = par.min(one_run(program, 4, engine));
    }
    eprintln!(
        "xl/ci wall-clock ({engine:?}): sequential {seq:.3}s, 4-thread {par:.3}s ({:.2}x)",
        par / seq
    );
    assert!(
        par <= seq * tolerance,
        "4-thread ({engine:?}) xl run regressed past the sequential envelope: \
         {par:.3}s > {tolerance} x {seq:.3}s"
    );
}

#[test]
#[ignore = "compiles the >1e5-statement xl program; run in release mode with CSC_XL=1"]
fn xl_4_threads_within_sequential_envelope() {
    smoke(Engine::Bsp, 1.15);
}

/// The async work-stealing engine's smoke. Slightly wider tolerance than
/// the BSP leg: on a single core the park/steal polling is pure overhead
/// (there is never a second core to steal onto), so this bounds that
/// overhead rather than expecting a win.
#[test]
#[ignore = "compiles the >1e5-statement xl program; run in release mode with CSC_XL=1"]
fn xl_async_4_threads_within_sequential_envelope() {
    smoke(Engine::Async, 1.25);
}
