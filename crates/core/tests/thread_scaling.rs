//! Thread-scaling smoke for the parallel engine, on the opt-in `xl`
//! stress program (>10⁵ statements — the only suite member whose
//! wave-front rounds are large enough to leave the inline-round path).
//!
//! The assertion is deliberately weak enough to hold on few-core CI
//! runners: the 4-thread engine must finish within 1.15× of the
//! sequential engine's wall-clock. On a single core that catches
//! regressions in the parallel *machinery* (pool dispatch, packet
//! materialization, round overhead) — the kind of slow leak per-row
//! wall-clock gates miss because parallel rows are opt-in there; on real
//! multi-core hardware any speedup at all passes with huge margin.
//!
//! Ignored by default (compiling xl is slow unoptimized) and skipped
//! unless `CSC_XL=1`, mirroring the bench harness's xl opt-in.

use csc_core::{run_analysis_opts, Analysis, Budget, SolverOptions};

/// One timed solve of xl/ci at the given thread count.
fn one_run(program: &csc_ir::Program, threads: usize) -> f64 {
    let out = run_analysis_opts(
        program,
        Analysis::Ci,
        Budget::unlimited(),
        SolverOptions::default().with_threads(threads),
    );
    assert!(out.completed(), "{threads}-thread xl run must complete");
    out.total_time.as_secs_f64()
}

#[test]
#[ignore = "compiles the >1e5-statement xl program; run in release mode with CSC_XL=1"]
fn xl_4_threads_within_sequential_envelope() {
    if !matches!(std::env::var("CSC_XL").as_deref(), Ok("1") | Ok("on")) {
        eprintln!("CSC_XL not set; skipping thread-scaling smoke");
        return;
    }
    let program = csc_workloads::compiled("xl").expect("xl compiles");
    // Best-of-three with the two configurations *interleaved*, so slow
    // host-level drift (shared runners throttle over tens of seconds)
    // biases both sides equally instead of whichever ran last.
    let (mut seq, mut par) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..3 {
        seq = seq.min(one_run(program, 1));
        par = par.min(one_run(program, 4));
    }
    eprintln!(
        "xl/ci wall-clock: sequential {seq:.3}s, 4-thread {par:.3}s ({:.2}x)",
        par / seq
    );
    assert!(
        par <= seq * 1.15,
        "4-thread xl run regressed past the sequential envelope: \
         {par:.3}s > 1.15 x {seq:.3}s"
    );
}
