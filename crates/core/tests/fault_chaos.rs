//! Chaos matrix for the deterministic fault-injection layer.
//!
//! Every leg arms exactly one fault (`point`, `nth`, `mode`), runs a
//! solve (or the cache / delta-decode driver the point lives on), and
//! asserts the failure-plane contract:
//!
//! 1. the process survives — no injected fault escapes the typed plane;
//! 2. if the fault fired, the failure is *typed*: `err` mode surfaces as
//!    [`SolveError::Fault`] naming the point (or a clean cache miss /
//!    string error on the I/O points), `panic` mode as
//!    [`SolveError::Poisoned`] carrying the payload;
//! 3. a clean retry immediately afterwards completes and is
//!    bit-identical to an undisturbed baseline solve (full projected
//!    points-to sets, reachable set, and call graph).
//!
//! The fault registry is process-global, so each matrix lives in a
//! single `#[test]` body and the two bodies serialize on a shared lock
//! (`cargo test -- --include-ignored` would otherwise interleave them).
//! A leg whose point never executes under its engine config (e.g.
//! `outbox-send` at `threads = 1`) is still asserted: the solve must
//! complete and `fired()` must be false — pinning *where* each point is
//! (and is not) reachable.
//!
//! `chaos_smoke` is tier-1; `chaos_matrix` (every point x mode x engine
//! config) is `#[ignore]`d and run in release by the CI `chaos` leg.

use std::sync::Mutex;

use csc_core::fault::{self, FaultMode, FaultPoint};
use csc_core::{
    decode_delta_guarded, run_analysis_guarded, Analysis, Budget, Engine, SolveError,
    SolvedSummary, SolverOptions,
};
use csc_ir::Program;

/// Serializes the two test bodies: the fault registry is process-global.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

/// One engine configuration of the matrix.
#[derive(Copy, Clone, Debug)]
struct Config {
    engine: Engine,
    threads: usize,
}

impl Config {
    fn opts(self) -> SolverOptions {
        SolverOptions::default()
            .with_threads(self.threads)
            .with_engine(self.engine)
    }
}

/// Solve-path points, with the engine configs they are reachable under.
/// `worker-round` also guards the sequential drain loop; the other two
/// exist only inside the parallel engines (`quiescence` async-only).
fn reachable(point: FaultPoint, cfg: Config) -> bool {
    match point {
        FaultPoint::WorkerRound => true,
        FaultPoint::OutboxSend => cfg.threads > 1,
        FaultPoint::Quiescence => cfg.threads > 1 && matches!(cfg.engine, Engine::Async),
        _ => false,
    }
}

/// Checks that a typed error matches the armed (point, mode).
fn check_typed(err: &SolveError, point: FaultPoint, mode: FaultMode) {
    match (mode, err) {
        (FaultMode::Err, SolveError::Fault { point: p }) => {
            assert_eq!(*p, point, "err-mode fault must name its point");
        }
        (FaultMode::Panic, SolveError::Poisoned { payload, .. }) => {
            assert!(
                payload.contains("injected fault"),
                "panic-mode payload should carry the injected message, got: {payload}"
            );
        }
        (m, e) => panic!("fault {point:?} in mode {m:?} produced mismatched error {e}"),
    }
}

/// Runs one solve-path leg: arm, solve, classify, clean-retry, compare.
fn solve_leg(
    program: &Program,
    cfg: Config,
    point: FaultPoint,
    nth: u64,
    mode: FaultMode,
    baseline: &SolvedSummary,
) {
    fault::clear_all();
    fault::arm(point, nth, mode);
    let res = run_analysis_guarded(program, Analysis::Ci, Budget::unlimited(), cfg.opts());
    let fired = fault::fired(point);
    fault::clear_all();
    let leg = format!("{point:?}/{mode:?}/nth={nth}/{cfg:?}");
    assert_eq!(
        fired,
        reachable(point, cfg),
        "{leg}: fault firing disagrees with the point's documented reach"
    );
    match res {
        // A panic that crossed the coordinator thread (sequential drain
        // loop, quiescence teardown) surfaces from the outer guard.
        Err(e) => {
            assert!(fired, "{leg}: typed error without the fault firing: {e}");
            check_typed(&e, point, mode);
        }
        // A worker-side fault is absorbed by the pool: the solve returns
        // a poisoned (partial, never-continued) result carrying the cause.
        Ok(out) => {
            if fired {
                assert!(!out.completed(), "{leg}: fired fault cannot complete");
                let err = out
                    .solve_error()
                    .unwrap_or_else(|| panic!("{leg}: poisoned outcome must carry a typed error"));
                check_typed(err, point, mode);
            } else {
                assert!(out.completed(), "{leg}: unfired leg must complete");
            }
        }
    }
    // Clean retry: same program, same config, nothing armed. The solve
    // must complete and project bit-identically to the baseline — a
    // poisoned round leaks nothing into the next solve.
    let retry = run_analysis_guarded(program, Analysis::Ci, Budget::unlimited(), cfg.opts())
        .unwrap_or_else(|e| panic!("{leg}: clean retry errored: {e}"));
    assert!(retry.completed(), "{leg}: clean retry must complete");
    let sum = SolvedSummary::capture(program, &retry.result);
    assert_eq!(sum.pts, baseline.pts, "{leg}: retry points-to differs");
    assert_eq!(
        sum.reachable, baseline.reachable,
        "{leg}: retry reachable differs"
    );
    assert_eq!(
        sum.call_edges, baseline.call_edges,
        "{leg}: retry call graph differs"
    );
}

/// Cache-point legs: the solved-result cache must treat any injected
/// failure as a miss — reads return `None`, writes give up silently —
/// and a clean round-trip afterwards still works.
fn cache_leg(dir: &std::path::Path, summary: &SolvedSummary, mode: FaultMode) {
    for point in [FaultPoint::CacheRead, FaultPoint::CacheWrite] {
        fault::clear_all();
        fault::arm(point, 1, mode);
        if point == FaultPoint::CacheRead {
            assert!(
                csc_core::load_result(dir, 0xfau64).is_none(),
                "injected {mode:?} read fault must be a miss"
            );
        } else {
            // Must not panic; the write is allowed to be dropped.
            csc_core::store_result(dir, 0xfbu64, summary);
        }
        assert!(fault::fired(point), "{point:?}/{mode:?} must fire");
        fault::clear_all();
    }
    // Clean round-trip after the chaos.
    csc_core::store_result(dir, 0xfcu64, summary);
    let back = csc_core::load_result(dir, 0xfcu64).expect("clean cache round-trip");
    assert_eq!(back.pts, summary.pts);
    assert_eq!(back.call_edges, summary.call_edges);
}

/// Delta-decode legs: `err` becomes a string error, `panic` stays a
/// panic (callers route it through a guard); both leave the decoder
/// usable afterwards.
fn delta_leg(delta_bytes: &[u8], mode: FaultMode) {
    fault::clear_all();
    fault::arm(FaultPoint::DeltaDecode, 1, mode);
    match mode {
        FaultMode::Err => {
            let res = decode_delta_guarded(delta_bytes);
            assert!(res.is_err(), "err-mode decode fault must surface as Err");
        }
        _ => {
            let res = std::panic::catch_unwind(|| decode_delta_guarded(delta_bytes));
            assert!(res.is_err(), "panic-mode decode fault must panic");
        }
    }
    assert!(fault::fired(FaultPoint::DeltaDecode));
    fault::clear_all();
    decode_delta_guarded(delta_bytes).expect("clean decode after chaos");
}

/// Installs a silent panic hook for the duration of the matrix (injected
/// panics would otherwise spray backtraces over the test output), and
/// restores the previous hook afterwards. If a leg assertion fails, the
/// drop runs while the thread is already panicking — the hook must be
/// left alone then (`take_hook` from a panicking thread is itself a
/// panic, and a panic inside a drop during unwinding aborts).
struct QuietPanics;

impl QuietPanics {
    fn install() -> Self {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
                .unwrap_or("");
            // Injected panics and the peer-hangup cascade they set off in
            // the BSP round are the expected noise of this matrix.
            let injected = msg.contains("injected fault")
                || msg.contains("peer worker hung up")
                || payload.downcast_ref::<fault::InjectedFault>().is_some();
            if !injected {
                prev(info);
            }
        }));
        QuietPanics
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            let _ = std::panic::take_hook();
        }
    }
}

fn fixture() -> (&'static Program, Vec<u8>) {
    let program = csc_workloads::compiled("hsqldb").expect("hsqldb compiles");
    let delta = csc_workloads::generate_delta(
        program,
        &csc_workloads::DeltaGenConfig {
            seed: 7,
            actions: 8,
            removals: true,
        },
    );
    (program, delta.to_bytes())
}

fn baseline(program: &Program, cfg: Config) -> SolvedSummary {
    let out = run_analysis_guarded(program, Analysis::Ci, Budget::unlimited(), cfg.opts())
        .expect("baseline solve");
    assert!(out.completed(), "baseline must complete under {cfg:?}");
    SolvedSummary::capture(program, &out.result)
}

/// Tier-1 smoke: one leg per fault point, covering both modes and all
/// three engines at least once. Fast enough for every `cargo test`.
#[test]
fn chaos_smoke() {
    let _guard = CHAOS_LOCK.lock().unwrap();
    let _quiet = QuietPanics::install();
    let (program, delta_bytes) = fixture();
    let seq = Config {
        engine: Engine::Bsp,
        threads: 1,
    };
    let bsp = Config {
        engine: Engine::Bsp,
        threads: 4,
    };
    let async_cfg = Config {
        engine: Engine::Async,
        threads: 4,
    };
    let base_seq = baseline(program, seq);
    let base_bsp = baseline(program, bsp);
    let base_async = baseline(program, async_cfg);
    assert_eq!(
        base_seq.pts, base_bsp.pts,
        "engines must agree before chaos"
    );
    assert_eq!(
        base_seq.pts, base_async.pts,
        "engines must agree before chaos"
    );

    solve_leg(
        program,
        seq,
        FaultPoint::WorkerRound,
        1,
        FaultMode::Panic,
        &base_seq,
    );
    solve_leg(
        program,
        bsp,
        FaultPoint::WorkerRound,
        1,
        FaultMode::Err,
        &base_bsp,
    );
    solve_leg(
        program,
        async_cfg,
        FaultPoint::OutboxSend,
        1,
        FaultMode::Panic,
        &base_async,
    );
    solve_leg(
        program,
        async_cfg,
        FaultPoint::Quiescence,
        1,
        FaultMode::Err,
        &base_async,
    );

    let dir = csc_core::result_cache_dir().join("chaos-smoke");
    cache_leg(&dir, &base_seq, FaultMode::Err);
    delta_leg(&delta_bytes, FaultMode::Err);
    fault::clear_all();
}

/// The full matrix: every fault point x {panic, err} x engine configs
/// (both parallel engines at 1 and 4 threads), plus a deeper `nth` for
/// the hot worker-round point. Release-only via the CI `chaos` leg.
#[test]
#[ignore = "full chaos matrix is slow unoptimized; CI runs it in release"]
fn chaos_matrix() {
    let _guard = CHAOS_LOCK.lock().unwrap();
    let _quiet = QuietPanics::install();
    let (program, delta_bytes) = fixture();
    let configs = [
        Config {
            engine: Engine::Bsp,
            threads: 1,
        },
        Config {
            engine: Engine::Async,
            threads: 1,
        },
        Config {
            engine: Engine::Bsp,
            threads: 4,
        },
        Config {
            engine: Engine::Async,
            threads: 4,
        },
    ];
    let modes = [FaultMode::Panic, FaultMode::Err];
    for cfg in configs {
        let base = baseline(program, cfg);
        for mode in modes {
            for point in [
                FaultPoint::WorkerRound,
                FaultPoint::OutboxSend,
                FaultPoint::Quiescence,
            ] {
                solve_leg(program, cfg, point, 1, mode, &base);
            }
            // Deeper strike: let a few rounds of work land first, so the
            // unwound state is non-trivial when the fault hits.
            solve_leg(program, cfg, FaultPoint::WorkerRound, 4, mode, &base);
        }
    }
    let dir = csc_core::result_cache_dir().join("chaos-matrix");
    let base = baseline(program, configs[0]);
    for mode in modes {
        cache_leg(&dir, &base, mode);
        delta_leg(&delta_bytes, mode);
    }
    fault::clear_all();
}
