//! Property-based tests for the core data structures: points-to sets and
//! the context interner.

use csc_core::{CtxElem, CtxInterner, PointsToSet};
use csc_ir::ObjId;
use proptest::prelude::*;

proptest! {
    /// union_delta returns exactly the new elements and leaves the set
    /// equal to the mathematical union.
    #[test]
    fn union_delta_is_exact(a in proptest::collection::vec(0u32..500, 0..60),
                            b in proptest::collection::vec(0u32..500, 0..60)) {
        let mut s: PointsToSet = a.iter().copied().collect();
        let other: PointsToSet = b.iter().copied().collect();
        let before: std::collections::BTreeSet<u32> = s.iter().collect();
        let delta = s.union_delta(&other);
        let after: std::collections::BTreeSet<u32> = s.iter().collect();
        let expect: std::collections::BTreeSet<u32> =
            a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(&after, &expect);
        match delta {
            None => prop_assert!(other.iter().all(|e| before.contains(&e))),
            Some(d) => {
                let dset: std::collections::BTreeSet<u32> = d.iter().collect();
                let new: std::collections::BTreeSet<u32> =
                    b.iter().copied().filter(|e| !before.contains(e)).collect();
                prop_assert_eq!(dset, new);
            }
        }
    }

    /// Sets stay sorted and deduplicated under arbitrary insertions.
    #[test]
    fn insert_keeps_sorted_unique(elems in proptest::collection::vec(0u32..100, 0..200)) {
        let mut s = PointsToSet::new();
        for e in &elems {
            s.insert(*e);
        }
        let v: Vec<u32> = s.iter().collect();
        let mut sorted = v.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(v, sorted);
        for e in elems {
            prop_assert!(s.contains(e));
        }
    }

    /// intersects agrees with the set-theoretic definition.
    #[test]
    fn intersects_agrees(a in proptest::collection::vec(0u32..50, 0..30),
                         b in proptest::collection::vec(0u32..50, 0..30)) {
        let sa: PointsToSet = a.iter().copied().collect();
        let sb: PointsToSet = b.iter().copied().collect();
        let expect = a.iter().any(|x| b.contains(x));
        prop_assert_eq!(sa.intersects(&sb), expect);
        prop_assert_eq!(sb.intersects(&sa), expect);
    }

    /// Interning is injective on context strings and append_k keeps exactly
    /// the last k elements.
    #[test]
    fn interner_append_k(elems in proptest::collection::vec(0u32..40, 0..20), k in 0usize..4) {
        let mut interner = CtxInterner::new();
        let mut ctx = csc_core::CtxId::EMPTY;
        let mut expect: Vec<CtxElem> = Vec::new();
        for e in elems {
            let el = CtxElem::Obj(ObjId::new(e));
            ctx = interner.append_k(ctx, el, k);
            expect.push(el);
            if expect.len() > k {
                let cut = expect.len() - k;
                expect.drain(..cut);
            }
            prop_assert_eq!(interner.elems(ctx), expect.as_slice());
        }
        // Re-interning the same string yields the same id.
        let again = interner.intern(expect.clone());
        prop_assert_eq!(again, ctx);
    }
}
