//! Property-based tests for the core data structures: points-to sets and
//! the context interner.

use csc_core::{CtxElem, CtxInterner, PointsToSet};
use csc_ir::ObjId;
use proptest::prelude::*;

proptest! {
    /// union_delta returns exactly the new elements and leaves the set
    /// equal to the mathematical union.
    #[test]
    fn union_delta_is_exact(a in proptest::collection::vec(0u32..500, 0..60),
                            b in proptest::collection::vec(0u32..500, 0..60)) {
        let mut s: PointsToSet = a.iter().copied().collect();
        let other: PointsToSet = b.iter().copied().collect();
        let before: std::collections::BTreeSet<u32> = s.iter().collect();
        let delta = s.union_delta(&other);
        let after: std::collections::BTreeSet<u32> = s.iter().collect();
        let expect: std::collections::BTreeSet<u32> =
            a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(&after, &expect);
        match delta {
            None => prop_assert!(other.iter().all(|e| before.contains(&e))),
            Some(d) => {
                let dset: std::collections::BTreeSet<u32> = d.iter().collect();
                let new: std::collections::BTreeSet<u32> =
                    b.iter().copied().filter(|e| !before.contains(e)).collect();
                prop_assert_eq!(dset, new);
            }
        }
    }

    /// Sets stay sorted and deduplicated under arbitrary insertions.
    #[test]
    fn insert_keeps_sorted_unique(elems in proptest::collection::vec(0u32..100, 0..200)) {
        let mut s = PointsToSet::new();
        for e in &elems {
            s.insert(*e);
        }
        let v: Vec<u32> = s.iter().collect();
        let mut sorted = v.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(v, sorted);
        for e in elems {
            prop_assert!(s.contains(e));
        }
    }

    /// intersects agrees with the set-theoretic definition.
    #[test]
    fn intersects_agrees(a in proptest::collection::vec(0u32..50, 0..30),
                         b in proptest::collection::vec(0u32..50, 0..30)) {
        let sa: PointsToSet = a.iter().copied().collect();
        let sb: PointsToSet = b.iter().copied().collect();
        let expect = a.iter().any(|x| b.contains(x));
        prop_assert_eq!(sa.intersects(&sb), expect);
        prop_assert_eq!(sb.intersects(&sa), expect);
    }

    /// Hybrid-representation equivalence: driven across the small-vector /
    /// bitmap promotion threshold, the hybrid set must agree with a sorted
    /// deduplicated `Vec<u32>` reference model on insert / union_delta /
    /// contains round-trips. Element ranges are chosen so runs land on both
    /// sides of the threshold and mix representations in one union.
    #[test]
    fn hybrid_matches_sorted_vec_reference(
        a in proptest::collection::vec(0u32..2000, 0..150),
        b in proptest::collection::vec(0u32..2000, 0..150),
        singles in proptest::collection::vec(0u32..2000, 0..20),
    ) {
        let reference = |v: &[u32]| -> Vec<u32> {
            let mut r = v.to_vec();
            r.sort_unstable();
            r.dedup();
            r
        };

        // insert round-trip.
        let mut s = PointsToSet::new();
        for &e in &a {
            let was_new = !s.contains(e);
            prop_assert_eq!(s.insert(e), was_new);
        }
        prop_assert_eq!(s.iter().collect::<Vec<u32>>(), reference(&a));
        prop_assert_eq!(s.len(), reference(&a).len());

        // union_delta round-trip, including mixed representations.
        let mut lhs: PointsToSet = a.iter().copied().collect();
        let rhs: PointsToSet = b.iter().copied().collect();
        let ref_a = reference(&a);
        let ref_b = reference(&b);
        let expect_delta: Vec<u32> = ref_b
            .iter()
            .copied()
            .filter(|e| ref_a.binary_search(e).is_err())
            .collect();
        match lhs.union_delta(&rhs) {
            None => prop_assert!(expect_delta.is_empty()),
            Some(d) => prop_assert_eq!(d.iter().collect::<Vec<u32>>(), expect_delta),
        }
        let mut expect_union = ref_a.clone();
        expect_union.extend(expect_delta.iter().copied());
        expect_union.sort_unstable();
        prop_assert_eq!(&lhs.iter().collect::<Vec<u32>>(), &expect_union);

        // union_with agrees with union_delta on contents and change-flag.
        let mut lhs2: PointsToSet = a.iter().copied().collect();
        let changed = lhs2.union_with(&rhs);
        prop_assert_eq!(changed, ref_a != expect_union);
        prop_assert_eq!(&lhs, &lhs2);

        // Membership agrees with the model after union.
        for &e in &singles {
            prop_assert_eq!(lhs.contains(e), expect_union.binary_search(&e).is_ok());
        }
    }

    /// `intersects` agrees with the set-theoretic definition across every
    /// representation pairing (small×small, small×bits, bits×bits).
    #[test]
    fn hybrid_intersects_across_representations(
        a in proptest::collection::vec(0u32..400, 0..120),
        b in proptest::collection::vec(0u32..400, 0..120),
    ) {
        let sa: PointsToSet = a.iter().copied().collect();
        let sb: PointsToSet = b.iter().copied().collect();
        let expect = a.iter().any(|x| b.contains(x));
        prop_assert_eq!(sa.intersects(&sb), expect);
        prop_assert_eq!(sb.intersects(&sa), expect);
        // Equality is representation-independent.
        let rebuilt: PointsToSet = sa.iter().collect();
        prop_assert_eq!(&rebuilt, &sa);
    }

    /// `Extend` (collect-sort-merge) matches element-wise insertion.
    #[test]
    fn extend_matches_insertion(
        base in proptest::collection::vec(0u32..600, 0..100),
        added in proptest::collection::vec(0u32..600, 0..100),
    ) {
        let mut by_extend: PointsToSet = base.iter().copied().collect();
        by_extend.extend(added.iter().copied());
        let mut by_insert: PointsToSet = base.iter().copied().collect();
        for &e in &added {
            by_insert.insert(e);
        }
        prop_assert_eq!(&by_extend, &by_insert);
        let mut expect: Vec<u32> = base.iter().chain(added.iter()).copied().collect();
        expect.sort_unstable();
        expect.dedup();
        prop_assert_eq!(by_extend.iter().collect::<Vec<u32>>(), expect);
    }

    /// Interning is injective on context strings and append_k keeps exactly
    /// the last k elements.
    #[test]
    fn interner_append_k(elems in proptest::collection::vec(0u32..40, 0..20), k in 0usize..4) {
        let mut interner = CtxInterner::new();
        let mut ctx = csc_core::CtxId::EMPTY;
        let mut expect: Vec<CtxElem> = Vec::new();
        for e in elems {
            let el = CtxElem::Obj(ObjId::new(e));
            ctx = interner.append_k(ctx, el, k);
            expect.push(el);
            if expect.len() > k {
                let cut = expect.len() - k;
                expect.drain(..cut);
            }
            prop_assert_eq!(interner.elems(ctx), expect.as_slice());
        }
        // Re-interning the same string yields the same id.
        let again = interner.intern(expect.clone());
        prop_assert_eq!(again, ctx);
    }
}
