//! # csc-core — the Cut-Shortcut pointer analysis engine
//!
//! A whole-program, flow-insensitive, Andersen-style pointer analysis for
//! the `csc-ir` Java-like representation, reproducing:
//!
//! * the paper's baseline analyses — context insensitivity (`CI`),
//!   conventional context sensitivity (`2obj`, `2type`, `k`-call-site), and
//!   Zipper-e-style selective context sensitivity ([`zipper`]);
//! * the paper's contribution — the **Cut-Shortcut** analysis ([`csc`]),
//!   which runs the context-insensitive solver on a transformed pointer flow
//!   graph, with all rules of Figs. 7–11 implemented;
//! * the four precision clients of the evaluation ([`clients`]).
//!
//! ## Quickstart
//!
//! ```
//! use csc_core::{run_analysis, Analysis, Budget, PrecisionMetrics};
//!
//! let program = csc_frontend::compile(r#"
//!     class Carton {
//!         Item item;
//!         void setItem(Item item) { this.item = item; }
//!         Item getItem() { Item r; r = this.item; return r; }
//!     }
//!     class Item { }
//!     class Main {
//!         static void main() {
//!             Carton c1 = new Carton();
//!             Item item1 = new Item();
//!             c1.setItem(item1);
//!             Item result1 = c1.getItem();
//!         }
//!     }
//! "#).expect("valid program");
//!
//! let outcome = run_analysis(&program, Analysis::CutShortcut, Budget::unlimited());
//! let metrics = PrecisionMetrics::compute(&outcome.result);
//! assert!(metrics.reach_methods >= 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clients;
pub mod context;
pub mod csc;
pub mod fault;
pub mod fx;
pub mod mem;
pub mod pts;
pub mod results;
pub mod scc;
pub mod solver;
pub mod table;
pub mod zipper;

mod analyses;
mod arena;
mod pool;
mod shard;
mod steal;

pub use analyses::{
    decode_delta_guarded, resolve_analysis, resolve_analysis_guarded, resolve_analysis_opts,
    run_analysis, run_analysis_guarded, run_analysis_opts, Analysis, AnalysisOutcome,
};
pub use clients::PrecisionMetrics;
pub use context::{
    CallInfo, CallSiteSelector, CiSelector, ContextSelector, CtxElem, CtxId, CtxInterner,
    ObjSelector, SelectiveSelector, TypeSelector,
};
pub use csc::{pattern_methods, rebase_compatible, CscConfig, CscStats, CutShortcut};
pub use fault::{FaultMode, FaultPoint};
pub use mem::peak_rss_kb;
pub use pts::{PointsToSet, PtsRepr};
pub use results::{
    load_result, result_cache_dir, result_cache_enabled, result_cache_key, store_result,
    SolvedSummary,
};
pub use scc::OnlineScc;
pub use solver::incr::Resolved;
pub use solver::{
    Budget, CsObjId, DiscoverCtx, EdgeKind, Engine, Event, FallbackReason, NoPlugin, Plugin,
    PtaResult, PtrId, PtrKey, Reaction, ShortcutKind, SolveError, SolveStatus, Solver,
    SolverOptions, SolverState, SolverStats,
};
pub use steal::Quiesce;
pub use table::{ShardKey, ShardedTable};
pub use zipper::ZipperE;
