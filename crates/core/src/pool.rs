//! A persistent, parked worker pool for the parallel propagation engines.
//!
//! The PR-4 engine spawned one `std::thread::scope` *per round*. That is
//! correct but pays a thread spawn + join per worker per round, and
//! event-driven solves (Cut-Shortcut especially) execute thousands of tiny
//! rounds. This pool spawns each worker **once per solve**: the workers
//! park on a blocking `recv` between dispatches, the coordinator hands
//! them one [`Job`] per dispatch — a bulk-synchronous [`RoundJob`] or an
//! async [`StealJob`] phase — and they report back on a shared channel.
//!
//! ## Ownership protocol (why this is safe Rust)
//!
//! Rust cannot express "these borrows are frozen only while the round
//! runs" through a channel whose type outlives the round, so nothing is
//! borrowed across the channel at all. Per dispatch the coordinator
//! *moves*:
//!
//! * the phase-shared read-only state into one [`RoundShared`] behind an
//!   `Arc` (a handful of `Vec` headers plus the plugin — no element is
//!   copied), cloned into every job;
//! * each worker's [`Shard`] (owned mutable state) into its job — directly
//!   for BSP rounds, behind the steal plane's [`ShardCell`] mutexes for
//!   async phases (ownership there is dynamic: whoever holds a cell's
//!   lock owns that shard until it unlocks).
//!
//! Workers drop their `Arc` clones *before* reporting, so after the
//! coordinator has collected all results the `Arc`s are unique again and
//! `Arc::try_unwrap` returns the state for the coordinator phase to
//! mutate. The per-dispatch cost is a few small allocations and pointer
//! moves — versus a spawn/join pair per worker per round before.
//!
//! ## Panic isolation (the typed failure plane)
//!
//! A worker panic is caught and reported as a **poisoned outcome** carrying
//! the recovered shard and a typed [`SolveError`] — it is *never* re-raised,
//! and the worker itself stays parked and serviceable. The coordinator
//! surfaces the error through [`WorkerPool::round`] /
//! [`WorkerPool::steal_phase`], unwinds the round like a budget abort
//! (derived packets dropped), and marks the solve poisoned; the process
//! never dies. In a BSP round the channel protocol inside `run_worker`
//! guarantees peers unblock (a dropped outbox sender surfaces as a recv
//! error, which cascades each peer into its own caught panic — all `n`
//! still report); in an async phase the dying worker marks itself
//! permanently idle with the abort flag set, which is exactly the escape
//! condition [`AsyncCtrl::wait_quiescent`] waits for. When several workers
//! report poisoned, the root cause is chosen deterministically: an
//! injected-fault payload wins over the hung-up-peer cascade, then the
//! lowest worker index.

use std::panic::AssertUnwindSafe;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::{Scope, ScopedJoinHandle};

use crate::fault::{self, FaultMode, FaultPoint};
use crate::shard::{run_worker, RoundJob, RoundShared, Shard, WorkerResult};
use crate::solver::{Plugin, SolveError};
use crate::steal::{run_async_worker, AsyncCtrl, BufPool, Msg, ShardCell};

/// The panic message BSP workers die with when a peer's endpoints vanish
/// mid-round (the peer panicked and dropped its channels). Shared with
/// `shard.rs` so [`pick_root_cause`] can demote these secondary deaths.
pub(crate) const PEER_HANGUP: &str = "peer worker hung up";

/// One dispatch to a pooled worker: a bulk-synchronous round or an async
/// work-stealing phase. The round variant is boxed — it carries seven
/// channel endpoints plus the shard — so the enum stays small on the
/// channel.
pub(crate) enum Job<'p, P> {
    Round(Box<RoundJob<'p, P>>),
    Steal(StealJob<'p, P>),
}

/// One async phase's input to a pooled worker: the frozen shared state,
/// the phase control plane, and the steal plane's shard cells — all
/// `Arc`-shared across the workers (ownership of individual shards is
/// dynamic, through the cell mutexes).
pub(crate) struct StealJob<'p, P> {
    pub(crate) shared: Arc<RoundShared<'p, P>>,
    pub(crate) ctrl: Arc<AsyncCtrl>,
    pub(crate) cells: Arc<Vec<ShardCell>>,
}

/// What one worker hands back: BSP rounds return the shard and its
/// result (boxed — the pair dwarfs the dataless steal variant); async
/// phases return nothing (the coordinator reclaims state from the
/// cells) — the report is purely the "I have exited the phase and
/// dropped my `Arc`s" signal. Panicked dispatches report the poisoned
/// variants: the round one still carries the shard (recovered from the
/// caught unwind, so the coordinator's slot plane stays whole) plus the
/// typed error classified from the panic payload.
enum Outcome {
    Round(Box<(Shard, WorkerResult)>),
    Poisoned(Box<Shard>, SolveError),
    Steal,
    PoisonedSteal(SolveError),
}

/// One worker's report: its index and the dispatch outcome.
type Report = (usize, Outcome);

/// The pool: per-worker job senders plus the shared report channel. Lives
/// inside a [`std::thread::scope`] that spans the whole parallel solve;
/// dropping it (or unwinding out of the scope body) closes the job
/// channels, which is each parked worker's shutdown signal.
pub(crate) struct WorkerPool<'scope, 'p, P> {
    job_txs: Vec<Sender<Job<'p, P>>>,
    report_rx: Receiver<Report>,
    /// The packet-buffer freelist shared by both engines' outbox lanes
    /// (and sized by whichever ran last); solve-scoped, like the pool.
    bufs: Arc<BufPool<Msg>>,
    _handles: Vec<ScopedJoinHandle<'scope, ()>>,
}

impl<'scope, 'p: 'scope, P: Plugin + Send + Sync + 'scope> WorkerPool<'scope, 'p, P> {
    /// Spawns `n` parked workers into `scope`.
    pub(crate) fn start<'env>(scope: &'scope Scope<'scope, 'env>, n: usize) -> Self {
        let (report_tx, report_rx) = channel::<Report>();
        let bufs: Arc<BufPool<Msg>> = Arc::new(BufPool::new());
        let mut job_txs = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for me in 0..n {
            let (tx, rx) = channel::<Job<'p, P>>();
            let report_tx = report_tx.clone();
            handles.push(scope.spawn(move || {
                while let Ok(job) = rx.recv() {
                    match job {
                        Job::Round(job) => {
                            let RoundJob {
                                shared,
                                mut shard,
                                batch,
                                txs,
                                rx: inbox,
                                etxs,
                                erx,
                                bufs,
                            } = *job;
                            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                run_worker(
                                    me, &shared, &mut shard, batch, txs, inbox, etxs, erx, &bufs,
                                )
                            }));
                            // Release the round state *before* reporting:
                            // the coordinator reclaims the Arc's contents
                            // as soon as every report is in.
                            drop(shared);
                            let outcome = match outcome {
                                Ok(result) => Outcome::Round(Box::new((shard, result))),
                                // The caught unwind released its borrow of
                                // the shard, so the poisoned report can
                                // still return it — the coordinator's slot
                                // plane stays whole and the worker stays
                                // parked and serviceable.
                                Err(payload) => Outcome::Poisoned(
                                    Box::new(shard),
                                    fault::error_from_panic(Some(me), payload),
                                ),
                            };
                            if report_tx.send((me, outcome)).is_err() {
                                break;
                            }
                        }
                        Job::Steal(StealJob {
                            shared,
                            ctrl,
                            cells,
                        }) => {
                            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                run_async_worker(me, &shared, &ctrl, &cells);
                            }));
                            if outcome.is_err() {
                                // Park this worker's idle slot forever with
                                // the abort flag up, so the coordinator's
                                // quiescence wait can still complete.
                                ctrl.mark_dead();
                            }
                            drop(cells);
                            drop(shared);
                            drop(ctrl);
                            let outcome = match outcome {
                                Ok(()) => Outcome::Steal,
                                Err(payload) => Outcome::PoisonedSteal(fault::error_from_panic(
                                    Some(me),
                                    payload,
                                )),
                            };
                            if report_tx.send((me, outcome)).is_err() {
                                break;
                            }
                        }
                    }
                }
            }));
            job_txs.push(tx);
        }
        WorkerPool {
            job_txs,
            report_rx,
            bufs,
            _handles: handles,
        }
    }

    /// The pool's shared packet-buffer freelist.
    pub(crate) fn bufs(&self) -> Arc<BufPool<Msg>> {
        Arc::clone(&self.bufs)
    }

    /// Runs one BSP round: sends `jobs[i]` to worker `i`, blocks until
    /// every worker reports, and returns the per-shard results ordered by
    /// shard index. A panicked worker's slot carries its recovered shard
    /// with no [`WorkerResult`], and `poison` names the root cause; the
    /// coordinator treats such a round like a budget abort (logs dropped,
    /// solve marked poisoned) — nothing is re-raised.
    pub(crate) fn round(&self, jobs: Vec<RoundJob<'p, P>>) -> RoundReport {
        let n = jobs.len();
        debug_assert_eq!(n, self.job_txs.len());
        for (tx, job) in self.job_txs.iter().zip(jobs) {
            tx.send(Job::Round(Box::new(job)))
                .expect("propagation worker died");
        }
        let mut slots: Vec<Option<(Shard, Option<WorkerResult>)>> = (0..n).map(|_| None).collect();
        let mut errors: Vec<Option<SolveError>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (me, outcome) = self.report_rx.recv().expect("propagation worker died");
            slots[me] = match outcome {
                Outcome::Round(pair) => {
                    let (shard, result) = *pair;
                    Some((shard, Some(result)))
                }
                Outcome::Poisoned(shard, err) => {
                    errors[me] = Some(err);
                    Some((*shard, None))
                }
                Outcome::Steal | Outcome::PoisonedSteal(_) => {
                    unreachable!("steal report for a round job")
                }
            };
        }
        RoundReport {
            results: slots
                .into_iter()
                .map(|s| s.expect("propagation worker died"))
                .collect(),
            poison: pick_root_cause(errors),
        }
    }

    /// Runs one async work-stealing phase: dispatches `jobs`, waits for
    /// quiescence (or an abort with every worker parked), ends the phase,
    /// and collects every worker's exit report so the coordinator can
    /// safely reclaim the shared state and the shard cells — then surfaces
    /// any worker panic (or an armed `quiescence` fault) as a typed error.
    /// The phase teardown always completes first, so the caller can
    /// restore shards and requeue leftovers exactly like a budget abort.
    pub(crate) fn steal_phase(
        &self,
        jobs: Vec<StealJob<'p, P>>,
        ctrl: &AsyncCtrl,
    ) -> Result<(), SolveError> {
        let n = jobs.len();
        debug_assert_eq!(n, self.job_txs.len());
        for (tx, job) in self.job_txs.iter().zip(jobs) {
            tx.send(Job::Steal(job)).expect("propagation worker died");
        }
        // The coordinator's quiescence-wait fault point. Err/panic modes
        // abort the phase *first* and act only after the full teardown
        // below — a coordinator dying mid-wait would leave the workers
        // parked inside the phase forever.
        let q_fault = fault::fires(FaultPoint::Quiescence);
        match q_fault {
            Some(FaultMode::Delay) => std::thread::sleep(std::time::Duration::from_millis(5)),
            Some(_) => ctrl.abort(),
            None => {}
        }
        ctrl.wait_quiescent(n);
        ctrl.finish();
        let mut errors: Vec<Option<SolveError>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (me, outcome) = self.report_rx.recv().expect("propagation worker died");
            match outcome {
                Outcome::Steal => {}
                Outcome::PoisonedSteal(err) => errors[me] = Some(err),
                Outcome::Round(_) | Outcome::Poisoned(..) => {
                    unreachable!("round report for a steal job")
                }
            }
        }
        match q_fault {
            Some(FaultMode::Panic) => panic!("injected fault: quiescence"),
            Some(FaultMode::Err) => {
                return Err(SolveError::Fault {
                    point: FaultPoint::Quiescence,
                })
            }
            _ => {}
        }
        match pick_root_cause(errors) {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }
}

/// The coordinator's view of one BSP round: every worker's shard (always
/// recovered, even from a panicked dispatch), its result when the dispatch
/// completed, and the round's root-cause error when any worker panicked.
pub(crate) struct RoundReport {
    pub(crate) results: Vec<(Shard, Option<WorkerResult>)>,
    pub(crate) poison: Option<SolveError>,
}

/// Chooses the deterministic root cause among per-worker errors. One
/// panicking worker drops its channel endpoints and the BSP peers die of
/// `peer worker hung up` — secondary casualties that must not mask the
/// panic that set them off. Rank: typed injected fault, then any panic
/// that is *not* the hangup cascade, then the cascade itself; ties break
/// toward the lowest worker index (the report order).
fn pick_root_cause(errors: Vec<Option<SolveError>>) -> Option<SolveError> {
    let mut organic: Option<SolveError> = None;
    let mut cascade: Option<SolveError> = None;
    for err in errors.into_iter().flatten() {
        match &err {
            SolveError::Fault { .. } => return Some(err),
            SolveError::Poisoned { payload, .. } => {
                if payload.contains(PEER_HANGUP) {
                    if cascade.is_none() {
                        cascade = Some(err);
                    }
                } else if organic.is_none() {
                    organic = Some(err);
                }
            }
        }
    }
    organic.or(cascade)
}
