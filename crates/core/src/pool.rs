//! A persistent, parked worker pool for the parallel propagation engine.
//!
//! The PR-4 engine spawned one `std::thread::scope` *per round*. That is
//! correct but pays a thread spawn + join per worker per round, and
//! event-driven solves (Cut-Shortcut especially) execute thousands of tiny
//! rounds. This pool spawns each worker **once per solve**: the workers
//! park on a blocking `recv` between rounds, the coordinator hands them
//! one [`RoundJob`] per round, and they report `(shard, result)` back on a
//! shared channel.
//!
//! ## Ownership protocol (why this is safe Rust)
//!
//! Rust cannot express "these borrows are frozen only while the round
//! runs" through a channel whose type outlives the round, so nothing is
//! borrowed across the channel at all. Per round the coordinator *moves*:
//!
//! * the round-shared read-only state into one [`RoundShared`] behind an
//!   `Arc` (a handful of `Vec` headers plus the plugin — no element is
//!   copied), cloned into every job;
//! * each worker's [`Shard`] (owned mutable state) into its job.
//!
//! Workers drop their `Arc` clone *before* reporting, so after the
//! coordinator has collected all results the `Arc` is unique again and
//! `Arc::try_unwrap` returns the state for the coordinator phase to
//! mutate. The per-round cost is one small allocation and a few pointer
//! moves — versus a spawn/join pair per worker per round before.
//!
//! A worker panic is caught, reported as a poisoned result, and re-raised
//! on the coordinator (and, through the scope, at the solve call site);
//! the channel protocol inside `run_worker` guarantees peers unblock (a
//! dropped outbox sender surfaces as a recv error, not a deadlock).

use std::panic::AssertUnwindSafe;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::{Scope, ScopedJoinHandle};

use crate::shard::{run_worker, RoundJob, Shard, WorkerResult};
use crate::solver::Plugin;

/// One worker's report: its index, and `None` when the round panicked.
type Report = (usize, Option<(Shard, WorkerResult)>);

/// The pool: per-worker job senders plus the shared report channel. Lives
/// inside a [`std::thread::scope`] that spans the whole parallel solve;
/// dropping it (or unwinding out of the scope body) closes the job
/// channels, which is each parked worker's shutdown signal.
pub(crate) struct WorkerPool<'scope, 'p, P> {
    job_txs: Vec<Sender<RoundJob<'p, P>>>,
    report_rx: Receiver<Report>,
    _handles: Vec<ScopedJoinHandle<'scope, ()>>,
}

impl<'scope, 'p: 'scope, P: Plugin + Send + Sync + 'scope> WorkerPool<'scope, 'p, P> {
    /// Spawns `n` parked workers into `scope`.
    pub(crate) fn start<'env>(scope: &'scope Scope<'scope, 'env>, n: usize) -> Self {
        let (report_tx, report_rx) = channel::<Report>();
        let mut job_txs = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for me in 0..n {
            let (tx, rx) = channel::<RoundJob<'p, P>>();
            let report_tx = report_tx.clone();
            handles.push(scope.spawn(move || {
                while let Ok(job) = rx.recv() {
                    let RoundJob {
                        shared,
                        mut shard,
                        batch,
                        txs,
                        rx: inbox,
                        etxs,
                        erx,
                    } = job;
                    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        run_worker(me, &shared, &mut shard, batch, txs, inbox, etxs, erx)
                    }));
                    // Release the round state *before* reporting: the
                    // coordinator reclaims the Arc's contents as soon as
                    // every report is in.
                    drop(shared);
                    match outcome {
                        Ok(result) => {
                            if report_tx.send((me, Some((shard, result)))).is_err() {
                                break;
                            }
                        }
                        Err(payload) => {
                            let _ = report_tx.send((me, None));
                            std::panic::resume_unwind(payload);
                        }
                    }
                }
            }));
            job_txs.push(tx);
        }
        WorkerPool {
            job_txs,
            report_rx,
            _handles: handles,
        }
    }

    /// Runs one round: sends `jobs[i]` to worker `i`, blocks until every
    /// worker reports, and returns the results ordered by shard index.
    ///
    /// # Panics
    ///
    /// Panics if any worker's round panicked (after all reports are in, so
    /// no worker is left holding round state).
    pub(crate) fn round(&self, jobs: Vec<RoundJob<'p, P>>) -> Vec<(Shard, WorkerResult)> {
        let n = jobs.len();
        debug_assert_eq!(n, self.job_txs.len());
        for (tx, job) in self.job_txs.iter().zip(jobs) {
            tx.send(job).expect("propagation worker died");
        }
        let mut slots: Vec<Option<(Shard, WorkerResult)>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (me, outcome) = self.report_rx.recv().expect("propagation worker died");
            slots[me] = outcome;
        }
        slots
            .into_iter()
            .map(|s| s.expect("propagation worker panicked"))
            .collect()
    }
}
