//! A persistent, parked worker pool for the parallel propagation engines.
//!
//! The PR-4 engine spawned one `std::thread::scope` *per round*. That is
//! correct but pays a thread spawn + join per worker per round, and
//! event-driven solves (Cut-Shortcut especially) execute thousands of tiny
//! rounds. This pool spawns each worker **once per solve**: the workers
//! park on a blocking `recv` between dispatches, the coordinator hands
//! them one [`Job`] per dispatch — a bulk-synchronous [`RoundJob`] or an
//! async [`StealJob`] phase — and they report back on a shared channel.
//!
//! ## Ownership protocol (why this is safe Rust)
//!
//! Rust cannot express "these borrows are frozen only while the round
//! runs" through a channel whose type outlives the round, so nothing is
//! borrowed across the channel at all. Per dispatch the coordinator
//! *moves*:
//!
//! * the phase-shared read-only state into one [`RoundShared`] behind an
//!   `Arc` (a handful of `Vec` headers plus the plugin — no element is
//!   copied), cloned into every job;
//! * each worker's [`Shard`] (owned mutable state) into its job — directly
//!   for BSP rounds, behind the steal plane's [`ShardCell`] mutexes for
//!   async phases (ownership there is dynamic: whoever holds a cell's
//!   lock owns that shard until it unlocks).
//!
//! Workers drop their `Arc` clones *before* reporting, so after the
//! coordinator has collected all results the `Arc`s are unique again and
//! `Arc::try_unwrap` returns the state for the coordinator phase to
//! mutate. The per-dispatch cost is a few small allocations and pointer
//! moves — versus a spawn/join pair per worker per round before.
//!
//! A worker panic is caught, reported as a poisoned result, and re-raised
//! on the coordinator (and, through the scope, at the solve call site).
//! In a BSP round the channel protocol inside `run_worker` guarantees
//! peers unblock (a dropped outbox sender surfaces as a recv error, not a
//! deadlock); in an async phase the dying worker marks itself permanently
//! idle with the abort flag set, which is exactly the escape condition
//! [`AsyncCtrl::wait_quiescent`] waits for.

use std::panic::AssertUnwindSafe;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::{Scope, ScopedJoinHandle};

use crate::shard::{run_worker, RoundJob, RoundShared, Shard, WorkerResult};
use crate::solver::Plugin;
use crate::steal::{run_async_worker, AsyncCtrl, BufPool, Msg, ShardCell};

/// One dispatch to a pooled worker: a bulk-synchronous round or an async
/// work-stealing phase. The round variant is boxed — it carries seven
/// channel endpoints plus the shard — so the enum stays small on the
/// channel.
pub(crate) enum Job<'p, P> {
    Round(Box<RoundJob<'p, P>>),
    Steal(StealJob<'p, P>),
}

/// One async phase's input to a pooled worker: the frozen shared state,
/// the phase control plane, and the steal plane's shard cells — all
/// `Arc`-shared across the workers (ownership of individual shards is
/// dynamic, through the cell mutexes).
pub(crate) struct StealJob<'p, P> {
    pub(crate) shared: Arc<RoundShared<'p, P>>,
    pub(crate) ctrl: Arc<AsyncCtrl>,
    pub(crate) cells: Arc<Vec<ShardCell>>,
}

/// What one worker hands back: BSP rounds return the shard and its
/// result (boxed — the pair dwarfs the dataless steal variant); async
/// phases return nothing (the coordinator reclaims state from the
/// cells) — the report is purely the "I have exited the phase and
/// dropped my `Arc`s" signal.
enum Outcome {
    Round(Box<(Shard, WorkerResult)>),
    Steal,
}

/// One worker's report: its index, and `None` when the dispatch panicked.
type Report = (usize, Option<Outcome>);

/// The pool: per-worker job senders plus the shared report channel. Lives
/// inside a [`std::thread::scope`] that spans the whole parallel solve;
/// dropping it (or unwinding out of the scope body) closes the job
/// channels, which is each parked worker's shutdown signal.
pub(crate) struct WorkerPool<'scope, 'p, P> {
    job_txs: Vec<Sender<Job<'p, P>>>,
    report_rx: Receiver<Report>,
    /// The packet-buffer freelist shared by both engines' outbox lanes
    /// (and sized by whichever ran last); solve-scoped, like the pool.
    bufs: Arc<BufPool<Msg>>,
    _handles: Vec<ScopedJoinHandle<'scope, ()>>,
}

impl<'scope, 'p: 'scope, P: Plugin + Send + Sync + 'scope> WorkerPool<'scope, 'p, P> {
    /// Spawns `n` parked workers into `scope`.
    pub(crate) fn start<'env>(scope: &'scope Scope<'scope, 'env>, n: usize) -> Self {
        let (report_tx, report_rx) = channel::<Report>();
        let bufs: Arc<BufPool<Msg>> = Arc::new(BufPool::new());
        let mut job_txs = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for me in 0..n {
            let (tx, rx) = channel::<Job<'p, P>>();
            let report_tx = report_tx.clone();
            handles.push(scope.spawn(move || {
                while let Ok(job) = rx.recv() {
                    match job {
                        Job::Round(job) => {
                            let RoundJob {
                                shared,
                                mut shard,
                                batch,
                                txs,
                                rx: inbox,
                                etxs,
                                erx,
                                bufs,
                            } = *job;
                            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                run_worker(
                                    me, &shared, &mut shard, batch, txs, inbox, etxs, erx, &bufs,
                                )
                            }));
                            // Release the round state *before* reporting:
                            // the coordinator reclaims the Arc's contents
                            // as soon as every report is in.
                            drop(shared);
                            match outcome {
                                Ok(result) => {
                                    let outcome = Outcome::Round(Box::new((shard, result)));
                                    if report_tx.send((me, Some(outcome))).is_err() {
                                        break;
                                    }
                                }
                                Err(payload) => {
                                    let _ = report_tx.send((me, None));
                                    std::panic::resume_unwind(payload);
                                }
                            }
                        }
                        Job::Steal(StealJob {
                            shared,
                            ctrl,
                            cells,
                        }) => {
                            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                run_async_worker(me, &shared, &ctrl, &cells);
                            }));
                            if outcome.is_err() {
                                // Park this worker's idle slot forever with
                                // the abort flag up, so the coordinator's
                                // quiescence wait can still complete.
                                ctrl.mark_dead();
                            }
                            drop(cells);
                            drop(shared);
                            match outcome {
                                Ok(()) => {
                                    drop(ctrl);
                                    if report_tx.send((me, Some(Outcome::Steal))).is_err() {
                                        break;
                                    }
                                }
                                Err(payload) => {
                                    drop(ctrl);
                                    let _ = report_tx.send((me, None));
                                    std::panic::resume_unwind(payload);
                                }
                            }
                        }
                    }
                }
            }));
            job_txs.push(tx);
        }
        WorkerPool {
            job_txs,
            report_rx,
            bufs,
            _handles: handles,
        }
    }

    /// The pool's shared packet-buffer freelist.
    pub(crate) fn bufs(&self) -> Arc<BufPool<Msg>> {
        Arc::clone(&self.bufs)
    }

    /// Runs one BSP round: sends `jobs[i]` to worker `i`, blocks until
    /// every worker reports, and returns the results ordered by shard
    /// index.
    ///
    /// # Panics
    ///
    /// Panics if any worker's round panicked (after all reports are in, so
    /// no worker is left holding round state).
    pub(crate) fn round(&self, jobs: Vec<RoundJob<'p, P>>) -> Vec<(Shard, WorkerResult)> {
        let n = jobs.len();
        debug_assert_eq!(n, self.job_txs.len());
        for (tx, job) in self.job_txs.iter().zip(jobs) {
            tx.send(Job::Round(Box::new(job)))
                .expect("propagation worker died");
        }
        let mut slots: Vec<Option<(Shard, WorkerResult)>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (me, outcome) = self.report_rx.recv().expect("propagation worker died");
            slots[me] = match outcome {
                Some(Outcome::Round(pair)) => Some(*pair),
                Some(Outcome::Steal) => unreachable!("steal report for a round job"),
                None => None,
            };
        }
        slots
            .into_iter()
            .map(|s| s.expect("propagation worker panicked"))
            .collect()
    }

    /// Runs one async work-stealing phase: dispatches `jobs`, waits for
    /// quiescence (or an abort with every worker parked), ends the phase,
    /// and collects every worker's exit report so the coordinator can
    /// safely reclaim the shared state and the shard cells.
    ///
    /// # Panics
    ///
    /// Panics if any worker died during the phase (after all reports are
    /// in).
    pub(crate) fn steal_phase(&self, jobs: Vec<StealJob<'p, P>>, ctrl: &AsyncCtrl) {
        let n = jobs.len();
        debug_assert_eq!(n, self.job_txs.len());
        for (tx, job) in self.job_txs.iter().zip(jobs) {
            tx.send(Job::Steal(job)).expect("propagation worker died");
        }
        ctrl.wait_quiescent(n);
        ctrl.finish();
        let mut ok = vec![false; n];
        for _ in 0..n {
            let (me, outcome) = self.report_rx.recv().expect("propagation worker died");
            ok[me] = matches!(outcome, Some(Outcome::Steal));
        }
        assert!(
            ok.into_iter().all(|b| b),
            "propagation worker panicked during async phase"
        );
    }
}
