//! High-level analysis driver: one entry point for every analysis of the
//! paper's evaluation matrix.

use std::collections::HashSet;
use std::time::Duration;

use csc_ir::{DeltaEffects, MethodId, Program};

use crate::context::{
    CallSiteSelector, CiSelector, ContextSelector, ObjSelector, SelectiveSelector, TypeSelector,
};
use crate::csc::{CscConfig, CscStats, CutShortcut};
use crate::solver::incr::Resolved;
use crate::solver::{
    Budget, FallbackReason, NoPlugin, PtaResult, SolveError, Solver, SolverOptions, SolverStats,
};
use crate::zipper::{ZipperE, ZipperOptions};

/// The analyses compared in the paper's evaluation (§5).
#[derive(Clone, Debug)]
pub enum Analysis {
    /// Context insensitivity — the fastest baseline.
    Ci,
    /// Conventional `k`-object sensitivity (`KObj(2)` is the paper's 2obj).
    KObj(usize),
    /// Conventional `k`-type sensitivity (`KType(2)` is the paper's 2type).
    KType(usize),
    /// Conventional `k`-call-site sensitivity.
    KCallSite(usize),
    /// Zipper-e selective object sensitivity (pre-analysis + selection +
    /// selective main analysis).
    ZipperE,
    /// Cut-Shortcut with all three patterns (the paper's contribution).
    CutShortcut,
    /// Cut-Shortcut with an explicit pattern configuration (ablations,
    /// Doop mode).
    CutShortcutWith(CscConfig),
    /// The §3.4 combination the paper sketches as future work: the
    /// Cut-Shortcut plugin plus selective object sensitivity applied only
    /// to precision-critical methods that no pattern covers.
    CscHybrid,
}

impl Analysis {
    /// The short name used in the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            Analysis::Ci => "CI",
            Analysis::KObj(2) => "2obj",
            Analysis::KObj(_) => "kobj",
            Analysis::KType(2) => "2type",
            Analysis::KType(_) => "ktype",
            Analysis::KCallSite(_) => "kcs",
            Analysis::ZipperE => "Zipper-e",
            Analysis::CutShortcut | Analysis::CutShortcutWith(_) => "CSC",
            Analysis::CscHybrid => "CSC+sel",
        }
    }
}

/// Everything produced by [`run_analysis`].
pub struct AnalysisOutcome<'p> {
    /// The main analysis result.
    pub result: PtaResult<'p>,
    /// Total wall-clock time, including Zipper-e's pre-analysis when
    /// applicable.
    pub total_time: Duration,
    /// Pre-analysis time (Zipper-e only).
    pub pre_time: Option<Duration>,
    /// Cut-Shortcut statistics (CSC only).
    pub csc: Option<CscStats>,
    /// Selected method set (Zipper-e only).
    pub selected: Option<HashSet<MethodId>>,
    /// The plugin instance the main solve returned (CSC analyses only),
    /// retained so [`resolve_analysis`] can rebase it across a delta.
    plugin: Option<CutShortcut>,
    /// The CI pre-analysis result (Zipper-e and hybrid only), retained so
    /// [`resolve_analysis`] can extend the pre-analysis incrementally too.
    pre_result: Option<PtaResult<'p>>,
}

impl AnalysisOutcome<'_> {
    /// Whether the analysis ran to completion within its budget.
    pub fn completed(&self) -> bool {
        self.result.status == crate::solver::SolveStatus::Completed
    }

    /// The typed failure when the main solve was poisoned (worker panic or
    /// injected fault on a parallel engine); `None` for completed and
    /// timed-out solves.
    pub fn solve_error(&self) -> Option<&SolveError> {
        self.result.error.as_ref()
    }
}

/// Runs one analysis on a program under a budget (the paper uses 2 hours;
/// benchmarks here use seconds). For Zipper-e the budget covers pre and main
/// analysis together, as in the paper. Uses the default [`SolverOptions`]
/// (SCC-collapsed propagation enabled).
pub fn run_analysis<'p>(
    program: &'p Program,
    analysis: Analysis,
    budget: Budget,
) -> AnalysisOutcome<'p> {
    run_analysis_opts(program, analysis, budget, SolverOptions::default())
}

/// [`run_analysis`] with explicit engine options. Every solver the analysis
/// spawns (including Zipper-e's and the hybrid's pre-analysis) runs under
/// the same options, so a differential comparison toggling
/// [`SolverOptions::collapse_sccs`] covers the whole pipeline.
pub fn run_analysis_opts<'p>(
    program: &'p Program,
    analysis: Analysis,
    budget: Budget,
    opts: SolverOptions,
) -> AnalysisOutcome<'p> {
    match analysis {
        Analysis::Ci => {
            let (result, _) =
                Solver::with_options(program, CiSelector, NoPlugin, budget, opts).solve();
            let total_time = result.elapsed;
            AnalysisOutcome {
                result,
                total_time,
                pre_time: None,
                csc: None,
                selected: None,
                plugin: None,
                pre_result: None,
            }
        }
        Analysis::KObj(k) => {
            let (result, _) =
                Solver::with_options(program, ObjSelector::new(k), NoPlugin, budget, opts).solve();
            let total_time = result.elapsed;
            AnalysisOutcome {
                result,
                total_time,
                pre_time: None,
                csc: None,
                selected: None,
                plugin: None,
                pre_result: None,
            }
        }
        Analysis::KType(k) => {
            let (result, _) =
                Solver::with_options(program, TypeSelector::new(k), NoPlugin, budget, opts).solve();
            let total_time = result.elapsed;
            AnalysisOutcome {
                result,
                total_time,
                pre_time: None,
                csc: None,
                selected: None,
                plugin: None,
                pre_result: None,
            }
        }
        Analysis::KCallSite(k) => {
            let (result, _) =
                Solver::with_options(program, CallSiteSelector::new(k), NoPlugin, budget, opts)
                    .solve();
            let total_time = result.elapsed;
            AnalysisOutcome {
                result,
                total_time,
                pre_time: None,
                csc: None,
                selected: None,
                plugin: None,
                pre_result: None,
            }
        }
        Analysis::ZipperE => {
            let zopts = ZipperOptions::default();
            let (pre, _) =
                Solver::with_options(program, CiSelector, NoPlugin, budget, opts).solve();
            let pre_time = pre.elapsed;
            let zipper = ZipperE::select(program, &pre, zopts);
            let selected = zipper.selected.clone();
            let main_budget = Budget {
                time: budget.time.map(|t| t.saturating_sub(pre_time)),
                max_propagations: budget.max_propagations,
            };
            let selector =
                SelectiveSelector::new(ObjSelector::new(zopts.k), zipper.selected, "Zipper-e");
            let (mut result, _) =
                Solver::with_options(program, selector, NoPlugin, main_budget, opts).solve();
            // Fold the pre-analysis solve's phase split into the reported
            // stats, so parallel_secs + coordinator_secs stays a
            // decomposition of the row's wall-clock for two-phase
            // analyses too (modulo the selection step between solves).
            result.state.stats.parallel_secs += pre.state.stats.parallel_secs;
            result.state.stats.coordinator_secs += pre.state.stats.coordinator_secs;
            let total_time = pre_time + result.elapsed;
            AnalysisOutcome {
                result,
                total_time,
                pre_time: Some(pre_time),
                csc: None,
                selected: Some(selected),
                plugin: None,
                pre_result: Some(pre),
            }
        }
        Analysis::CutShortcut => run_analysis_opts(
            program,
            Analysis::CutShortcutWith(CscConfig::all()),
            budget,
            opts,
        ),
        Analysis::CutShortcutWith(cfg) => {
            let plugin = CutShortcut::new(program, cfg);
            let (mut result, plugin) =
                Solver::with_options(program, CiSelector, plugin, budget, opts).solve();
            result.analysis = "csc".to_owned();
            let total_time = result.elapsed;
            AnalysisOutcome {
                result,
                total_time,
                pre_time: None,
                csc: Some(plugin.stats().clone()),
                selected: None,
                plugin: Some(plugin),
                pre_result: None,
            }
        }
        Analysis::CscHybrid => {
            // Phase 1: CI pre-analysis + Zipper-e selection, as usual.
            let zopts = ZipperOptions::default();
            let (pre, _) =
                Solver::with_options(program, CiSelector, NoPlugin, budget, opts).solve();
            let pre_time = pre.elapsed;
            let zipper = ZipperE::select(program, &pre, zopts);
            // Phase 2: subtract the methods Cut-Shortcut already handles
            // (the paper's §3.4 suggestion) and run the plugin together
            // with the restricted selective selector.
            let cfg = CscConfig::all();
            let covered = crate::csc::pattern_methods(program, &cfg);
            let selected: HashSet<MethodId> =
                zipper.selected.difference(&covered).copied().collect();
            let main_budget = Budget {
                time: budget.time.map(|t| t.saturating_sub(pre_time)),
                max_propagations: budget.max_propagations,
            };
            let selector =
                SelectiveSelector::new(ObjSelector::new(zopts.k), selected.clone(), "CSC+sel");
            let plugin = CutShortcut::new(program, cfg);
            let (mut result, plugin) =
                Solver::with_options(program, selector, plugin, main_budget, opts).solve();
            result.analysis = "csc-hybrid".to_owned();
            // As for Zipper-e: keep the phase split a decomposition of the
            // two-phase row's wall-clock.
            result.state.stats.parallel_secs += pre.state.stats.parallel_secs;
            result.state.stats.coordinator_secs += pre.state.stats.coordinator_secs;
            let total_time = pre_time + result.elapsed;
            AnalysisOutcome {
                result,
                total_time,
                pre_time: Some(pre_time),
                csc: Some(plugin.stats().clone()),
                selected: Some(selected.clone()),
                plugin: Some(plugin),
                pre_result: Some(pre),
            }
        }
    }
}

/// [`resolve_analysis_opts`] with default [`SolverOptions`].
pub fn resolve_analysis<'p>(
    prev: AnalysisOutcome<'_>,
    patched: &'p Program,
    fx: &DeltaEffects,
    analysis: Analysis,
    budget: Budget,
) -> AnalysisOutcome<'p> {
    resolve_analysis_opts(
        prev,
        patched,
        fx,
        analysis,
        budget,
        SolverOptions::default(),
    )
}

/// Incrementally re-runs `analysis` on a delta-patched program on top of a
/// previous [`run_analysis_opts`] outcome.
///
/// `patched` and `fx` must come from [`csc_ir::ProgramDelta::apply`] on the
/// program `prev` was solved against, and `analysis`/`opts` must match the
/// base run. When the delta's preconditions hold the solver re-propagates
/// only from the affected pointers ([`crate::solver::incr`]); otherwise it
/// transparently falls back to a full solve of `patched` and records the
/// reason in [`SolverStats::incr_fallback_reason`]. Either way, the
/// outcome's projections are bit-identical to running the analysis on
/// `patched` from scratch.
///
/// Two-phase analyses (Zipper-e, the hybrid) extend the CI pre-analysis
/// incrementally too, recompute the selection on the patched program, and
/// fall back with [`FallbackReason::PreanalysisChanged`] when the selected
/// method set shifted — the base main solve then ran under a different
/// selector and its fixpoint cannot be extended.
pub fn resolve_analysis_opts<'p>(
    prev: AnalysisOutcome<'_>,
    patched: &'p Program,
    fx: &DeltaEffects,
    analysis: Analysis,
    budget: Budget,
    opts: SolverOptions,
) -> AnalysisOutcome<'p> {
    match analysis {
        Analysis::Ci => {
            let (result, _) = resolve_plain(prev.result, patched, fx, || CiSelector, budget, opts);
            plain_outcome(result)
        }
        Analysis::KObj(k) => {
            let (result, _) = resolve_plain(
                prev.result,
                patched,
                fx,
                || ObjSelector::new(k),
                budget,
                opts,
            );
            plain_outcome(result)
        }
        Analysis::KType(k) => {
            let (result, _) = resolve_plain(
                prev.result,
                patched,
                fx,
                || TypeSelector::new(k),
                budget,
                opts,
            );
            plain_outcome(result)
        }
        Analysis::KCallSite(k) => {
            let (result, _) = resolve_plain(
                prev.result,
                patched,
                fx,
                || CallSiteSelector::new(k),
                budget,
                opts,
            );
            plain_outcome(result)
        }
        Analysis::ZipperE => {
            let zopts = ZipperOptions::default();
            let prev_selected = prev
                .selected
                .expect("Zipper-e outcome retains its selection");
            let pre_prev = prev
                .pre_result
                .expect("Zipper-e outcome retains its pre-analysis");
            let (pre, _) = resolve_plain(pre_prev, patched, fx, || CiSelector, budget, opts);
            let pre_time = pre.elapsed;
            let zipper = ZipperE::select(patched, &pre, zopts);
            let selected = zipper.selected.clone();
            let main_budget = Budget {
                time: budget.time.map(|t| t.saturating_sub(pre_time)),
                max_propagations: budget.max_propagations,
            };
            let mk =
                || SelectiveSelector::new(ObjSelector::new(zopts.k), selected.clone(), "Zipper-e");
            let (mut result, _) = if selected != prev_selected {
                let prior = prev.result.state.stats;
                let (mut res, _) =
                    Solver::with_options(patched, mk(), NoPlugin, main_budget, opts).solve();
                stamp_fallback(&mut res, &prior, FallbackReason::PreanalysisChanged);
                (res, Some(FallbackReason::PreanalysisChanged))
            } else {
                resolve_plain(prev.result, patched, fx, mk, main_budget, opts)
            };
            result.state.stats.parallel_secs += pre.state.stats.parallel_secs;
            result.state.stats.coordinator_secs += pre.state.stats.coordinator_secs;
            result.state.stats.resolve_secs += pre.state.stats.resolve_secs;
            let total_time = pre_time + result.elapsed;
            AnalysisOutcome {
                result,
                total_time,
                pre_time: Some(pre_time),
                csc: None,
                selected: Some(selected),
                plugin: None,
                pre_result: Some(pre),
            }
        }
        Analysis::CutShortcut => resolve_analysis_opts(
            prev,
            patched,
            fx,
            Analysis::CutShortcutWith(CscConfig::all()),
            budget,
            opts,
        ),
        Analysis::CutShortcutWith(cfg) => {
            let plugin = prev.plugin.expect("CSC outcome retains its plugin");
            let prior = prev.result.state.stats;
            let (mut result, plugin) =
                match Solver::resolve(prev.result, patched, fx, CiSelector, plugin, budget) {
                    Resolved::Incremental(res, plugin) => (res, plugin),
                    // The returned plugin may hold state derived from the
                    // base program; a fallback solve needs a fresh one.
                    Resolved::Fallback(reason, _stale) => {
                        let plugin = CutShortcut::new(patched, cfg);
                        let (mut res, plugin) =
                            Solver::with_options(patched, CiSelector, plugin, budget, opts).solve();
                        stamp_fallback(&mut res, &prior, reason);
                        (res, plugin)
                    }
                };
            result.analysis = "csc".to_owned();
            let total_time = result.elapsed;
            AnalysisOutcome {
                result,
                total_time,
                pre_time: None,
                csc: Some(plugin.stats().clone()),
                selected: None,
                plugin: Some(plugin),
                pre_result: None,
            }
        }
        Analysis::CscHybrid => {
            let zopts = ZipperOptions::default();
            let cfg = CscConfig::all();
            let prev_selected = prev.selected.expect("hybrid outcome retains its selection");
            let pre_prev = prev
                .pre_result
                .expect("hybrid outcome retains its pre-analysis");
            let plugin = prev.plugin.expect("hybrid outcome retains its plugin");
            let (pre, _) = resolve_plain(pre_prev, patched, fx, || CiSelector, budget, opts);
            let pre_time = pre.elapsed;
            let zipper = ZipperE::select(patched, &pre, zopts);
            let covered = crate::csc::pattern_methods(patched, &cfg);
            let selected: HashSet<MethodId> =
                zipper.selected.difference(&covered).copied().collect();
            let main_budget = Budget {
                time: budget.time.map(|t| t.saturating_sub(pre_time)),
                max_propagations: budget.max_propagations,
            };
            let mk =
                || SelectiveSelector::new(ObjSelector::new(zopts.k), selected.clone(), "CSC+sel");
            let prior = prev.result.state.stats;
            let (mut result, plugin) = if selected != prev_selected {
                let plugin = CutShortcut::new(patched, cfg);
                let (mut res, plugin) =
                    Solver::with_options(patched, mk(), plugin, main_budget, opts).solve();
                stamp_fallback(&mut res, &prior, FallbackReason::PreanalysisChanged);
                (res, plugin)
            } else {
                match Solver::resolve(prev.result, patched, fx, mk(), plugin, main_budget) {
                    Resolved::Incremental(res, plugin) => (res, plugin),
                    Resolved::Fallback(reason, _stale) => {
                        let plugin = CutShortcut::new(patched, cfg);
                        let (mut res, plugin) =
                            Solver::with_options(patched, mk(), plugin, main_budget, opts).solve();
                        stamp_fallback(&mut res, &prior, reason);
                        (res, plugin)
                    }
                }
            };
            result.analysis = "csc-hybrid".to_owned();
            result.state.stats.parallel_secs += pre.state.stats.parallel_secs;
            result.state.stats.coordinator_secs += pre.state.stats.coordinator_secs;
            result.state.stats.resolve_secs += pre.state.stats.resolve_secs;
            let total_time = pre_time + result.elapsed;
            AnalysisOutcome {
                result,
                total_time,
                pre_time: Some(pre_time),
                csc: Some(plugin.stats().clone()),
                selected: Some(selected),
                plugin: Some(plugin),
                pre_result: Some(pre),
            }
        }
    }
}

/// Wraps a plugin-free result the way [`run_analysis_opts`]'s plain arms
/// do.
fn plain_outcome(result: PtaResult<'_>) -> AnalysisOutcome<'_> {
    let total_time = result.elapsed;
    AnalysisOutcome {
        result,
        total_time,
        pre_time: None,
        csc: None,
        selected: None,
        plugin: None,
        pre_result: None,
    }
}

/// Stamps incremental-resolve bookkeeping onto a fresh full-solve result
/// that replaced a failed incremental attempt. `prior` is the base
/// result's stats, copied before [`Solver::resolve`] consumed it.
fn stamp_fallback(res: &mut PtaResult<'_>, prior: &SolverStats, reason: FallbackReason) {
    let stats = &mut res.state.stats;
    stats.incr_resolves = prior.incr_resolves + 1;
    stats.incr_fallbacks = prior.incr_fallbacks + 1;
    stats.incr_fallback_reason = Some(reason);
    stats.resolve_secs = res.elapsed.as_secs_f64();
}

/// [`run_analysis_opts`] behind a panic guard: a panic escaping the
/// sequential engine or the coordinator (including `err`-mode injected
/// faults, which unwind with the [`crate::fault::InjectedFault`] marker)
/// is translated into a typed [`SolveError`] instead of aborting the
/// caller. Worker panics on the parallel engines never reach this guard —
/// the pool isolates them and the outcome comes back `Ok` with
/// [`crate::solver::SolveStatus::Poisoned`] and [`PtaResult::error`] set;
/// use [`AnalysisOutcome::solve_error`] to observe both shapes uniformly.
pub fn run_analysis_guarded<'p>(
    program: &'p Program,
    analysis: Analysis,
    budget: Budget,
    opts: SolverOptions,
) -> Result<AnalysisOutcome<'p>, SolveError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_analysis_opts(program, analysis, budget, opts)
    }))
    .map_err(|payload| crate::fault::error_from_panic(None, payload))
}

/// [`resolve_analysis_opts`] behind the same panic guard as
/// [`run_analysis_guarded`]. On `Err` the previous outcome is consumed
/// and lost — callers (the serve loop) fall back to a from-scratch solve
/// of whatever program they hold.
pub fn resolve_analysis_guarded<'p>(
    prev: AnalysisOutcome<'_>,
    patched: &'p Program,
    fx: &DeltaEffects,
    analysis: Analysis,
    budget: Budget,
    opts: SolverOptions,
) -> Result<AnalysisOutcome<'p>, SolveError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        resolve_analysis_opts(prev, patched, fx, analysis, budget, opts)
    }))
    .map_err(|payload| crate::fault::error_from_panic(None, payload))
}

/// Decodes a `CSCDL` delta byte stream behind the `delta-decode` fault
/// point: injected I/O faults and decode failures both surface as a
/// string error (the serve protocol's typed `delta-decode` failure), and
/// injected panics are translated like any guarded panic.
pub fn decode_delta_guarded(bytes: &[u8]) -> Result<csc_ir::ProgramDelta, String> {
    crate::fault::hit_io(crate::fault::FaultPoint::DeltaDecode).map_err(|e| e.to_string())?;
    csc_ir::ProgramDelta::from_bytes(bytes).map_err(|e| format!("{e:?}"))
}

/// Incremental re-solve for plugin-free analyses: try
/// [`Solver::resolve`], fall back to a from-scratch solve under `opts`
/// when it declines. Returns the fallback reason alongside the result
/// (`None` when the incremental path succeeded).
fn resolve_plain<'p, S: ContextSelector>(
    prev: PtaResult<'_>,
    patched: &'p Program,
    fx: &DeltaEffects,
    mk_selector: impl Fn() -> S,
    budget: Budget,
    opts: SolverOptions,
) -> (PtaResult<'p>, Option<FallbackReason>) {
    let prior = prev.state.stats;
    match Solver::resolve(prev, patched, fx, mk_selector(), NoPlugin, budget) {
        Resolved::Incremental(res, _) => (res, None),
        Resolved::Fallback(reason, _) => {
            let (mut res, _) =
                Solver::with_options(patched, mk_selector(), NoPlugin, budget, opts).solve();
            stamp_fallback(&mut res, &prior, reason);
            (res, Some(reason))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clients::PrecisionMetrics;

    /// The paper's Figure 1 motivating example: CSC must be exactly as
    /// precise as context sensitivity here, while CI merges the two items.
    const MOTIVATING: &str = r#"
        class Carton {
            Item item;
            void setItem(Item item) { this.item = item; }
            Item getItem() { Item r; r = this.item; return r; }
        }
        class Item { }
        class Main {
            static void main() {
                Carton c1 = new Carton();
                Item item1 = new Item();
                c1.setItem(item1);
                Item result1 = c1.getItem();
                Carton c2 = new Carton();
                Item item2 = new Item();
                c2.setItem(item2);
                Item result2 = c2.getItem();
            }
        }
    "#;

    fn pt_of(outcome: &AnalysisOutcome<'_>, program: &Program, var_name: &str) -> Vec<String> {
        let main = program.entry();
        let v = program
            .method(main)
            .vars()
            .iter()
            .copied()
            .find(|&v| program.var(v).name() == var_name)
            .expect("variable exists");
        let mut objs: Vec<String> = outcome
            .result
            .state
            .pt_var_projected(v)
            .into_iter()
            .map(|o| program.obj(o).label().to_owned())
            .collect();
        objs.sort();
        objs
    }

    #[test]
    fn figure1_ci_merges_items() {
        let program = csc_frontend::compile(MOTIVATING).unwrap();
        let out = run_analysis(&program, Analysis::Ci, Budget::unlimited());
        assert_eq!(pt_of(&out, &program, "result1").len(), 2, "CI is imprecise");
        assert_eq!(pt_of(&out, &program, "result2").len(), 2);
    }

    #[test]
    fn figure1_csc_is_precise() {
        let program = csc_frontend::compile(MOTIVATING).unwrap();
        let out = run_analysis(&program, Analysis::CutShortcut, Budget::unlimited());
        assert_eq!(
            pt_of(&out, &program, "result1"),
            pt_of(&out, &program, "item1"),
            "CSC must recover the context-sensitive result"
        );
        assert_eq!(
            pt_of(&out, &program, "result2"),
            pt_of(&out, &program, "item2")
        );
        assert_eq!(pt_of(&out, &program, "result1").len(), 1);
        assert_eq!(pt_of(&out, &program, "result2").len(), 1);
        let stats = out.csc.as_ref().unwrap();
        assert_eq!(stats.cut_store_sites, 1);
        assert_eq!(stats.cut_return_methods, 1);
        assert_eq!(stats.shortcut_store_edges, 2);
        assert_eq!(stats.shortcut_load_edges, 2);
    }

    #[test]
    fn figure1_2obj_is_precise() {
        let program = csc_frontend::compile(MOTIVATING).unwrap();
        let out = run_analysis(&program, Analysis::KObj(2), Budget::unlimited());
        assert_eq!(pt_of(&out, &program, "result1").len(), 1);
        assert_eq!(pt_of(&out, &program, "result2").len(), 1);
    }

    #[test]
    fn csc_soundness_on_motivating_example() {
        let program = csc_frontend::compile(MOTIVATING).unwrap();
        let ci = run_analysis(&program, Analysis::Ci, Budget::unlimited());
        let csc = run_analysis(&program, Analysis::CutShortcut, Budget::unlimited());
        // CSC finds the same reachable methods and call edges as CI here.
        assert_eq!(
            ci.result.state.reachable_methods_projected(),
            csc.result.state.reachable_methods_projected()
        );
        assert_eq!(
            ci.result.state.call_edges_projected(),
            csc.result.state.call_edges_projected()
        );
        let m_ci = PrecisionMetrics::compute(&ci.result);
        let m_csc = PrecisionMetrics::compute(&csc.result);
        assert!(m_csc.fail_casts <= m_ci.fail_casts);
    }
}
