//! High-level analysis driver: one entry point for every analysis of the
//! paper's evaluation matrix.

use std::collections::HashSet;
use std::time::Duration;

use csc_ir::{MethodId, Program};

use crate::context::{CallSiteSelector, CiSelector, ObjSelector, SelectiveSelector, TypeSelector};
use crate::csc::{CscConfig, CscStats, CutShortcut};
use crate::solver::{Budget, NoPlugin, PtaResult, Solver, SolverOptions};
use crate::zipper::{ZipperE, ZipperOptions};

/// The analyses compared in the paper's evaluation (§5).
#[derive(Clone, Debug)]
pub enum Analysis {
    /// Context insensitivity — the fastest baseline.
    Ci,
    /// Conventional `k`-object sensitivity (`KObj(2)` is the paper's 2obj).
    KObj(usize),
    /// Conventional `k`-type sensitivity (`KType(2)` is the paper's 2type).
    KType(usize),
    /// Conventional `k`-call-site sensitivity.
    KCallSite(usize),
    /// Zipper-e selective object sensitivity (pre-analysis + selection +
    /// selective main analysis).
    ZipperE,
    /// Cut-Shortcut with all three patterns (the paper's contribution).
    CutShortcut,
    /// Cut-Shortcut with an explicit pattern configuration (ablations,
    /// Doop mode).
    CutShortcutWith(CscConfig),
    /// The §3.4 combination the paper sketches as future work: the
    /// Cut-Shortcut plugin plus selective object sensitivity applied only
    /// to precision-critical methods that no pattern covers.
    CscHybrid,
}

impl Analysis {
    /// The short name used in the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            Analysis::Ci => "CI",
            Analysis::KObj(2) => "2obj",
            Analysis::KObj(_) => "kobj",
            Analysis::KType(2) => "2type",
            Analysis::KType(_) => "ktype",
            Analysis::KCallSite(_) => "kcs",
            Analysis::ZipperE => "Zipper-e",
            Analysis::CutShortcut | Analysis::CutShortcutWith(_) => "CSC",
            Analysis::CscHybrid => "CSC+sel",
        }
    }
}

/// Everything produced by [`run_analysis`].
pub struct AnalysisOutcome<'p> {
    /// The main analysis result.
    pub result: PtaResult<'p>,
    /// Total wall-clock time, including Zipper-e's pre-analysis when
    /// applicable.
    pub total_time: Duration,
    /// Pre-analysis time (Zipper-e only).
    pub pre_time: Option<Duration>,
    /// Cut-Shortcut statistics (CSC only).
    pub csc: Option<CscStats>,
    /// Selected method set (Zipper-e only).
    pub selected: Option<HashSet<MethodId>>,
}

impl AnalysisOutcome<'_> {
    /// Whether the analysis ran to completion within its budget.
    pub fn completed(&self) -> bool {
        self.result.status == crate::solver::SolveStatus::Completed
    }
}

/// Runs one analysis on a program under a budget (the paper uses 2 hours;
/// benchmarks here use seconds). For Zipper-e the budget covers pre and main
/// analysis together, as in the paper. Uses the default [`SolverOptions`]
/// (SCC-collapsed propagation enabled).
pub fn run_analysis<'p>(
    program: &'p Program,
    analysis: Analysis,
    budget: Budget,
) -> AnalysisOutcome<'p> {
    run_analysis_opts(program, analysis, budget, SolverOptions::default())
}

/// [`run_analysis`] with explicit engine options. Every solver the analysis
/// spawns (including Zipper-e's and the hybrid's pre-analysis) runs under
/// the same options, so a differential comparison toggling
/// [`SolverOptions::collapse_sccs`] covers the whole pipeline.
pub fn run_analysis_opts<'p>(
    program: &'p Program,
    analysis: Analysis,
    budget: Budget,
    opts: SolverOptions,
) -> AnalysisOutcome<'p> {
    match analysis {
        Analysis::Ci => {
            let (result, _) =
                Solver::with_options(program, CiSelector, NoPlugin, budget, opts).solve();
            let total_time = result.elapsed;
            AnalysisOutcome {
                result,
                total_time,
                pre_time: None,
                csc: None,
                selected: None,
            }
        }
        Analysis::KObj(k) => {
            let (result, _) =
                Solver::with_options(program, ObjSelector::new(k), NoPlugin, budget, opts).solve();
            let total_time = result.elapsed;
            AnalysisOutcome {
                result,
                total_time,
                pre_time: None,
                csc: None,
                selected: None,
            }
        }
        Analysis::KType(k) => {
            let (result, _) =
                Solver::with_options(program, TypeSelector::new(k), NoPlugin, budget, opts).solve();
            let total_time = result.elapsed;
            AnalysisOutcome {
                result,
                total_time,
                pre_time: None,
                csc: None,
                selected: None,
            }
        }
        Analysis::KCallSite(k) => {
            let (result, _) =
                Solver::with_options(program, CallSiteSelector::new(k), NoPlugin, budget, opts)
                    .solve();
            let total_time = result.elapsed;
            AnalysisOutcome {
                result,
                total_time,
                pre_time: None,
                csc: None,
                selected: None,
            }
        }
        Analysis::ZipperE => {
            let zopts = ZipperOptions::default();
            let (pre, _) =
                Solver::with_options(program, CiSelector, NoPlugin, budget, opts).solve();
            let pre_time = pre.elapsed;
            let zipper = ZipperE::select(program, &pre, zopts);
            let selected = zipper.selected.clone();
            let main_budget = Budget {
                time: budget.time.map(|t| t.saturating_sub(pre_time)),
                max_propagations: budget.max_propagations,
            };
            let selector =
                SelectiveSelector::new(ObjSelector::new(zopts.k), zipper.selected, "Zipper-e");
            let (mut result, _) =
                Solver::with_options(program, selector, NoPlugin, main_budget, opts).solve();
            // Fold the pre-analysis solve's phase split into the reported
            // stats, so parallel_secs + coordinator_secs stays a
            // decomposition of the row's wall-clock for two-phase
            // analyses too (modulo the selection step between solves).
            result.state.stats.parallel_secs += pre.state.stats.parallel_secs;
            result.state.stats.coordinator_secs += pre.state.stats.coordinator_secs;
            let total_time = pre_time + result.elapsed;
            AnalysisOutcome {
                result,
                total_time,
                pre_time: Some(pre_time),
                csc: None,
                selected: Some(selected),
            }
        }
        Analysis::CutShortcut => run_analysis_opts(
            program,
            Analysis::CutShortcutWith(CscConfig::all()),
            budget,
            opts,
        ),
        Analysis::CutShortcutWith(cfg) => {
            let plugin = CutShortcut::new(program, cfg);
            let (mut result, plugin) =
                Solver::with_options(program, CiSelector, plugin, budget, opts).solve();
            result.analysis = "csc".to_owned();
            let total_time = result.elapsed;
            AnalysisOutcome {
                result,
                total_time,
                pre_time: None,
                csc: Some(plugin.stats().clone()),
                selected: None,
            }
        }
        Analysis::CscHybrid => {
            // Phase 1: CI pre-analysis + Zipper-e selection, as usual.
            let zopts = ZipperOptions::default();
            let (pre, _) =
                Solver::with_options(program, CiSelector, NoPlugin, budget, opts).solve();
            let pre_time = pre.elapsed;
            let zipper = ZipperE::select(program, &pre, zopts);
            // Phase 2: subtract the methods Cut-Shortcut already handles
            // (the paper's §3.4 suggestion) and run the plugin together
            // with the restricted selective selector.
            let cfg = CscConfig::all();
            let covered = crate::csc::pattern_methods(program, &cfg);
            let selected: HashSet<MethodId> =
                zipper.selected.difference(&covered).copied().collect();
            let main_budget = Budget {
                time: budget.time.map(|t| t.saturating_sub(pre_time)),
                max_propagations: budget.max_propagations,
            };
            let selector =
                SelectiveSelector::new(ObjSelector::new(zopts.k), selected.clone(), "CSC+sel");
            let plugin = CutShortcut::new(program, cfg);
            let (mut result, plugin) =
                Solver::with_options(program, selector, plugin, main_budget, opts).solve();
            result.analysis = "csc-hybrid".to_owned();
            // As for Zipper-e: keep the phase split a decomposition of the
            // two-phase row's wall-clock.
            result.state.stats.parallel_secs += pre.state.stats.parallel_secs;
            result.state.stats.coordinator_secs += pre.state.stats.coordinator_secs;
            let total_time = pre_time + result.elapsed;
            AnalysisOutcome {
                result,
                total_time,
                pre_time: Some(pre_time),
                csc: Some(plugin.stats().clone()),
                selected: Some(selected),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clients::PrecisionMetrics;

    /// The paper's Figure 1 motivating example: CSC must be exactly as
    /// precise as context sensitivity here, while CI merges the two items.
    const MOTIVATING: &str = r#"
        class Carton {
            Item item;
            void setItem(Item item) { this.item = item; }
            Item getItem() { Item r; r = this.item; return r; }
        }
        class Item { }
        class Main {
            static void main() {
                Carton c1 = new Carton();
                Item item1 = new Item();
                c1.setItem(item1);
                Item result1 = c1.getItem();
                Carton c2 = new Carton();
                Item item2 = new Item();
                c2.setItem(item2);
                Item result2 = c2.getItem();
            }
        }
    "#;

    fn pt_of(outcome: &AnalysisOutcome<'_>, program: &Program, var_name: &str) -> Vec<String> {
        let main = program.entry();
        let v = program
            .method(main)
            .vars()
            .iter()
            .copied()
            .find(|&v| program.var(v).name() == var_name)
            .expect("variable exists");
        let mut objs: Vec<String> = outcome
            .result
            .state
            .pt_var_projected(v)
            .into_iter()
            .map(|o| program.obj(o).label().to_owned())
            .collect();
        objs.sort();
        objs
    }

    #[test]
    fn figure1_ci_merges_items() {
        let program = csc_frontend::compile(MOTIVATING).unwrap();
        let out = run_analysis(&program, Analysis::Ci, Budget::unlimited());
        assert_eq!(pt_of(&out, &program, "result1").len(), 2, "CI is imprecise");
        assert_eq!(pt_of(&out, &program, "result2").len(), 2);
    }

    #[test]
    fn figure1_csc_is_precise() {
        let program = csc_frontend::compile(MOTIVATING).unwrap();
        let out = run_analysis(&program, Analysis::CutShortcut, Budget::unlimited());
        assert_eq!(
            pt_of(&out, &program, "result1"),
            pt_of(&out, &program, "item1"),
            "CSC must recover the context-sensitive result"
        );
        assert_eq!(
            pt_of(&out, &program, "result2"),
            pt_of(&out, &program, "item2")
        );
        assert_eq!(pt_of(&out, &program, "result1").len(), 1);
        assert_eq!(pt_of(&out, &program, "result2").len(), 1);
        let stats = out.csc.as_ref().unwrap();
        assert_eq!(stats.cut_store_sites, 1);
        assert_eq!(stats.cut_return_methods, 1);
        assert_eq!(stats.shortcut_store_edges, 2);
        assert_eq!(stats.shortcut_load_edges, 2);
    }

    #[test]
    fn figure1_2obj_is_precise() {
        let program = csc_frontend::compile(MOTIVATING).unwrap();
        let out = run_analysis(&program, Analysis::KObj(2), Budget::unlimited());
        assert_eq!(pt_of(&out, &program, "result1").len(), 1);
        assert_eq!(pt_of(&out, &program, "result2").len(), 1);
    }

    #[test]
    fn csc_soundness_on_motivating_example() {
        let program = csc_frontend::compile(MOTIVATING).unwrap();
        let ci = run_analysis(&program, Analysis::Ci, Budget::unlimited());
        let csc = run_analysis(&program, Analysis::CutShortcut, Budget::unlimited());
        // CSC finds the same reachable methods and call edges as CI here.
        assert_eq!(
            ci.result.state.reachable_methods_projected(),
            csc.result.state.reachable_methods_projected()
        );
        assert_eq!(
            ci.result.state.call_edges_projected(),
            csc.result.state.call_edges_projected()
        );
        let m_ci = PrecisionMetrics::compute(&ci.result);
        let m_csc = PrecisionMetrics::compute(&csc.result);
        assert!(m_csc.fail_casts <= m_ci.fail_casts);
    }
}
