//! On-disk solved-result cache.
//!
//! Analysis results are pure functions of `(program, analysis,
//! options)`; re-running `csc resolve` (or any other driver) over an
//! unchanged input should answer from disk without running propagation
//! at all. This module caches the *projected* summary of a completed
//! solve — per-variable points-to sets, the reachable-method set, the
//! call-graph edge set, and the four precision metrics — which is
//! exactly the solver's observable output (everything the differential
//! harness compares) and orders of magnitude smaller than the solver
//! state itself.
//!
//! Mechanics mirror the compiled-IR cache (`csc_workloads::compiled`):
//!
//! * content-keyed file names — FNV-1a-64 over the canonical program
//!   encoding ([`csc_ir::Program::to_bytes`]) mixed with canonical
//!   analysis and option descriptors, plus the codec version, so stale
//!   layouts can never be misread;
//! * a dumb, versioned, bounds-checked binary codec: corrupt or
//!   truncated entries decode to `None` and read as misses, never
//!   panics;
//! * atomic population: temp file + rename, unique per process and
//!   call, so concurrent readers never observe a half-written entry;
//! * only **completed** results are cached (a budget-truncated solve is
//!   not a function of the inputs alone);
//! * opt out with `CSC_RESULT_CACHE=0`; redirect with
//!   `CSC_RESULT_CACHE_DIR` (default: the workspace
//!   `target/csc-results`).

use std::path::{Path, PathBuf};

use csc_ir::{CallSiteId, MethodId, ObjId, Program, VarId};

use crate::analyses::Analysis;
use crate::clients::PrecisionMetrics;
use crate::solver::{PtaResult, SolverOptions};

/// Magic bytes every encoded summary starts with.
const MAGIC: &[u8; 6] = b"CSCRS\0";
/// Format version; bump whenever the layout (or anything influencing the
/// summarized values) changes.
const VERSION: u32 = 1;

/// The projected summary of one completed solve — the cacheable answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SolvedSummary {
    /// The result's analysis tag (e.g. `"csc"`, `"CI"`).
    pub analysis: String,
    /// Projected points-to set per variable, indexed by `VarId`; covers
    /// every variable of the program.
    pub pts: Vec<Vec<ObjId>>,
    /// Projected reachable methods, ascending.
    pub reachable: Vec<MethodId>,
    /// Projected call-graph edges, ascending.
    pub call_edges: Vec<(CallSiteId, MethodId)>,
    /// The four precision metrics of the evaluation.
    pub metrics: PrecisionMetrics,
}

impl SolvedSummary {
    /// Captures the summary of a (completed) result.
    pub fn capture(program: &Program, result: &PtaResult<'_>) -> Self {
        let pts = (0..program.vars().len())
            .map(|i| result.state.pt_var_projected(VarId::from_usize(i)))
            .collect();
        SolvedSummary {
            analysis: result.analysis.clone(),
            pts,
            reachable: result
                .state
                .reachable_methods_projected()
                .into_iter()
                .collect(),
            call_edges: result.state.call_edges_projected().into_iter().collect(),
            metrics: PrecisionMetrics::compute(result),
        }
    }

    /// Encodes the summary (versioned magic header, little-endian,
    /// length-prefixed tables).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(1024);
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        let u32w = |buf: &mut Vec<u8>, v: u32| buf.extend_from_slice(&v.to_le_bytes());
        let lenw = |buf: &mut Vec<u8>, v: usize| {
            u32w(buf, u32::try_from(v).expect("table length fits u32"))
        };
        lenw(&mut buf, self.analysis.len());
        buf.extend_from_slice(self.analysis.as_bytes());
        lenw(&mut buf, self.pts.len());
        for set in &self.pts {
            lenw(&mut buf, set.len());
            for &o in set {
                u32w(&mut buf, o.raw());
            }
        }
        lenw(&mut buf, self.reachable.len());
        for &m in &self.reachable {
            u32w(&mut buf, m.raw());
        }
        lenw(&mut buf, self.call_edges.len());
        for &(s, m) in &self.call_edges {
            u32w(&mut buf, s.raw());
            u32w(&mut buf, m.raw());
        }
        for v in [
            self.metrics.fail_casts,
            self.metrics.reach_methods,
            self.metrics.poly_calls,
            self.metrics.call_edges,
        ] {
            buf.extend_from_slice(&(v as u64).to_le_bytes());
        }
        buf
    }

    /// Decodes a summary. `None` for anything malformed — wrong magic,
    /// stale version, truncation, trailing bytes — so cache readers
    /// treat damage as a miss.
    pub fn from_bytes(bytes: &[u8]) -> Option<SolvedSummary> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(MAGIC.len())? != MAGIC.as_slice() || r.u32()? != VERSION {
            return None;
        }
        let alen = r.u32()? as usize;
        let analysis = std::str::from_utf8(r.take(alen)?).ok()?.to_owned();
        let nvars = r.u32()? as usize;
        let mut pts = Vec::with_capacity(nvars.min(r.remaining() / 4));
        for _ in 0..nvars {
            let n = r.u32()? as usize;
            if n > r.remaining() / 4 {
                return None;
            }
            let mut set = Vec::with_capacity(n);
            for _ in 0..n {
                set.push(ObjId::new(r.u32()?));
            }
            pts.push(set);
        }
        let n = r.u32()? as usize;
        if n > r.remaining() / 4 {
            return None;
        }
        let reachable = (0..n)
            .map(|_| r.u32().map(MethodId::new))
            .collect::<Option<Vec<_>>>()?;
        let n = r.u32()? as usize;
        if n > r.remaining() / 8 {
            return None;
        }
        let call_edges = (0..n)
            .map(|_| Some((CallSiteId::new(r.u32()?), MethodId::new(r.u32()?))))
            .collect::<Option<Vec<_>>>()?;
        let mut metric = || r.u64().map(|v| v as usize);
        let metrics = PrecisionMetrics {
            fail_casts: metric()?,
            reach_methods: metric()?,
            poly_calls: metric()?,
            call_edges: metric()?,
        };
        if r.remaining() != 0 {
            return None;
        }
        Some(SolvedSummary {
            analysis,
            pts,
            reachable,
            call_edges,
            metrics,
        })
    }
}

/// Bounds-checked little-endian reader.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }
    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }
    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }
}

/// FNV-1a 64.
fn fnv1a64(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The cache key of `(program, analysis, options)`: FNV-1a-64 over the
/// canonical program encoding, chained through canonical analysis and
/// option descriptors and the codec version. Conservative by design —
/// options that are provably result-neutral (engine, thread count) still
/// key distinct entries; a cache must not depend on that theorem.
pub fn result_cache_key(program: &Program, analysis: &Analysis, opts: &SolverOptions) -> u64 {
    let mut h = fnv1a64(0xcbf2_9ce4_8422_2325, &program.to_bytes());
    h = fnv1a64(h, format!("{analysis:?}").as_bytes());
    h = fnv1a64(h, format!("{opts:?}").as_bytes());
    h ^ u64::from(VERSION).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Whether the result cache is enabled (`CSC_RESULT_CACHE=0` disables).
pub fn result_cache_enabled() -> bool {
    !matches!(
        std::env::var("CSC_RESULT_CACHE").as_deref(),
        Ok("0") | Ok("off")
    )
}

/// The cache directory: `CSC_RESULT_CACHE_DIR`, or the workspace
/// `target/csc-results` (anchored at this crate's manifest so tests and
/// binaries agree regardless of working directory).
pub fn result_cache_dir() -> PathBuf {
    std::env::var_os("CSC_RESULT_CACHE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/csc-results"))
}

/// Looks a summary up by key. Any I/O or decode failure — or a panic
/// anywhere in the read path (injected or organic) — is a miss, never an
/// abort: the cache is an accelerator, not a dependency.
pub fn load_result(dir: &Path, key: u64) -> Option<SolvedSummary> {
    std::panic::catch_unwind(|| {
        crate::fault::hit_io(crate::fault::FaultPoint::CacheRead).ok()?;
        let bytes = std::fs::read(dir.join(format!("{key:016x}.bin"))).ok()?;
        SolvedSummary::from_bytes(&bytes)
    })
    .unwrap_or(None)
}

/// Stores a summary under a key, best-effort and atomic (temp + rename,
/// unique per process and call, so concurrent harness processes sharing a
/// target dir never clobber each other's temp files). Transient I/O
/// errors and rename collisions get one bounded retry with a fresh temp
/// name, then the store is silently skipped; panics in the write path are
/// contained the same way. Callers must only pass summaries of
/// **completed** solves.
pub fn store_result(dir: &Path, key: u64, summary: &SolvedSummary) {
    let _ = std::panic::catch_unwind(|| {
        let path = dir.join(format!("{key:016x}.bin"));
        let attempt = || -> std::io::Result<()> {
            crate::fault::hit_io(crate::fault::FaultPoint::CacheWrite)?;
            std::fs::create_dir_all(dir)?;
            let tmp = path.with_extension(format!("tmp.{}.{}", std::process::id(), next_tmp_seq()));
            std::fs::write(&tmp, summary.to_bytes())?;
            std::fs::rename(&tmp, &path).inspect_err(|_| {
                // A failed rename must not strand the temp file.
                let _ = std::fs::remove_file(&tmp);
            })
        };
        if attempt().is_err() {
            let _ = attempt();
        }
    });
}

/// Process-unique temp-file sequence shared by cache writers.
pub fn next_tmp_seq() -> u64 {
    static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Budget;
    use crate::{run_analysis, Analysis};

    const SRC: &str = r#"
        class Item { }
        class Carton {
            Item item;
            void setItem(Item item) { this.item = item; }
            Item getItem() { Item r; r = this.item; return r; }
        }
        class Main {
            static void main() {
                Carton c = new Carton();
                Item i = new Item();
                c.setItem(i);
                Item got = c.getItem();
            }
        }
    "#;

    fn sample_summary() -> (csc_ir::Program, SolvedSummary) {
        let program = csc_frontend::compile(SRC).unwrap();
        let out = run_analysis(&program, Analysis::CutShortcut, Budget::unlimited());
        assert!(out.completed());
        let summary = SolvedSummary::capture(&program, &out.result);
        (program, summary)
    }

    #[test]
    fn summary_roundtrips() {
        let (_, summary) = sample_summary();
        let decoded = SolvedSummary::from_bytes(&summary.to_bytes()).expect("decodes");
        assert_eq!(summary, decoded);
        assert_eq!(decoded.analysis, "csc");
        assert!(!decoded.reachable.is_empty());
    }

    #[test]
    fn store_then_load_hits() {
        let (program, summary) = sample_summary();
        let dir = std::env::temp_dir().join(format!("csc-results-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let key = result_cache_key(&program, &Analysis::CutShortcut, &SolverOptions::default());
        assert!(load_result(&dir, key).is_none(), "cold cache must miss");
        store_result(&dir, key, &summary);
        assert_eq!(load_result(&dir, key).as_ref(), Some(&summary));
        // A different analysis (or options) keys a different entry.
        let other = result_cache_key(&program, &Analysis::Ci, &SolverOptions::default());
        assert_ne!(key, other);
        assert!(load_result(&dir, other).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The corrupt-entry contract: truncation and bit damage anywhere in
    /// the file must read as a miss, never a panic or a wrong summary.
    #[test]
    fn corrupt_entries_read_as_misses() {
        let (_, summary) = sample_summary();
        let good = summary.to_bytes();
        // Truncation at every prefix length.
        for cut in 0..good.len() {
            assert!(
                SolvedSummary::from_bytes(&good[..cut]).is_none(),
                "truncation at {cut} bytes must miss"
            );
        }
        // Single-bit flips: either a clean miss, or a decode to exactly
        // the flipped-field value — never a panic. (Most flips land in
        // length fields or the header and miss; id-payload flips decode
        // to a different but structurally valid summary, which the
        // content-addressed key makes unreachable in practice.)
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            let _ = SolvedSummary::from_bytes(&bad);
        }
        // Header and version flips specifically must always miss.
        for i in 0..10 {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            assert!(
                SolvedSummary::from_bytes(&bad).is_none(),
                "header flip at byte {i} must miss"
            );
        }
        // Trailing garbage must miss.
        let mut long = good.clone();
        long.push(0);
        assert!(SolvedSummary::from_bytes(&long).is_none());
    }

    /// A damaged on-disk entry must behave exactly like a miss for the
    /// load/store pair too.
    #[test]
    fn corrupt_file_is_a_miss() {
        let (program, summary) = sample_summary();
        let dir = std::env::temp_dir().join(format!("csc-results-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let key = result_cache_key(&program, &Analysis::CutShortcut, &SolverOptions::default());
        store_result(&dir, key, &summary);
        let path = dir.join(format!("{key:016x}.bin"));
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(bytes.len() / 2);
        std::fs::write(&path, &bytes).unwrap();
        assert!(
            load_result(&dir, key).is_none(),
            "truncated entry must miss"
        );
        // Re-store repopulates and the hit comes back.
        store_result(&dir, key, &summary);
        assert_eq!(load_result(&dir, key).as_ref(), Some(&summary));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The key must track program content, not identity.
    #[test]
    fn key_tracks_program_content() {
        let program = csc_frontend::compile(SRC).unwrap();
        let same = csc_frontend::compile(SRC).unwrap();
        let different =
            csc_frontend::compile("class Main { static void main() { Object o = new Object(); } }")
                .unwrap();
        let opts = SolverOptions::default();
        let a = result_cache_key(&program, &Analysis::Ci, &opts);
        assert_eq!(a, result_cache_key(&same, &Analysis::Ci, &opts));
        assert_ne!(a, result_cache_key(&different, &Analysis::Ci, &opts));
        assert_ne!(
            a,
            result_cache_key(&program, &Analysis::Ci, &opts.with_threads(4)),
            "options are part of the key"
        );
    }
}
