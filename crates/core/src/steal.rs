//! The async work-stealing propagation engine (`CSC_ENGINE=async`, the
//! default for multi-threaded solves).
//!
//! Where the bulk-synchronous engine (`shard.rs`) pays a full barrier plus
//! a sequential coordinator pass per round, this engine runs one
//! *continuous* propagation loop per worker: each worker owns its shard's
//! worklist (a deque of pending representatives), processes deltas as they
//! arrive, pushes cross-shard deltas through pooled outbox lanes the
//! moment a flush interval elapses, and — when its own queue drains —
//! *steals* a batch from the most loaded peer shard. Coordinator-only
//! operations (statement fan-out commits, call-graph merges, context
//! selection, SCC condensation epochs, plugin `apply`) happen at *pause
//! points*: the coordinator waits on a quiescence detector and only then
//! reclaims the shards, so the barrier tax is paid once per structural
//! phase instead of once per round.
//!
//! **Steal protocol.** Every shard lives in a [`ShardCell`]: the shard
//! state plus its worklist behind one mutex, with a lock-free queue-length
//! gauge for victim selection. The owner takes its cell with a blocking
//! lock; a thief only ever `try_lock`s, so the lock doubles as the steal
//! epoch — whoever holds it owns the shard's entire state (points-to rows,
//! pending accumulators, queue, logs) for the duration, and a contended
//! steal simply fails over to another victim instead of waiting. At most
//! one shard lock is ever held per thread, and inbox locks are only taken
//! while holding a shard lock (never the reverse), so the lock order is
//! acyclic by construction.
//!
//! **Quiescence detection.** Termination uses a distributed
//! work-counting scheme in the Dijkstra–Safra family, compressed to one
//! shared counter pair ([`Quiesce`]): every unit of work (a queued
//! representative, an in-flight delta message) is counted *before* it
//! becomes visible, and uncounted *after* it is fully processed —
//! including after every message it spawned has itself been counted. The
//! phase is over exactly when every worker is parked and the outstanding
//! count is zero; because decrements always trail the increments they
//! caused, the counter can over-approximate but never under-approximate
//! pending work, so the detector cannot terminate the phase early (see
//! the proptest harness in `tests/quiesce_prop.rs`).
//!
//! **Determinism contract.** The async engine is deterministic in
//! *results*, not schedule: deltas coalesce in the pending accumulators in
//! arrival order, so per-run propagation counts and log orders vary, but
//! the fixpoint is a monotone set union whose final state — and therefore
//! every projection and precision metric — is schedule-independent and
//! bit-identical to the sequential engine's (enforced by the differential
//! harness). The bulk-synchronous engine remains available via
//! `CSC_ENGINE=bsp` for strict per-thread-count reproducibility.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, TryLockError};
use std::time::Duration;

use crate::pts::PointsToSet;
use crate::shard::{discover_fan_out, DeltaCommit, Derived, RoundShared, Shard};
use crate::solver::{Plugin, PtrId};

/// One cross-shard delta message: `(destination representative, delta)`.
pub(crate) type Msg = (u32, Arc<PointsToSet>);

/// A batch of delta messages travelling through one outbox lane; recycled
/// through the engine's [`BufPool`].
pub(crate) type MsgBatch = Vec<Msg>;

/// Representatives processed between outbox flushes (and abort checks).
const BATCH: usize = 64;
/// Minimum victim queue length worth stealing from.
const STEAL_MIN: usize = 2;
/// Maximum representatives processed per steal before re-checking the
/// thief's own shard.
const STEAL_BATCH: usize = 128;
/// Idle park granularity: parked workers re-poll for steal opportunities
/// (and the coordinator re-polls quiescence) at this interval, bounding
/// the cost of a lost wakeup without any unsafe signalling.
const PARK_POLL: Duration = Duration::from_micros(500);

/// Locks a mutex, treating poisoning (a peer worker panicked) as
/// recoverable: the panic is re-raised by the worker pool's report
/// protocol, so the state behind the lock is only read for teardown.
fn lock_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The quiescence detector for the async propagation loop: a
/// Dijkstra–Safra-style termination counter compressed to one shared
/// outstanding-work count plus an idle-worker gauge.
///
/// Protocol (the engine's side of the contract):
///
/// 1. a unit of work is counted with [`Quiesce::add_work`] *before* it
///    becomes visible to any consumer (queue push, inbox send);
/// 2. a unit is uncounted with [`Quiesce::finish_work`] only after it has
///    been fully processed *and* every unit it spawned has been counted
///    (workers flush their outboxes before flushing their batched
///    decrements);
/// 3. a worker enters the idle set only with an empty queue, empty
///    outboxes, and no pending decrements.
///
/// Under 1–3, `outstanding == 0 && idle == workers` implies no work
/// exists anywhere in the system — and because decrements are batched,
/// the counter may transiently *over*-state pending work but can never
/// under-state it, so [`Quiesce::is_quiescent`] has no false positives.
pub struct Quiesce {
    workers: usize,
    outstanding: AtomicI64,
    idle: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Quiesce {
    /// Creates a detector for `workers` propagation workers, with no
    /// outstanding work and every worker considered active.
    pub fn new(workers: usize) -> Self {
        Quiesce {
            workers,
            outstanding: AtomicI64::new(0),
            idle: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Counts `n` fresh units of work. Must run *before* the units become
    /// visible to any consumer.
    pub fn add_work(&self, n: u64) {
        if n > 0 {
            self.outstanding.fetch_add(
                i64::try_from(n).expect("work count fits i64"),
                Ordering::SeqCst,
            );
        }
    }

    /// Uncounts `n` fully-processed units. Decrements may be batched and
    /// delayed arbitrarily — the detector only over-counts in the
    /// meantime — but each must run *after* the work its unit spawned has
    /// been counted.
    pub fn finish_work(&self, n: u64) {
        if n > 0 {
            self.outstanding.fetch_sub(
                i64::try_from(n).expect("work count fits i64"),
                Ordering::SeqCst,
            );
        }
    }

    /// Marks the calling worker idle. Callers uphold protocol rule 3: no
    /// local work, no unflushed outboxes, no pending decrements.
    pub fn enter_idle(&self) {
        let prev = self.idle.fetch_add(1, Ordering::SeqCst);
        if prev + 1 == self.workers {
            // Taking the lock orders the notification after a concurrent
            // waiter's predicate check, so the last worker to park cannot
            // slip a wakeup past `wait_until`.
            let _g = lock_ok(&self.lock);
            self.cv.notify_all();
        }
    }

    /// Marks the calling worker active again.
    pub fn leave_idle(&self) {
        self.idle.fetch_sub(1, Ordering::SeqCst);
    }

    /// Number of currently idle workers.
    pub fn idle_workers(&self) -> usize {
        self.idle.load(Ordering::SeqCst)
    }

    /// Whether the system is quiescent: every worker idle and no
    /// outstanding work. Once true with all workers parked, no worker can
    /// create new work (creating work requires holding a counted unit), so
    /// the observation is stable.
    pub fn is_quiescent(&self) -> bool {
        self.idle.load(Ordering::SeqCst) == self.workers
            && self.outstanding.load(Ordering::SeqCst) == 0
    }

    /// Blocks until `pred` holds, waking on idle-set notifications and on
    /// a poll interval as a lost-wakeup backstop.
    pub(crate) fn wait_until(&self, pred: impl Fn() -> bool) {
        let mut g = lock_ok(&self.lock);
        loop {
            if pred() {
                return;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(g, Duration::from_millis(1))
                .unwrap_or_else(|e| e.into_inner());
            g = guard;
        }
    }
}

/// A freelist of reusable vectors: the async delta path (and the BSP
/// engine's outbox lanes) recycle their per-shard packet buffers through
/// one pool per worker pool, so steady-state propagation allocates
/// nothing on the message path.
pub(crate) struct BufPool<T> {
    free: Mutex<Vec<Vec<T>>>,
}

/// Retained-buffer cap: beyond this the freelist drops returned buffers
/// instead of growing without bound.
const POOL_CAP: usize = 1024;

impl<T> BufPool<T> {
    pub(crate) fn new() -> Self {
        BufPool {
            free: Mutex::new(Vec::new()),
        }
    }

    /// Pops a recycled (empty) buffer, or allocates a fresh one.
    pub(crate) fn get(&self) -> Vec<T> {
        lock_ok(&self.free).pop().unwrap_or_default()
    }

    /// Returns a buffer to the pool, clearing it (capacity retained).
    pub(crate) fn put(&self, mut buf: Vec<T>) {
        buf.clear();
        let mut free = lock_ok(&self.free);
        if free.len() < POOL_CAP {
            free.push(buf);
        }
    }
}

/// One shard's complete async-phase state: the shard storage plus the
/// worker-owned worklist and the phase-accumulated logs the coordinator
/// commits at the pause point.
pub(crate) struct AsyncShard {
    /// The slot storage (points-to sets, pending accumulators, successor
    /// rows) exactly as the BSP engine owns it.
    pub(crate) shard: Shard,
    /// Pending representatives, each holding exactly one counted unit of
    /// outstanding work.
    pub(crate) queue: VecDeque<u32>,
    /// Committed deltas in processing order, with exclusive packet-range
    /// ends into `derived` (same layout as [`crate::shard::WorkerResult`]).
    pub(crate) stmt: Vec<DeltaCommit>,
    /// Phase-accumulated derived packets (fan-out replay, call
    /// resolutions, plugin reactions).
    pub(crate) derived: Vec<Derived>,
    /// Worklist propagations with a non-empty delta.
    pub(crate) propagations: u64,
}

/// A shard slot in the steal plane: the state behind the owner/thief
/// mutex, plus a lock-free queue-length gauge thieves scan for victim
/// selection (advisory — the lock is the truth).
pub(crate) struct ShardCell {
    slot: Mutex<AsyncShard>,
    qlen: AtomicUsize,
}

impl ShardCell {
    /// Wraps a shard and its seed worklist (each seed carries one counted
    /// unit of work; the coordinator counts them via
    /// [`AsyncCtrl::seed_work`] before the workers start).
    pub(crate) fn new(shard: Shard, seed: Vec<u32>) -> Self {
        let qlen = seed.len();
        ShardCell {
            slot: Mutex::new(AsyncShard {
                shard,
                queue: seed.into(),
                stmt: Vec::new(),
                derived: Vec::new(),
                propagations: 0,
            }),
            qlen: AtomicUsize::new(qlen),
        }
    }

    /// Reclaims the shard state after the phase (workers have exited).
    pub(crate) fn into_inner(self) -> AsyncShard {
        self.slot.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// One shard's delta inbox: batches of cross-shard messages, plus a
/// condvar the owner parks on.
struct Inbox {
    msgs: Mutex<Vec<MsgBatch>>,
    cv: Condvar,
}

/// The control plane of one async propagation phase: quiescence detector,
/// per-shard inboxes, abort/done flags, and the phase counters.
pub(crate) struct AsyncCtrl {
    /// The termination detector (public so the coordinator can wait on
    /// it; workers drive it through the worker loop).
    pub(crate) quiesce: Quiesce,
    inboxes: Vec<Inbox>,
    /// Budget blown (wall-clock or propagation cap) or a worker died:
    /// workers stop taking work and park until the coordinator ends the
    /// phase.
    aborted: AtomicBool,
    /// Phase over: set by the coordinator once quiescent (or aborted with
    /// all workers parked); workers exit their loops.
    done: AtomicBool,
    steals: AtomicU64,
    /// Phase-global propagation count, used only to enforce
    /// `max_propagations` promptly (per-shard exact counts are merged by
    /// the coordinator afterwards).
    props: AtomicU64,
    prop_limit: u64,
    bufs: Arc<BufPool<Msg>>,
}

impl AsyncCtrl {
    /// Creates the control plane for `n` workers. `prop_limit` is the
    /// remaining propagation budget (`None` = unlimited); `bufs` is the
    /// worker pool's shared packet freelist.
    pub(crate) fn new(n: usize, prop_limit: Option<u64>, bufs: Arc<BufPool<Msg>>) -> Self {
        AsyncCtrl {
            quiesce: Quiesce::new(n),
            inboxes: (0..n)
                .map(|_| Inbox {
                    msgs: Mutex::new(Vec::new()),
                    cv: Condvar::new(),
                })
                .collect(),
            aborted: AtomicBool::new(false),
            done: AtomicBool::new(false),
            steals: AtomicU64::new(0),
            props: AtomicU64::new(0),
            prop_limit: prop_limit.unwrap_or(u64::MAX),
            bufs,
        }
    }

    /// Counts the coordinator's seed worklist entries before the workers
    /// start.
    pub(crate) fn seed_work(&self, n: u64) {
        self.quiesce.add_work(n);
    }

    /// Successful steals this phase.
    pub(crate) fn steal_count(&self) -> u64 {
        self.steals.load(Ordering::SeqCst)
    }

    /// Whether the phase aborted (budget blown or a worker died).
    pub(crate) fn was_aborted(&self) -> bool {
        self.aborted.load(Ordering::SeqCst)
    }

    /// Blocks the coordinator until the phase is quiescent — or, after an
    /// abort, until every worker has parked (outstanding work never drains
    /// on abort; parked-everywhere is the stable state instead).
    pub(crate) fn wait_quiescent(&self, workers: usize) {
        self.quiesce.wait_until(|| {
            self.quiesce.is_quiescent()
                || (self.aborted.load(Ordering::SeqCst) && self.quiesce.idle_workers() == workers)
        });
    }

    /// Ends the phase: sets `done` and wakes every parked worker.
    pub(crate) fn finish(&self) {
        self.done.store(true, Ordering::SeqCst);
        for inbox in &self.inboxes {
            // Lock-then-notify so a worker between its predicate check and
            // its condvar wait cannot miss the wakeup.
            let _g = lock_ok(&inbox.msgs);
            inbox.cv.notify_all();
        }
    }

    /// Drains every undelivered inbox message after an aborted phase so
    /// the coordinator can restore them to the sequential worklist.
    pub(crate) fn drain_leftovers(&self) -> Vec<Msg> {
        let mut left = Vec::new();
        for inbox in &self.inboxes {
            let batches = std::mem::take(&mut *lock_ok(&inbox.msgs));
            for mut batch in batches {
                left.append(&mut batch);
                self.bufs.put(batch);
            }
        }
        left
    }

    /// Marks the calling worker permanently dead (panicked): aborts the
    /// phase and parks the worker's idle slot forever so
    /// [`AsyncCtrl::wait_quiescent`]'s abort escape can still fire.
    pub(crate) fn mark_dead(&self) {
        self.aborted.store(true, Ordering::SeqCst);
        self.quiesce.enter_idle();
    }

    /// Coordinator-side abort (fault injection, external cancellation):
    /// workers stop taking work and park, and
    /// [`AsyncCtrl::wait_quiescent`]'s abort escape fires once they have.
    /// Unlike [`AsyncCtrl::mark_dead`] this does not park an idle slot —
    /// the coordinator is not a counted worker.
    pub(crate) fn abort(&self) {
        self.aborted.store(true, Ordering::SeqCst);
    }

    /// Folds `n` fresh propagations into the phase-global count; trips the
    /// abort flag when the budget is blown.
    fn note_props(&self, n: u64) {
        if n == 0 {
            return;
        }
        let total = self.props.fetch_add(n, Ordering::SeqCst) + n;
        if total > self.prop_limit {
            self.aborted.store(true, Ordering::SeqCst);
        }
    }
}

/// The continuous propagation loop of one async worker: drain the owned
/// shard, steal from the most loaded peer when dry, park when the whole
/// plane looks idle. Runs until the coordinator ends the phase.
pub(crate) fn run_async_worker<P: Plugin>(
    me: usize,
    shared: &RoundShared<'_, P>,
    ctrl: &AsyncCtrl,
    cells: &[ShardCell],
) {
    let n = cells.len();
    let mut out: Vec<MsgBatch> = (0..n).map(|_| ctrl.bufs.get()).collect();
    loop {
        if ctrl.done.load(Ordering::SeqCst) {
            break;
        }
        if !ctrl.aborted.load(Ordering::SeqCst) {
            if work_shard(me, me, shared, ctrl, cells, &mut out, usize::MAX) > 0 {
                continue;
            }
            if try_steal(me, shared, ctrl, cells, &mut out) {
                continue;
            }
        }
        park(me, ctrl);
    }
    for buf in out {
        ctrl.bufs.put(buf);
    }
}

/// Drains shard `victim`'s worklist (up to `limit` representatives) as
/// worker `me`. The owner blocks on the cell lock; a thief `try_lock`s and
/// backs off on contention. Returns the number of representatives
/// processed.
///
/// Counting discipline: outbox flushes (which *count* spawned work) always
/// run before the batched [`Quiesce::finish_work`] decrement of the units
/// that spawned it, so the detector never under-counts.
fn work_shard<P: Plugin>(
    me: usize,
    victim: usize,
    shared: &RoundShared<'_, P>,
    ctrl: &AsyncCtrl,
    cells: &[ShardCell],
    out: &mut [MsgBatch],
    limit: usize,
) -> usize {
    crate::fault::hit(crate::fault::FaultPoint::WorkerRound);
    let cell = &cells[victim];
    let mut guard = if victim == me {
        lock_ok(&cell.slot)
    } else {
        match cell.slot.try_lock() {
            Ok(g) => g,
            Err(TryLockError::WouldBlock) => return 0,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
        }
    };
    let sh = &mut *guard;
    let mut processed = 0usize;
    let mut done_units = 0u64;
    let mut props_mark = sh.propagations;
    loop {
        done_units += drain_inbox(victim, shared, ctrl, sh, cell);
        let Some(rep) = sh.queue.pop_front() else {
            break;
        };
        cell.qlen.fetch_sub(1, Ordering::SeqCst);
        done_units += process_rep(rep, victim, shared, ctrl, sh, cell, out);
        processed += 1;
        if processed >= limit {
            break;
        }
        if processed.is_multiple_of(BATCH) {
            flush_out(ctrl, out);
            ctrl.quiesce.finish_work(done_units);
            done_units = 0;
            ctrl.note_props(sh.propagations - props_mark);
            props_mark = sh.propagations;
            if let Some(d) = shared.deadline {
                if std::time::Instant::now() > d {
                    ctrl.aborted.store(true, Ordering::SeqCst);
                }
            }
            if ctrl.aborted.load(Ordering::SeqCst) {
                break;
            }
        }
    }
    ctrl.note_props(sh.propagations - props_mark);
    drop(guard);
    flush_out(ctrl, out);
    ctrl.quiesce.finish_work(done_units);
    processed
}

/// Processes one queued representative of shard `s`: takes its pending
/// accumulator, unions it into the owned points-to set, routes the
/// genuinely new elements to successors (self-shard directly into
/// pending, cross-shard through the outbox), and replays fan-out
/// discovery into the shard's phase logs. Returns the finished work units
/// (always 1 — the unit the queue entry carried).
fn process_rep<P: Plugin>(
    rep: u32,
    s: usize,
    shared: &RoundShared<'_, P>,
    ctrl: &AsyncCtrl,
    sh: &mut AsyncShard,
    cell: &ShardCell,
    out: &mut [MsgBatch],
) -> u64 {
    debug_assert_eq!(shared.shard_of(rep), s as u32);
    let local = shared.local_of(rep);
    let incoming = std::mem::take(&mut sh.shard.pending[local]);
    if incoming.is_empty() {
        return 1;
    }
    let Some(delta) = sh.shard.pts[local].union_delta(&incoming) else {
        return 1;
    };
    sh.propagations += 1;
    let delta = Arc::new(delta);
    for (t, filter) in sh.shard.succ.iter_row(local) {
        // Stored targets may be stale (merged away); canonicalize like the
        // sequential engine's enqueue does.
        let trep = shared.reps.find(t);
        if trep == rep {
            continue;
        }
        let payload = match filter {
            None => Arc::clone(&delta),
            Some(class) => Arc::new(crate::shard::filter_pts(
                &delta,
                class,
                &shared.obj_keys,
                shared.program,
            )),
        };
        if payload.is_empty() {
            continue;
        }
        let dest = shared.shard_of(trep) as usize;
        if dest == s {
            // Self-shard delivery: union straight into the owned pending
            // row — no message, no inbox round-trip.
            let dl = shared.local_of(trep);
            let slot = &mut sh.shard.pending[dl];
            let was_empty = slot.is_empty();
            slot.union_with(&payload);
            if was_empty {
                ctrl.quiesce.add_work(1);
                sh.queue.push_back(trep);
                cell.qlen.fetch_add(1, Ordering::SeqCst);
            }
        } else {
            out[dest].push((trep, payload));
        }
    }
    discover_fan_out(shared, rep, &delta, &mut sh.derived);
    let end = u32::try_from(sh.derived.len()).expect("packet count fits u32");
    sh.stmt.push((PtrId(rep), delta, end));
    1
}

/// Merges shard `s`'s undelivered inbox batches into its pending
/// accumulators. A message landing on an already-queued representative
/// coalesces — its work unit is finished (returned for the caller's
/// batched decrement); a message waking an empty accumulator transfers
/// its unit to the new queue entry (no counter traffic at all).
fn drain_inbox<P: Plugin>(
    s: usize,
    shared: &RoundShared<'_, P>,
    ctrl: &AsyncCtrl,
    sh: &mut AsyncShard,
    cell: &ShardCell,
) -> u64 {
    let batches = {
        let mut msgs = lock_ok(&ctrl.inboxes[s].msgs);
        if msgs.is_empty() {
            return 0;
        }
        std::mem::take(&mut *msgs)
    };
    let mut coalesced = 0u64;
    for mut batch in batches {
        for (trep, payload) in batch.drain(..) {
            debug_assert_eq!(shared.shard_of(trep), s as u32);
            let slot = &mut sh.shard.pending[shared.local_of(trep)];
            let was_empty = slot.is_empty();
            slot.union_with(&payload);
            if was_empty {
                sh.queue.push_back(trep);
                cell.qlen.fetch_add(1, Ordering::SeqCst);
            } else {
                coalesced += 1;
            }
        }
        ctrl.bufs.put(batch);
    }
    coalesced
}

/// Ships every non-empty outbox lane to its shard's inbox. Counts the
/// messages as outstanding work *before* they become visible, upholding
/// the quiescence protocol.
fn flush_out(ctrl: &AsyncCtrl, out: &mut [MsgBatch]) {
    crate::fault::hit(crate::fault::FaultPoint::OutboxSend);
    for (d, buf) in out.iter_mut().enumerate() {
        if buf.is_empty() {
            continue;
        }
        let batch = std::mem::replace(buf, ctrl.bufs.get());
        ctrl.quiesce
            .add_work(u64::try_from(batch.len()).expect("batch length fits u64"));
        let inbox = &ctrl.inboxes[d];
        lock_ok(&inbox.msgs).push(batch);
        inbox.cv.notify_one();
    }
}

/// Picks the most loaded peer shard (queue length ≥ [`STEAL_MIN`]) and
/// drains up to [`STEAL_BATCH`] of its representatives. Returns whether
/// any work was actually done.
fn try_steal<P: Plugin>(
    me: usize,
    shared: &RoundShared<'_, P>,
    ctrl: &AsyncCtrl,
    cells: &[ShardCell],
    out: &mut [MsgBatch],
) -> bool {
    let mut best: Option<(usize, usize)> = None;
    for (i, cell) in cells.iter().enumerate() {
        if i == me {
            continue;
        }
        let len = cell.qlen.load(Ordering::SeqCst);
        if len >= STEAL_MIN && best.is_none_or(|(_, b)| len > b) {
            best = Some((i, len));
        }
    }
    let Some((victim, _)) = best else {
        return false;
    };
    if work_shard(me, victim, shared, ctrl, cells, out, STEAL_BATCH) > 0 {
        ctrl.steals.fetch_add(1, Ordering::SeqCst);
        true
    } else {
        false
    }
}

/// Parks worker `me` on its inbox condvar until a message arrives, the
/// park poll elapses (to re-scan for steal opportunities), or the
/// coordinator ends the phase. The idle window is bracketed by
/// `enter_idle`/`leave_idle` so the quiescence detector sees it.
fn park(me: usize, ctrl: &AsyncCtrl) {
    let inbox = &ctrl.inboxes[me];
    let mut msgs = lock_ok(&inbox.msgs);
    loop {
        if ctrl.done.load(Ordering::SeqCst) {
            return;
        }
        let aborted = ctrl.aborted.load(Ordering::SeqCst);
        if !aborted && !msgs.is_empty() {
            return;
        }
        ctrl.quiesce.enter_idle();
        if aborted {
            // Aborted: undelivered messages stay put for the coordinator's
            // leftover drain; wait purely on the phase-end signal.
            while !ctrl.done.load(Ordering::SeqCst) {
                msgs = inbox.cv.wait(msgs).unwrap_or_else(|e| e.into_inner());
            }
            ctrl.quiesce.leave_idle();
            return;
        }
        let (guard, timeout) = inbox
            .cv
            .wait_timeout(msgs, PARK_POLL)
            .unwrap_or_else(|e| e.into_inner());
        msgs = guard;
        ctrl.quiesce.leave_idle();
        if timeout.timed_out() || !msgs.is_empty() || ctrl.done.load(Ordering::SeqCst) {
            return;
        }
        // Spurious wakeup with nothing to do: re-park.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bufpool_recycles_capacity() {
        let pool: BufPool<u32> = BufPool::new();
        let mut b = pool.get();
        b.extend([1, 2, 3]);
        let cap = b.capacity();
        pool.put(b);
        let b2 = pool.get();
        assert!(b2.is_empty());
        assert!(b2.capacity() >= cap);
    }

    #[test]
    fn quiesce_counts_and_idles() {
        let q = Quiesce::new(2);
        assert!(!q.is_quiescent());
        q.add_work(3);
        q.enter_idle();
        q.enter_idle();
        assert!(!q.is_quiescent());
        q.finish_work(3);
        assert!(q.is_quiescent());
        q.leave_idle();
        assert!(!q.is_quiescent());
        assert_eq!(q.idle_workers(), 1);
    }

    #[test]
    fn quiesce_wait_until_returns_when_pred_holds() {
        let q = Quiesce::new(1);
        q.enter_idle();
        q.wait_until(|| q.is_quiescent());
    }
}
