//! Deterministic fault injection for the solve lifecycle.
//!
//! The failure plane (worker panic isolation, typed [`SolveError`]s, cache
//! degradation, serve-mode snapshots) is only trustworthy if every failure
//! edge can be exercised on demand, deterministically. This module provides
//! **named fault points** compiled into the hot paths but reduced to a single
//! relaxed atomic load when unarmed — effectively free.
//!
//! ## Arming
//!
//! Faults are armed from the environment (`CSC_FAULT`) or programmatically
//! ([`arm`] / [`arm_spec`]). The grammar is a comma-separated schedule:
//!
//! ```text
//! CSC_FAULT=point:nth[:panic|err|delay][,point:nth[:mode]...]
//! ```
//!
//! `point` is one of the [`FaultPoint`] names, `nth` is the 1-based hit count
//! at which the fault fires (each arm fires exactly once, then disarms —
//! retries after a fault observe a clean world), and `mode` defaults to
//! `panic`:
//!
//! * `panic` — panic with a human-readable payload; exercises the poisoned
//!   path (pool isolation, guarded entry points).
//! * `err` — surface a typed error: I/O fault points return `io::Error`,
//!   propagation fault points unwind with the [`InjectedFault`] marker which
//!   the catch sites translate into [`SolveError::Fault`] instead of
//!   [`SolveError::Poisoned`].
//! * `delay` — sleep briefly at the fault point; exercises budget/timeout
//!   interleavings without killing anything.
//!
//! Hit counting is process-global and deterministic for deterministic
//! schedules (sequential and BSP engines); the async engine's hit order is
//! schedule-dependent, but every mode still yields a typed, survivable
//! outcome — that is the property the chaos matrix pins.
//!
//! [`SolveError`]: crate::solver::SolveError
//! [`SolveError::Fault`]: crate::solver::SolveError::Fault
//! [`SolveError::Poisoned`]: crate::solver::SolveError::Poisoned

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;

/// A named fault point threaded through the solve lifecycle.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FaultPoint {
    /// Reading a solved-result or compiled-IR cache entry.
    CacheRead,
    /// Writing (tmp + rename) a cache entry.
    CacheWrite,
    /// A propagation worker starting a unit of round work (sequential
    /// drain iteration, BSP `run_worker` entry, async shard acquisition).
    WorkerRound,
    /// A worker flushing its outbox of derived packets to peers.
    OutboxSend,
    /// Decoding a `ProgramDelta` byte stream (serve/resolve ingest).
    DeltaDecode,
    /// The coordinator's async quiescence wait.
    Quiescence,
}

/// All fault points, in schedule order (used by the chaos matrix).
pub const ALL_POINTS: [FaultPoint; 6] = [
    FaultPoint::CacheRead,
    FaultPoint::CacheWrite,
    FaultPoint::WorkerRound,
    FaultPoint::OutboxSend,
    FaultPoint::DeltaDecode,
    FaultPoint::Quiescence,
];

impl FaultPoint {
    /// The point's `CSC_FAULT` name.
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::CacheRead => "cache-read",
            FaultPoint::CacheWrite => "cache-write",
            FaultPoint::WorkerRound => "worker-round",
            FaultPoint::OutboxSend => "outbox-send",
            FaultPoint::DeltaDecode => "delta-decode",
            FaultPoint::Quiescence => "quiescence",
        }
    }

    /// Parses a `CSC_FAULT` point name.
    pub fn parse(s: &str) -> Option<FaultPoint> {
        ALL_POINTS.iter().copied().find(|p| p.name() == s)
    }

    fn index(self) -> usize {
        ALL_POINTS.iter().position(|&p| p == self).unwrap()
    }
}

impl std::fmt::Display for FaultPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How an armed fault fires.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultMode {
    /// Panic with a string payload (exercises the poisoned path).
    Panic,
    /// Typed error: `io::Error` at I/O points, [`InjectedFault`] unwind at
    /// propagation points.
    Err,
    /// Sleep ~5ms at the fault point (exercises budget interleavings).
    Delay,
}

impl FaultMode {
    /// Parses a `CSC_FAULT` mode name.
    pub fn parse(s: &str) -> Option<FaultMode> {
        match s {
            "panic" => Some(FaultMode::Panic),
            "err" => Some(FaultMode::Err),
            "delay" => Some(FaultMode::Delay),
            _ => None,
        }
    }
}

/// Panic payload marking an `err`-mode injection at a propagation fault
/// point (which has no `Result` channel to thread a typed error through).
/// Catch sites downcast to this to produce `SolveError::Fault` instead of
/// `SolveError::Poisoned`.
#[derive(Copy, Clone, Debug)]
pub struct InjectedFault(pub FaultPoint);

const MODE_PANIC: u8 = 0;
const MODE_ERR: u8 = 1;
const MODE_DELAY: u8 = 2;

/// One fault point's arm state. `nth == 0` means disarmed; a fired arm
/// records itself in `fired` and disarms.
struct Slot {
    nth: AtomicU64,
    hits: AtomicU64,
    mode: AtomicU8,
    fired: AtomicBool,
}

#[allow(clippy::declare_interior_mutable_const)]
const SLOT_INIT: Slot = Slot {
    nth: AtomicU64::new(0),
    hits: AtomicU64::new(0),
    mode: AtomicU8::new(MODE_PANIC),
    fired: AtomicBool::new(false),
};

static SLOTS: [Slot; 6] = [SLOT_INIT; 6];
/// Fast-path gate: false ⇒ every fault helper is a single relaxed load.
static ARMED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: OnceLock<()> = OnceLock::new();

fn init_from_env() {
    ENV_INIT.get_or_init(|| {
        if let Ok(spec) = std::env::var("CSC_FAULT") {
            if !spec.is_empty() {
                // An unparseable env schedule is a hard error: a chaos run
                // silently testing nothing is worse than failing loudly.
                arm_spec(&spec).expect("invalid CSC_FAULT schedule");
            }
        }
    });
}

/// Arms one fault point to fire on its `nth` hit (1-based) with `mode`.
/// Replaces any existing arm for the point and resets its hit counter.
pub fn arm(point: FaultPoint, nth: u64, mode: FaultMode) {
    let slot = &SLOTS[point.index()];
    slot.hits.store(0, Ordering::SeqCst);
    slot.fired.store(false, Ordering::SeqCst);
    slot.mode.store(
        match mode {
            FaultMode::Panic => MODE_PANIC,
            FaultMode::Err => MODE_ERR,
            FaultMode::Delay => MODE_DELAY,
        },
        Ordering::SeqCst,
    );
    slot.nth.store(nth.max(1), Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
}

/// Parses and arms a `point:nth[:mode]` comma-separated schedule. The
/// special spec `clear` disarms everything.
pub fn arm_spec(spec: &str) -> Result<(), String> {
    if spec.trim() == "clear" {
        clear_all();
        return Ok(());
    }
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let mut it = part.split(':');
        let point = it
            .next()
            .and_then(FaultPoint::parse)
            .ok_or_else(|| format!("unknown fault point in `{part}`"))?;
        let nth: u64 = it
            .next()
            .ok_or_else(|| format!("missing nth in `{part}`"))?
            .parse()
            .map_err(|_| format!("bad nth in `{part}`"))?;
        let mode = match it.next() {
            None => FaultMode::Panic,
            Some(m) => FaultMode::parse(m).ok_or_else(|| format!("bad mode in `{part}`"))?,
        };
        if it.next().is_some() {
            return Err(format!("trailing fields in `{part}`"));
        }
        arm(point, nth, mode);
    }
    Ok(())
}

/// Disarms every fault point and clears fired markers.
pub fn clear_all() {
    for slot in &SLOTS {
        slot.nth.store(0, Ordering::SeqCst);
        slot.hits.store(0, Ordering::SeqCst);
        slot.fired.store(false, Ordering::SeqCst);
    }
    ARMED.store(false, Ordering::SeqCst);
}

/// True if `point`'s arm has fired since it was last armed. Lets tests
/// distinguish "survived the fault" from "the fault never triggered".
pub fn fired(point: FaultPoint) -> bool {
    SLOTS[point.index()].fired.load(Ordering::SeqCst)
}

/// Counts a hit at `point`; returns the firing mode if this hit is the
/// armed `nth`. Consuming: the arm disarms once it fires. No-op (one
/// relaxed load) when nothing is armed.
pub fn fires(point: FaultPoint) -> Option<FaultMode> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    let slot = &SLOTS[point.index()];
    let nth = slot.nth.load(Ordering::SeqCst);
    if nth == 0 {
        return None;
    }
    let hit = slot.hits.fetch_add(1, Ordering::SeqCst) + 1;
    if hit != nth {
        return None;
    }
    // Disarm before acting so a retry after catching observes a clean world.
    slot.nth.store(0, Ordering::SeqCst);
    slot.fired.store(true, Ordering::SeqCst);
    if !SLOTS.iter().any(|s| s.nth.load(Ordering::SeqCst) != 0) {
        ARMED.store(false, Ordering::SeqCst);
    }
    Some(match slot.mode.load(Ordering::SeqCst) {
        MODE_ERR => FaultMode::Err,
        MODE_DELAY => FaultMode::Delay,
        _ => FaultMode::Panic,
    })
}

/// Fault hook for propagation-side points: panics (`panic` mode), unwinds
/// with the [`InjectedFault`] marker (`err` mode), or sleeps (`delay`).
/// No-op when unarmed.
pub fn hit(point: FaultPoint) {
    match fires(point) {
        None => {}
        Some(FaultMode::Panic) => panic!("injected fault: {point}"),
        Some(FaultMode::Err) => std::panic::panic_any(InjectedFault(point)),
        Some(FaultMode::Delay) => std::thread::sleep(std::time::Duration::from_millis(5)),
    }
}

/// Fault hook for I/O-side points: `err` mode surfaces as an `io::Error`
/// (which cache paths treat as a miss), `panic` mode panics (cache paths
/// catch it), `delay` sleeps. No-op when unarmed.
pub fn hit_io(point: FaultPoint) -> std::io::Result<()> {
    match fires(point) {
        None => Ok(()),
        Some(FaultMode::Panic) => panic!("injected fault: {point}"),
        Some(FaultMode::Err) => Err(std::io::Error::other(format!("injected fault: {point}"))),
        Some(FaultMode::Delay) => {
            std::thread::sleep(std::time::Duration::from_millis(5));
            Ok(())
        }
    }
}

/// Ensures the `CSC_FAULT` environment schedule (if any) is parsed and
/// armed. Called once at solve entry; cheap thereafter.
pub fn init() {
    init_from_env();
}

/// Classifies a caught panic payload into a typed [`SolveError`]: an
/// [`InjectedFault`] marker becomes [`SolveError::Fault`], anything else
/// [`SolveError::Poisoned`] with the stringified payload.
///
/// [`SolveError`]: crate::solver::SolveError
/// [`SolveError::Fault`]: crate::solver::SolveError::Fault
/// [`SolveError::Poisoned`]: crate::solver::SolveError::Poisoned
pub fn error_from_panic(
    worker: Option<usize>,
    payload: Box<dyn std::any::Any + Send>,
) -> crate::solver::SolveError {
    if let Some(f) = payload.downcast_ref::<InjectedFault>() {
        return crate::solver::SolveError::Fault { point: f.0 };
    }
    let msg = if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    };
    crate::solver::SolveError::Poisoned {
        worker,
        payload: msg,
    }
}
