//! The pointer-analysis engine: a delta-propagating worklist solver over the
//! pointer flow graph (PFG) with on-the-fly call-graph construction,
//! implementing the rules of Fig. 7 of the paper.
//!
//! The solver is generic over a [`ContextSelector`] (context insensitivity,
//! `k`-obj/`k`-type/`k`-call-site, selective) and over a [`Plugin`] that can
//! observe solver events and manipulate the PFG. Cut-Shortcut is implemented
//! entirely as such a plugin (`crate::csc`): its `cutStores`/`cutReturns`
//! sets suppress edge creation in the `[Store]`/`[Return]` rules, and its
//! shortcut edges (`E_SC`) enter the graph through [`SolverState::add_edge`].
//!
//! ## Data plane
//!
//! The state is organized for dense-id access: the empty context (which
//! every pointer of a CI or Cut-Shortcut run and most pointers of a
//! selective run live under) interns variables and objects through plain
//! `Vec` lookups, with small FxHash tables only as the residual path for
//! context-qualified entities. PFG edge deduplication reuses the hybrid
//! [`PointsToSet`] as a per-source target set, and the worklist batches
//! deltas per pointer — repeated `NewPointsTo` deltas targeting the same
//! pointer coalesce into one pending set before fan-out.
//!
//! ## SCC-collapsed propagation
//!
//! Assign-cycles (SCCs of *unfiltered* copy edges — assigns, parameters,
//! returns, shortcut edges; everything but cast-filtered edges) are
//! periodically collapsed onto a representative pointer: a union-find
//! ([`crate::scc::UnionFind`]) redirects the shared points-to set, the
//! successor lists, and the pending-delta accumulator of every member to
//! the representative, so a delta entering the cycle costs one union
//! instead of one trip around the cycle. Collapsing is *precision-neutral*
//! and observationally transparent:
//!
//! * statement processing (`[Load]`/`[Store]`/`[Call]`) and `NewPointsTo`
//!   events still happen per member — when a representative's set grows,
//!   the delta fans out to every member's statements, so plugins (the
//!   Cut-Shortcut obligations in particular) see the same logical growth
//!   per pointer as the uncollapsed solver;
//! * PFG edges are deduplicated on their *original* endpoints, `NewEdge`
//!   events carry original endpoints, and `has_edge` answers on original
//!   endpoints — only the physical successor lists live at representatives;
//! * projections read through the union-find, so results are fanned back
//!   out to members at projection time.
//!
//! Cycles are detected offline-per-epoch (Nuutila-style): after every
//! `collapse_epoch` unfiltered-edge insertions a Tarjan condensation runs
//! over the current representatives, which keeps the scheme correct under
//! edges that plugins (cut/shortcut) insert mid-solve. The
//! `tests/differential.rs` harness asserts bit-identical results with
//! collapsing on and off for every suite program × analysis configuration.
//!
//! ## Sharded parallel propagation
//!
//! With [`SolverOptions::threads`] ≥ 2 the solver runs a bulk-synchronous
//! sharded engine (see [`crate::shard`]): pointer slots are partitioned
//! across shards by SCC representative (slot id modulo shard count — a
//! collapsed cycle reads and writes only its representative's slot, so it
//! never straddles shards), each worker thread owns one shard's `pts` and
//! `pending` halves, and a round unions the drained worklist deltas in
//! parallel, exchanging cross-shard deltas through per-shard outboxes.
//! The workers are spawned **once per solve** into a persistent parked
//! pool ([`crate::pool`]) — event-driven solves execute thousands of tiny
//! rounds, and a spawn/join pair per worker per round used to dominate
//! them.
//!
//! ### The parallel coordinator
//!
//! Statement fan-out no longer runs on the coordinator: each worker
//! replays the `[Load]`/`[Store]`/`[Call]` discovery (including virtual
//! dispatch) and the plugin's [`Plugin::discover`] reactions for the
//! deltas it committed, against a round-frozen snapshot of the statement
//! index, SCC membership, and the per-shard obligation tables, and emits
//! *derived-edge* and *call-resolution* packets ([`crate::shard::Derived`])
//! describing the resulting mutations by key. What remains on the (now
//! much thinner) coordinator is the commit half: interning, PFG and
//! call-graph growth, context selection, plugin-table updates, event
//! delivery, and condensation epochs — all replayed in deterministic
//! (shard, batch, packet) order. [`SolverStats::parallel_secs`] and
//! [`SolverStats::coordinator_secs`] time the two phases so the Amdahl
//! split is measurable per run.
//!
//! Cross-thread merge orders are sorted by source shard, so a run is
//! deterministic for a fixed thread count and its *projected* results are
//! bit-identical to the sequential engine's for every thread count
//! (enforced by the differential harness). `threads = 1` takes the
//! original sequential loop untouched, propagation counts included.

use std::collections::{BTreeSet, VecDeque};
use std::time::{Duration, Instant};

use csc_ir::{
    CallKind, CallSiteId, CastId, DeltaEffects, FieldId, LoadId, MethodId, ObjId, Program, Stmt,
    StoreId, VarId,
};

use crate::context::{CallInfo, ContextSelector, CtxId, CtxInterner};
use crate::fx::{FxHashMap, FxHashSet};
use crate::pts::PointsToSet;

/// Incremental re-solve: delta rebase, removal-cone reset, and localized
/// re-propagation. A child module of `solver` (not a sibling) because it
/// reaches into [`SolverState`]'s private data plane.
#[path = "incr.rs"]
pub mod incr;

/// A dense id for a PFG pointer (context-qualified variable or
/// context-qualified abstract object's field).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PtrId(pub u32);

/// A dense id for a context-qualified abstract object.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CsObjId(pub u32);

/// What a [`PtrId`] denotes.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum PtrKey {
    /// A variable under a context.
    Var(CtxId, VarId),
    /// An instance field of a context-qualified object.
    Field(CsObjId, FieldId),
    /// A commit-plane placeholder: an unused slot in a worker's pre-
    /// reserved id stride, or a duplicate intern that reconciliation
    /// aliased onto its canonical id (the alias reads through the
    /// union-find; its own slot carries no state). Never reachable from
    /// projections, events, or statement fan-out.
    Dead,
}

/// Provenance of a PFG edge; lets plugins distinguish load edges from
/// return edges etc. (needed by the `[RelayEdge]` rule).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Local assignment (`[Assign]`).
    Assign,
    /// Reference cast (treated as assignment, as in Tai-e).
    Cast(CastId),
    /// Field load edge `o.f -> x` (`[Load]`).
    Load(LoadId),
    /// Field store edge `y -> o.f` (`[Store]`).
    Store(StoreId),
    /// Argument-to-parameter edge (`[Param]`).
    Param,
    /// Return-variable-to-call-site-lhs edge (`[Return]`); carries the
    /// callee method.
    Return(MethodId),
    /// A shortcut edge added by the Cut-Shortcut plugin (`[Shortcut]`).
    Shortcut(ShortcutKind),
}

/// Which Cut-Shortcut rule produced a shortcut edge.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ShortcutKind {
    /// `[ShortcutStore]` — field access pattern, stores.
    Store,
    /// `[ShortcutLoad]` — field access pattern, loads.
    Load,
    /// `[RelayEdge]` — soundness relay for mixed returns.
    Relay,
    /// `[ShortcutContainer]` — container access pattern.
    Container,
    /// `[ShortcutLFlow]` — local flow pattern.
    LocalFlow,
}

/// An observable solver event, delivered to the [`Plugin`] in order.
#[derive(Clone, Debug)]
pub enum Event {
    /// `delta` was added to `pt(ptr)`.
    NewPointsTo {
        /// The pointer whose set grew.
        ptr: PtrId,
        /// Exactly the new objects.
        delta: PointsToSet,
    },
    /// A new call-graph edge was discovered.
    NewCallEdge {
        /// Caller context.
        caller_ctx: CtxId,
        /// The call site.
        site: CallSiteId,
        /// Callee context.
        callee_ctx: CtxId,
        /// Resolved callee.
        callee: MethodId,
    },
    /// A method became reachable under a context.
    NewReachable {
        /// The context.
        ctx: CtxId,
        /// The method.
        method: MethodId,
    },
    /// A PFG edge was added.
    NewEdge {
        /// Source pointer.
        src: PtrId,
        /// Target pointer.
        dst: PtrId,
        /// Provenance.
        kind: EdgeKind,
    },
}

/// The read-only solver facts available to worker-side discovery
/// ([`Plugin::discover`]): enough to classify the objects of a delta
/// without touching (or being able to touch) the mutable solver state.
pub struct DiscoverCtx<'a> {
    /// `CsObjId` → (heap context, allocation site), indexed by raw id.
    pub obj_keys: &'a [(CtxId, ObjId)],
    /// The program under analysis.
    pub program: &'a Program,
}

impl DiscoverCtx<'_> {
    /// The (heap context, allocation site) behind a context-qualified
    /// object.
    pub fn obj_key(&self, o: CsObjId) -> (CtxId, ObjId) {
        self.obj_keys[o.0 as usize]
    }
}

/// A plugin reaction discovered on a worker thread and committed on the
/// coordinator through [`Plugin::apply`]. Reactions name their targets by
/// key (field, already-interned pointer), never by a pointer id the
/// coordinator has not interned yet, so discovery cannot observe or
/// constrain interning order. The delta the reaction was discovered for
/// is *not* embedded: `apply` receives it alongside the reaction, so a
/// delta of `k` objects hitting an obligation costs one reaction, not
/// `k` (mirroring the `LoadFan`/`StoreFan` per-site-activation economy).
#[derive(Clone, Debug)]
pub enum Reaction {
    /// Add shortcut edges `src -> o.field` for every object `o` of the
    /// delta.
    ShortcutToFields {
        /// Source pointer (already interned — obligations carry it).
        src: PtrId,
        /// Target field.
        field: FieldId,
        /// Which Cut-Shortcut rule the edges belong to.
        kind: ShortcutKind,
    },
    /// Add shortcut edges `o.field -> dst` for every object `o` of the
    /// delta.
    ShortcutFromFields {
        /// Source field.
        field: FieldId,
        /// Target pointer (already interned).
        dst: PtrId,
        /// Which Cut-Shortcut rule the edges belong to.
        kind: ShortcutKind,
    },
    /// Objects of the delta classified as container hosts (`[ColHost]` /
    /// `[MapHost]`): merge into the pointer-host map and propagate.
    Hosts {
        /// The pointer whose host set grew.
        ptr: PtrId,
        /// The new host objects.
        hosts: PointsToSet,
    },
}

/// A solver extension. The Cut-Shortcut analysis is the canonical
/// implementation; [`NoPlugin`] is the identity.
pub trait Plugin {
    /// Called once before solving starts.
    fn init(&mut self, st: &mut SolverState<'_>) {
        let _ = st;
    }

    /// Whether the plugin wants [`Event`]s delivered (skipping event
    /// bookkeeping keeps plain analyses allocation-light).
    fn wants_events(&self) -> bool {
        false
    }

    /// Handles one event. May freely add edges / points-to facts via the
    /// state.
    fn handle(&mut self, st: &mut SolverState<'_>, ev: Event) {
        let _ = (st, ev);
    }

    /// `[Store]` cut check: whether the given store site's PFG edges are
    /// suppressed (`cutStores`). Must be a pure predicate of the plugin's
    /// current tables — the parallel engine evaluates it on worker threads
    /// against the round-frozen plugin.
    fn is_store_cut(&self, site: StoreId) -> bool {
        let _ = site;
        false
    }

    /// `[Return]` cut check: whether return edges from `m`'s return variable
    /// are suppressed (`cutReturns`).
    fn is_return_cut(&self, m: MethodId) -> bool {
        let _ = m;
        false
    }

    /// Whether [`Plugin::discover`] replaces `NewPointsTo` event delivery
    /// on the parallel engine. When `true`, parallel rounds run the
    /// plugin's points-to reactions worker-side (discovery) and commit
    /// them through [`Plugin::apply`], and no `NewPointsTo` events are
    /// queued for deltas those rounds commit; `NewCallEdge` / `NewEdge` /
    /// `NewReachable` events are unaffected. The sequential engine ignores
    /// this entirely.
    fn parallel_discovery(&self) -> bool {
        false
    }

    /// Worker-side discovery: reactions to `delta` being added to
    /// `pt(ptr)`. Runs on worker threads against the round-frozen plugin
    /// (`&self`), so it must only *read* plugin tables and describe the
    /// mutations as [`Reaction`]s; the coordinator commits them through
    /// [`Plugin::apply`] in deterministic packet order. Registration
    /// replay (obligations added later re-scan the current points-to set)
    /// must make the discover/apply split insensitive to the round
    /// boundary — the Cut-Shortcut tables are built that way.
    fn discover(
        &self,
        ptr: PtrId,
        delta: &PointsToSet,
        dctx: &DiscoverCtx<'_>,
        out: &mut Vec<Reaction>,
    ) {
        let _ = (ptr, delta, dctx, out);
    }

    /// Commits one worker-discovered [`Reaction`] (coordinator-side).
    /// `delta` is the points-to growth the reaction was discovered for —
    /// per-object reactions iterate it here, at commit time.
    fn apply(&mut self, st: &mut SolverState<'_>, delta: &PointsToSet, reaction: Reaction) {
        let _ = (st, delta, reaction);
    }

    /// Whether the plugin can carry its derived state across a program
    /// delta from `base` to `patched`, rebasing any statically computed
    /// tables onto the patched program. Returning `false` makes the
    /// incremental driver fall back to a full solve
    /// ([`FallbackReason::CscObligations`]). Stateless plugins are always
    /// rebasable, hence the default.
    fn rebase(&mut self, base: &Program, patched: &Program, fx: &DeltaEffects) -> bool {
        let _ = (base, patched, fx);
        true
    }
}

/// The identity plugin (plain Andersen-style analysis).
#[derive(Copy, Clone, Debug, Default)]
pub struct NoPlugin;

impl Plugin for NoPlugin {}

/// Solver termination status.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SolveStatus {
    /// Fixpoint reached.
    Completed,
    /// The time or propagation budget was exhausted first.
    Timeout,
    /// A propagation worker panicked (or an injected fault fired) and the
    /// round was unwound like a budget abort: the state is safe to drop
    /// and safe to read, but its projections are partial and it must not
    /// be continued. [`PtaResult::error`] carries the typed cause.
    Poisoned,
}

/// A typed, survivable solve failure — the replacement for
/// panic-as-abort. The process never dies on these: the worker pool
/// catches the unwind, the coordinator finishes the round teardown
/// deterministically, and callers receive this alongside a
/// [`SolveStatus::Poisoned`] result (or through the guarded entry points
/// `run_analysis_guarded` / `resolve_analysis_guarded` when the panic
/// happened coordinator-side).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveError {
    /// A panic escaped a propagation worker (`worker = Some(i)`) or the
    /// coordinator / sequential engine (`worker = None`); `payload` is the
    /// stringified panic payload.
    Poisoned {
        /// Index of the panicking pool worker, `None` for the coordinator.
        worker: Option<usize>,
        /// The stringified panic payload.
        payload: String,
    },
    /// An armed [`crate::fault::FaultPoint`] fired in `err` mode.
    Fault {
        /// The fault point that fired.
        point: crate::fault::FaultPoint,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Poisoned { worker, payload } => match worker {
                Some(w) => write!(f, "solve poisoned: worker {w} panicked: {payload}"),
                None => write!(f, "solve poisoned: {payload}"),
            },
            SolveError::Fault { point } => write!(f, "injected fault at {point}"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Resource limits, emulating the paper's 2-hour budget.
#[derive(Copy, Clone, Debug, Default)]
pub struct Budget {
    /// Wall-clock limit.
    pub time: Option<Duration>,
    /// Maximum number of points-to propagations (deterministic limit,
    /// useful in tests).
    pub max_propagations: Option<u64>,
}

impl Budget {
    /// No limits.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Wall-clock limit only.
    pub fn with_time(d: Duration) -> Self {
        Budget {
            time: Some(d),
            max_propagations: None,
        }
    }
}

/// Counters reported alongside results.
#[derive(Copy, Clone, Debug, Default)]
pub struct SolverStats {
    /// Worklist propagations with a non-empty delta.
    pub propagations: u64,
    /// PFG edges added (logical edges, counted on original endpoints).
    pub edges: u64,
    /// Call-graph edges added.
    pub call_edges: u64,
    /// Reachable (context, method) pairs.
    pub reachable: u64,
    /// Distinct pointers interned.
    pub pointers: u64,
    /// Distinct context-qualified objects interned.
    pub objects: u64,
    /// SCC condensation epochs executed.
    pub scc_runs: u64,
    /// Nontrivial assign-SCCs collapsed across all epochs.
    pub sccs_collapsed: u64,
    /// Pointers merged into another representative.
    pub ptrs_collapsed: u64,
    /// Worker threads the propagation engine ran with (1 = the sequential
    /// engine; the resolved value when [`SolverOptions::threads`] was 0).
    pub threads: u64,
    /// Bulk-synchronous parallel rounds executed (0 on the sequential
    /// path).
    pub parallel_rounds: u64,
    /// Wall-clock seconds spent inside parallel phases (workers running,
    /// coordinator waiting at the round barrier). Always 0 on the
    /// sequential engine.
    pub parallel_secs: f64,
    /// Wall-clock seconds spent outside parallel phases: packet commits,
    /// plugin events, call-graph growth, condensation epochs, inline small
    /// rounds. On the sequential engine this is the whole solve, so
    /// `parallel_secs / (parallel_secs + coordinator_secs)` is the
    /// measured Amdahl split of a run.
    pub coordinator_secs: f64,
    /// Wall-clock seconds of `coordinator_secs` spent in the per-round
    /// commit section (packet replay, commit-plane reconciliation, flush
    /// and event delivery) — the slice of the coordinator the sharded
    /// commit plane exists to shrink. Always 0 on the sequential engine.
    pub commit_secs: f64,
    /// Async engine: work-stealing propagation phases dispatched — each is
    /// one coordinated pause (quiescence wait + commit), the async
    /// engine's analogue of a round barrier. Always 0 on the sequential
    /// and BSP engines; compare against `parallel_rounds` on the same
    /// workload to see the barrier eliminations.
    pub pause_count: u64,
    /// Async engine: successful steal batches (a worker drained part of a
    /// loaded peer shard's worklist). Schedule-dependent by nature.
    pub steal_count: u64,
    /// Incremental re-solves performed on this state (via
    /// [`Solver::resolve`] or `resolve_analysis`), including fallbacks.
    pub incr_resolves: u64,
    /// Incremental re-solves that abandoned localized re-propagation and
    /// ran a full from-scratch solve instead.
    pub incr_fallbacks: u64,
    /// Why the most recent incremental re-solve fell back (`None` when it
    /// completed via localized re-propagation).
    pub incr_fallback_reason: Option<FallbackReason>,
    /// Wall-clock seconds of the most recent incremental re-solve
    /// (localized or fallback), excluding delta application itself.
    pub resolve_secs: f64,
    /// Heap bytes of the points-to plane (`pts` + pending accumulators) at
    /// solve end, with CoW-shared dense chunks attributed once (see
    /// [`crate::mem`]).
    pub pts_bytes: u64,
    /// Heap bytes of the PFG edge storage (successor arenas + edge-dedup
    /// pair sets) at solve end.
    pub edge_bytes: u64,
    /// Dense-chunk references deduplicated by copy-on-write sharing at
    /// solve end — each would have cost a 512-byte block unshared.
    pub shared_chunks: u64,
}

/// Why an incremental re-solve ([`Solver::resolve`]) abandoned localized
/// re-propagation and ran a full from-scratch solve of the patched program
/// instead. Recorded in [`SolverStats::incr_fallback_reason`]; falling back
/// is always sound (the result is a complete solve), the reason exists so
/// callers and the differential harness can check it fires exactly when its
/// precondition holds.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FallbackReason {
    /// The base result did not run to completion (budget exhaustion), so
    /// there is no fixpoint to extend.
    BaseIncomplete,
    /// The delta changed an existing `(class, signature) → method` dispatch
    /// mapping (e.g. an added override of an inherited method), so derived
    /// call edges could be invalidated non-monotonically.
    DispatchChanged,
    /// The removal cone touched an SCC-collapsed pointer: per-member resets
    /// cannot be localized through a merged representative's shared set.
    SccStructure,
    /// The delta touched Cut-Shortcut obligations: statements were removed
    /// while the plugin holds derived cut/shortcut state, or the static
    /// pattern tables changed on base-program entities.
    CscObligations,
    /// A selective analysis's selection changed: the Zipper-e (or hybrid)
    /// pre-analysis selects a different method set on the patched program,
    /// so the old main-analysis contexts no longer apply.
    PreanalysisChanged,
}

impl std::fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FallbackReason::BaseIncomplete => "base-incomplete",
            FallbackReason::DispatchChanged => "dispatch-changed",
            FallbackReason::SccStructure => "scc-structure",
            FallbackReason::CscObligations => "csc-obligations",
            FallbackReason::PreanalysisChanged => "preanalysis-changed",
        })
    }
}

/// Which multi-threaded propagation engine a solve runs
/// ([`SolverOptions::engine`]); irrelevant when `threads == 1`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Engine {
    /// The async work-stealing loop (the default): workers own their
    /// shards' worklists, exchange deltas without round boundaries, steal
    /// from loaded peers when dry, and pause only for coordinator-side
    /// structural work (quiescence-detected). Deterministic in *results*
    /// (projections and precision metrics bit-identical to the sequential
    /// engine), not in schedule (per-run propagation counts vary as
    /// deltas coalesce differently).
    Async,
    /// The bulk-synchronous engine: barriered rounds with a deterministic
    /// coordinator pass between them; propagation counts are reproducible
    /// per thread count.
    Bsp,
}

/// Engine tuning knobs, independent of the analysis policy (context
/// selector / plugin). The default enables SCC-collapsed propagation with
/// an adaptive epoch length.
#[derive(Copy, Clone, Debug)]
pub struct SolverOptions {
    /// Collapse assign-cycles (SCCs of unfiltered copy edges) onto
    /// representative pointers during solving. Precision-neutral — the
    /// differential harness (`crates/core/tests/differential.rs`) asserts
    /// bit-identical projected results either way.
    pub collapse_sccs: bool,
    /// Unfiltered-copy-edge insertions between condensation epochs. `None`
    /// picks an adaptive threshold from the current pointer count; tests
    /// use small values to stress merge paths on tiny programs.
    pub collapse_epoch: Option<u32>,
    /// Propagation worker threads. `1` (the default) runs the sequential
    /// engine unchanged; `0` resolves to the machine's available
    /// parallelism; `>= 2` runs the sharded bulk-synchronous engine, whose
    /// projected results are bit-identical to the sequential engine's for
    /// any thread count (enforced by `tests/differential.rs`) while its
    /// propagation counts are deterministic per thread count.
    pub threads: usize,
    /// Sharded commit plane (parallel engine only): workers intern fresh
    /// pointers from pre-reserved id strides and commit `[Load]`/`[Store]`
    /// PFG edges shard-locally, leaving the coordinator only call-graph
    /// merges, reconciliation, and condensation epochs. `None` (the
    /// default) reads the `CSC_PAR_COMMIT` environment variable at solve
    /// start (unset or non-`0` = on); tests pass explicit values so runs
    /// never race on the environment. Ignored when `threads == 1`.
    pub par_commit: Option<bool>,
    /// Topology-aware shard routing (parallel engine only): at each
    /// condensation epoch, re-home slots across shards by a greedy
    /// longest-processing-time pass seeded by observed per-representative
    /// union cost, replacing the arithmetic `id % nshards` placement.
    /// Precision- and determinism-neutral — routing only changes *where* a
    /// slot's row physically lives. `None` (the default) reads the
    /// `CSC_SHARD_ROUTE` environment variable at solve start (`balanced` =
    /// on, anything else — including unset, the `mod` default — = off);
    /// tests pass explicit values. Ignored when `threads == 1`.
    pub balanced_route: Option<bool>,
    /// Multi-threaded propagation engine. `None` (the default) reads the
    /// `CSC_ENGINE` environment variable at solve start (`bsp` = the
    /// bulk-synchronous engine, anything else — including unset — = the
    /// async work-stealing engine); tests pass explicit values. Ignored
    /// when `threads == 1`.
    pub engine: Option<Engine>,
    /// BSP engine only: adaptive round fusion. When on, the inline-round
    /// threshold (below which a drained batch is processed sequentially
    /// instead of dispatched to the pool) grows with the observed round
    /// size — streaks of tiny event-driven rounds fuse into the
    /// coordinator instead of paying pool dispatch, and a large wave
    /// front snaps the threshold back. Deterministic (driven purely by
    /// batch sizes, which are deterministic per thread count on the BSP
    /// engine). `None` (the default) reads the `CSC_ROUND_FUSION`
    /// environment variable (`1`/`on` = on; unset = off, preserving the
    /// fixed `32 × threads` heuristic byte-for-byte).
    pub round_fusion: Option<bool>,
    /// Large points-to-set representation: chunked hybrid with CoW dense
    /// blocks (the default) or the PR 1 whole-id-range bitmap, kept
    /// selectable for A/B comparison. Representation never changes element
    /// sequences, so projections and propagation counts are identical
    /// either way (enforced by `differential_pts_repr`). `None` (the
    /// default) reads the `CSC_PTS_REPR` environment variable at solve
    /// start (`legacy` = the bitmap, anything else — including unset — =
    /// chunked); tests pass explicit values.
    pub pts_repr: Option<crate::pts::PtsRepr>,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            collapse_sccs: true,
            collapse_epoch: None,
            threads: 1,
            par_commit: None,
            balanced_route: None,
            engine: None,
            round_fusion: None,
            pts_repr: None,
        }
    }
}

impl SolverOptions {
    /// Cycle collapsing disabled (the uncollapsed reference engine).
    pub fn no_collapse() -> Self {
        SolverOptions {
            collapse_sccs: false,
            ..SolverOptions::default()
        }
    }

    /// Collapsing with a fixed epoch length (testing knob).
    pub fn with_epoch(epoch: u32) -> Self {
        SolverOptions {
            collapse_sccs: true,
            collapse_epoch: Some(epoch),
            ..SolverOptions::default()
        }
    }

    /// The same options with an explicit propagation thread count
    /// (`0` = available parallelism).
    pub fn with_threads(self, threads: usize) -> Self {
        SolverOptions { threads, ..self }
    }

    /// The same options with the commit plane explicitly on or off
    /// (bypasses the `CSC_PAR_COMMIT` environment fallback).
    pub fn with_par_commit(self, on: bool) -> Self {
        SolverOptions {
            par_commit: Some(on),
            ..self
        }
    }

    /// Whether the sharded commit plane is enabled for these options
    /// (environment fallback resolved).
    pub fn resolved_par_commit(&self) -> bool {
        self.par_commit
            .unwrap_or_else(|| std::env::var("CSC_PAR_COMMIT").map_or(true, |v| v != "0"))
    }

    /// The same options with topology-aware shard routing explicitly on or
    /// off (bypasses the `CSC_SHARD_ROUTE` environment fallback).
    pub fn with_balanced_route(self, on: bool) -> Self {
        SolverOptions {
            balanced_route: Some(on),
            ..self
        }
    }

    /// Whether topology-aware shard routing is enabled for these options
    /// (environment fallback resolved; `mod` is the default).
    pub fn resolved_balanced_route(&self) -> bool {
        self.balanced_route
            .unwrap_or_else(|| std::env::var("CSC_SHARD_ROUTE").is_ok_and(|v| v == "balanced"))
    }

    /// The same options with an explicit propagation engine (bypasses the
    /// `CSC_ENGINE` environment fallback).
    pub fn with_engine(self, engine: Engine) -> Self {
        SolverOptions {
            engine: Some(engine),
            ..self
        }
    }

    /// The multi-threaded engine these options resolve to (environment
    /// fallback resolved; async is the default).
    pub fn resolved_engine(&self) -> Engine {
        self.engine.unwrap_or_else(|| {
            if std::env::var("CSC_ENGINE").is_ok_and(|v| v == "bsp") {
                Engine::Bsp
            } else {
                Engine::Async
            }
        })
    }

    /// The same options with BSP round fusion explicitly on or off
    /// (bypasses the `CSC_ROUND_FUSION` environment fallback).
    pub fn with_round_fusion(self, on: bool) -> Self {
        SolverOptions {
            round_fusion: Some(on),
            ..self
        }
    }

    /// Whether adaptive BSP round fusion is enabled for these options
    /// (environment fallback resolved; off is the default).
    pub fn resolved_round_fusion(&self) -> bool {
        self.round_fusion.unwrap_or_else(|| {
            std::env::var("CSC_ROUND_FUSION").is_ok_and(|v| v == "1" || v == "on")
        })
    }

    /// The same options with an explicit large-set representation
    /// (bypasses the `CSC_PTS_REPR` environment fallback).
    pub fn with_pts_repr(self, repr: crate::pts::PtsRepr) -> Self {
        SolverOptions {
            pts_repr: Some(repr),
            ..self
        }
    }

    /// The large-set representation these options resolve to (environment
    /// fallback resolved; chunked is the default).
    pub fn resolved_pts_repr(&self) -> crate::pts::PtsRepr {
        self.pts_repr.unwrap_or_else(|| {
            if std::env::var("CSC_PTS_REPR").is_ok_and(|v| v == "legacy") {
                crate::pts::PtsRepr::Legacy
            } else {
                crate::pts::PtsRepr::Chunked
            }
        })
    }

    /// The worker-thread count these options resolve to on this machine.
    pub fn resolved_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            n => n,
        }
    }
}

/// Sentinel for "not interned yet" in the dense CI tables.
pub(crate) const ABSENT: u32 = u32::MAX;

/// The complete mutable analysis state. Plugins receive `&mut` access.
pub struct SolverState<'p> {
    /// The program under analysis.
    pub program: &'p Program,
    /// Context interner.
    pub interner: CtxInterner,

    /// Dense empty-context variable pointers, indexed by variable
    /// ([`ABSENT`] = not interned). The residual table below only sees
    /// context-qualified variables.
    ci_var_ptrs: Vec<u32>,
    var_ptr_table: FxHashMap<(CtxId, VarId), PtrId>,
    field_ptr_table: FxHashMap<(CsObjId, FieldId), PtrId>,
    ptr_keys: Vec<PtrKey>,

    /// Dense empty-heap-context objects, indexed by allocation site.
    ci_objs: Vec<u32>,
    obj_table: FxHashMap<(CtxId, ObjId), CsObjId>,
    obj_keys: Vec<(CtxId, ObjId)>,

    /// Points-to sets, pending-delta accumulators, successor lists, and
    /// PFG edge-dedup sets, stored at SCC representatives and sharded
    /// round-robin by slot id for the parallel engine (one shard when
    /// sequential); merged members keep an empty slot and read through
    /// [`SolverState::repr`].
    ///
    /// Successor entries carry an optional cast filter: only objects whose
    /// class is a subtype of the filter class propagate along the edge
    /// (`checkcast` semantics, as in Tai-e and Doop). Lists live at SCC
    /// representatives; stored targets may be stale (merged away) and are
    /// re-canonicalized at enqueue time and at each condensation epoch.
    /// Edge dedup is on *original* `(src, dst)` endpoints, grouped under
    /// the source's representative so the owning shard can commit edges
    /// worker-side (see `crate::shard::Shard`).
    slots: crate::shard::ShardedSlots,

    /// Representative index for SCC-collapsed propagation.
    reps: crate::scc::UnionFind,
    /// Member lists (ascending, representative first) for collapsed
    /// representatives only; uncollapsed pointers have no entry.
    members: FxHashMap<u32, Vec<u32>>,
    /// Unfiltered copy edges inserted since the last condensation epoch.
    copy_edges_since_collapse: u32,
    opts: SolverOptions,
    /// Resolved propagation worker count (>= 1).
    nthreads: usize,
    /// Resolved commit-plane switch (parallel engine only; see
    /// [`SolverOptions::par_commit`]).
    par_commit: bool,
    /// Resolved topology-aware routing switch (parallel engine only; see
    /// [`SolverOptions::balanced_route`]).
    balanced_route: bool,
    /// Resolved engine switch: `true` runs the async work-stealing loop
    /// for multi-threaded phases (see [`SolverOptions::engine`]).
    async_engine: bool,
    /// Resolved adaptive round-fusion switch (BSP engine only; see
    /// [`SolverOptions::round_fusion`]).
    round_fusion: bool,
    /// Adaptive inline-round threshold: batches smaller than this are
    /// processed sequentially by the coordinator. Fixed at
    /// `32 × nthreads` unless `round_fusion` is on.
    inline_cap: usize,
    /// Consecutive inline rounds under round fusion (the growth
    /// hysteresis counter).
    fused_streak: u32,
    /// Observed union cost per slot id (elements committed into the slot's
    /// set), tracked only under `balanced_route`: the seed for the greedy
    /// shard-rebalance pass at condensation epochs. Grown lazily; merged
    /// onto the surviving representative when SCCs collapse.
    route_cost: Vec<u64>,

    /// Batched worklist: the FIFO of pointers with a non-empty pending
    /// accumulator (the accumulators themselves live in `slots`).
    queue: VecDeque<PtrId>,

    events: VecDeque<Event>,
    emit_events: bool,

    /// Reachability: dense for the empty context, residual set for
    /// context-qualified units, plus the insertion-ordered log backing the
    /// public views.
    reachable_ci: Vec<bool>,
    reachable_cs: FxHashSet<(CtxId, MethodId)>,
    reachable_log: Vec<(CtxId, MethodId)>,

    call_edge_set: FxHashSet<(CtxId, CallSiteId, CtxId, MethodId)>,
    call_edges: Vec<(CtxId, CallSiteId, CtxId, MethodId)>,
    call_edges_by_callee: FxHashMap<MethodId, Vec<(CtxId, CallSiteId, CtxId)>>,

    /// Per-variable statement usage index (see [`crate::shard::StmtIndex`]):
    /// read by the sequential engine's statement processing and, frozen per
    /// round, by the parallel workers' fan-out discovery.
    stmts: crate::shard::StmtIndex,

    /// Counters.
    pub stats: SolverStats,
    budget: Budget,
    started: Instant,
    /// Set when a propagation worker panicked and the solve was unwound:
    /// the state is safe to drop and to read (partial projections) but
    /// must never be continued or rebased.
    poisoned: bool,
}

impl<'p> SolverState<'p> {
    fn new(program: &'p Program, budget: Budget, opts: SolverOptions) -> Self {
        let nthreads = opts.resolved_threads().max(1);
        crate::pts::set_default_repr(opts.resolved_pts_repr());
        let stats = SolverStats {
            threads: nthreads as u64,
            ..SolverStats::default()
        };
        SolverState {
            program,
            interner: CtxInterner::new(),
            ci_var_ptrs: vec![ABSENT; program.vars().len()],
            var_ptr_table: FxHashMap::default(),
            field_ptr_table: FxHashMap::default(),
            ptr_keys: Vec::new(),
            ci_objs: vec![ABSENT; program.objs().len()],
            obj_table: FxHashMap::default(),
            obj_keys: Vec::new(),
            slots: crate::shard::ShardedSlots::new(nthreads),
            reps: crate::scc::UnionFind::new(),
            members: FxHashMap::default(),
            copy_edges_since_collapse: 0,
            par_commit: nthreads > 1 && opts.resolved_par_commit(),
            balanced_route: nthreads > 1 && opts.resolved_balanced_route(),
            async_engine: nthreads > 1 && opts.resolved_engine() == Engine::Async,
            round_fusion: nthreads > 1 && opts.resolved_round_fusion(),
            inline_cap: 32 * nthreads,
            fused_streak: 0,
            route_cost: Vec::new(),
            opts,
            nthreads,
            queue: VecDeque::new(),
            events: VecDeque::new(),
            emit_events: false,
            reachable_ci: vec![false; program.methods().len()],
            reachable_cs: FxHashSet::default(),
            reachable_log: Vec::new(),
            call_edge_set: FxHashSet::default(),
            call_edges: Vec::new(),
            call_edges_by_callee: FxHashMap::default(),
            stmts: crate::shard::StmtIndex::build(program),
            stats,
            budget,
            started: Instant::now(),
            poisoned: false,
        }
    }

    /// Whether a worker panic poisoned this state (see
    /// [`SolveStatus::Poisoned`]).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    // ---- interning -------------------------------------------------------

    fn push_ptr(&mut self, key: PtrKey) -> PtrId {
        let id = PtrId(u32::try_from(self.ptr_keys.len()).expect("too many pointers"));
        self.ptr_keys.push(key);
        self.slots.push();
        self.reps.push();
        self.stats.pointers += 1;
        id
    }

    /// Interns a context-qualified variable pointer.
    pub fn var_ptr(&mut self, ctx: CtxId, v: VarId) -> PtrId {
        if ctx == CtxId::EMPTY {
            let slot = self.ci_var_ptrs[v.index()];
            if slot != ABSENT {
                return PtrId(slot);
            }
            let id = self.push_ptr(PtrKey::Var(ctx, v));
            self.ci_var_ptrs[v.index()] = id.0;
            id
        } else {
            if let Some(&p) = self.var_ptr_table.get(&(ctx, v)) {
                return p;
            }
            let id = self.push_ptr(PtrKey::Var(ctx, v));
            self.var_ptr_table.insert((ctx, v), id);
            id
        }
    }

    /// Interns a field pointer.
    pub fn field_ptr(&mut self, obj: CsObjId, f: FieldId) -> PtrId {
        if let Some(&p) = self.field_ptr_table.get(&(obj, f)) {
            return p;
        }
        let id = self.push_ptr(PtrKey::Field(obj, f));
        self.field_ptr_table.insert((obj, f), id);
        id
    }

    /// Interns a context-qualified object.
    pub fn cs_obj(&mut self, ctx: CtxId, obj: ObjId) -> CsObjId {
        if ctx == CtxId::EMPTY {
            let slot = self.ci_objs[obj.index()];
            if slot != ABSENT {
                return CsObjId(slot);
            }
        } else if let Some(&o) = self.obj_table.get(&(ctx, obj)) {
            return o;
        }
        let id = CsObjId(u32::try_from(self.obj_keys.len()).expect("too many objects"));
        self.obj_keys.push((ctx, obj));
        if ctx == CtxId::EMPTY {
            self.ci_objs[obj.index()] = id.0;
        } else {
            self.obj_table.insert((ctx, obj), id);
        }
        self.stats.objects += 1;
        id
    }

    /// What a pointer id denotes.
    pub fn ptr_key(&self, p: PtrId) -> PtrKey {
        self.ptr_keys[p.0 as usize]
    }

    /// The (heap context, allocation site) behind a [`CsObjId`].
    pub fn obj_key(&self, o: CsObjId) -> (CtxId, ObjId) {
        self.obj_keys[o.0 as usize]
    }

    /// Number of interned pointers.
    pub fn ptr_count(&self) -> usize {
        self.ptr_keys.len()
    }

    /// Number of interned context-qualified objects.
    pub fn obj_count(&self) -> usize {
        self.obj_keys.len()
    }

    /// The resolved propagation worker count (≥ 1) this solve runs with —
    /// also the shard count plugins should size their
    /// [`crate::ShardedTable`]s to (in [`Plugin::init`]).
    pub fn threads(&self) -> usize {
        self.nthreads
    }

    /// The read-only facts [`Plugin::discover`] sees — also usable on the
    /// coordinator, so the event path and the worker path share one
    /// discovery implementation.
    pub fn discover_ctx(&self) -> DiscoverCtx<'_> {
        DiscoverCtx {
            obj_keys: &self.obj_keys,
            program: self.program,
        }
    }

    /// Canonical representative of a pointer: identity unless the pointer
    /// was merged into an assign-SCC, in which case the SCC's elected
    /// representative is returned.
    pub fn repr(&self, p: PtrId) -> PtrId {
        PtrId(self.reps.find(p.0))
    }

    /// Current points-to set of a pointer (read through the representative
    /// indirection — members of a collapsed SCC share one set).
    pub fn pt(&self, p: PtrId) -> &PointsToSet {
        self.slots.pts(self.reps.find(p.0))
    }

    /// Looks up an already-interned pointer without creating it.
    pub fn find_ptr(&self, key: PtrKey) -> Option<PtrId> {
        match key {
            PtrKey::Var(ctx, v) if ctx == CtxId::EMPTY => {
                let slot = self.ci_var_ptrs[v.index()];
                (slot != ABSENT).then_some(PtrId(slot))
            }
            PtrKey::Var(ctx, v) => self.var_ptr_table.get(&(ctx, v)).copied(),
            PtrKey::Field(obj, f) => self.field_ptr_table.get(&(obj, f)).copied(),
            PtrKey::Dead => None,
        }
    }

    // ---- worklist --------------------------------------------------------

    /// Queues a delta for a pointer, coalescing it with whatever is already
    /// pending for that pointer. Deltas accumulate at the pointer's SCC
    /// representative.
    fn enqueue(&mut self, ptr: PtrId, objs: &PointsToSet) {
        if objs.is_empty() {
            return;
        }
        let ptr = self.repr(ptr);
        let slot = self.slots.pending_mut(ptr.0);
        let was_empty = slot.is_empty();
        slot.union_with(objs);
        if was_empty {
            self.queue.push_back(ptr);
        }
    }

    /// Queues a single object for a pointer.
    fn enqueue_one(&mut self, ptr: PtrId, obj: u32) {
        let ptr = self.repr(ptr);
        let slot = self.slots.pending_mut(ptr.0);
        let was_empty = slot.is_empty();
        slot.insert(obj);
        if was_empty {
            self.queue.push_back(ptr);
        }
    }

    // ---- mutation (also used by plugins) ----------------------------------

    /// Adds a PFG edge (deduplicated on its *original* endpoints). New
    /// edges immediately flush the source's current points-to set to the
    /// target. Cast edges carry a type filter (`checkcast` semantics): only
    /// objects assignable to the cast target propagate, as in Tai-e and
    /// Doop.
    ///
    /// The physical successor entry lives at the source's SCC
    /// representative; an edge whose endpoints are already in the same SCC
    /// stays logical-only (the shared set makes propagation a no-op), but
    /// is still counted, deduplicated, and delivered as a [`Event::NewEdge`]
    /// so plugins observe the same PFG as the uncollapsed solver.
    pub fn add_edge(&mut self, src: PtrId, dst: PtrId, kind: EdgeKind) {
        if src == dst {
            return;
        }
        let csrc = self.reps.find(src.0);
        if !self.slots.edge_pairs_mut(csrc).insert(src.0, dst.0) {
            return;
        }
        let filter = match kind {
            EdgeKind::Cast(id) => self.program.cast(id).ty().as_class(),
            _ => None,
        };
        self.stats.edges += 1;
        if csrc != self.reps.find(dst.0) {
            if filter.is_none() {
                self.copy_edges_since_collapse += 1;
            }
            self.slots.succ_push(csrc, dst, filter);
            if !self.slots.pts(csrc).is_empty() {
                match filter {
                    None => {
                        let pts = self.slots.take_pts(csrc);
                        self.enqueue(dst, &pts);
                        self.slots.put_pts(csrc, pts);
                    }
                    Some(class) => {
                        let filtered = self.apply_filter(self.slots.pts(csrc), class);
                        self.enqueue(dst, &filtered);
                    }
                }
            }
        }
        if self.emit_events {
            self.events.push_back(Event::NewEdge { src, dst, kind });
        }
    }

    /// Restricts a set to objects assignable to `class` (`checkcast`
    /// semantics). Only cast edges pay for this copy — unfiltered edges
    /// propagate their delta by reference, so there is no identity-clone
    /// arm here.
    fn apply_filter(&self, objs: &PointsToSet, class: csc_ir::ClassId) -> PointsToSet {
        crate::shard::filter_pts(objs, class, &self.obj_keys, self.program)
    }

    /// Whether a PFG edge already exists (original endpoints, like the
    /// dedup in [`SolverState::add_edge`]).
    pub fn has_edge(&self, src: PtrId, dst: PtrId) -> bool {
        self.slots
            .edge_pairs(self.reps.find(src.0))
            .is_some_and(|pairs| pairs.contains(src.0, dst.0))
    }

    /// Injects objects into a pointer's points-to set (via the worklist).
    pub fn add_points_to(&mut self, ptr: PtrId, objs: PointsToSet) {
        self.enqueue(ptr, &objs);
    }

    /// Stamps the data-plane memory counters (`pts_bytes`, `edge_bytes`,
    /// `shared_chunks`) from a walk over the slot plane — called once at
    /// the end of every solve and incremental re-solve, where the numbers
    /// describe the converged state.
    fn record_mem_stats(&mut self) {
        let acc = self.slots.pts_account();
        self.stats.pts_bytes = acc.bytes;
        self.stats.shared_chunks = acc.shared_chunks;
        self.stats.edge_bytes = self.slots.edge_bytes();
    }

    /// All call-graph edges onto `callee`, as
    /// `(caller context, call site, callee context)` triples.
    pub fn call_edges_of(&self, callee: MethodId) -> &[(CtxId, CallSiteId, CtxId)] {
        self.call_edges_by_callee
            .get(&callee)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All call-graph edges.
    pub fn call_edges(&self) -> &[(CtxId, CallSiteId, CtxId, MethodId)] {
        &self.call_edges
    }

    /// All reachable (context, method) pairs, in discovery order.
    pub fn reachable(&self) -> &[(CtxId, MethodId)] {
        &self.reachable_log
    }

    /// Elapsed wall-clock time since solving began.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    // ---- core algorithm ---------------------------------------------------

    /// Marks `(ctx, method)` reachable; returns whether it was new.
    fn insert_reachable(&mut self, ctx: CtxId, method: MethodId) -> bool {
        if ctx == CtxId::EMPTY {
            let slot = &mut self.reachable_ci[method.index()];
            if *slot {
                return false;
            }
            *slot = true;
        } else if !self.reachable_cs.insert((ctx, method)) {
            return false;
        }
        self.reachable_log.push((ctx, method));
        true
    }

    fn add_reachable<S: ContextSelector, P: Plugin>(
        &mut self,
        selector: &S,
        plugin: &P,
        ctx: CtxId,
        method: MethodId,
    ) {
        if !self.insert_reachable(ctx, method) {
            return;
        }
        self.stats.reachable += 1;
        if self.emit_events {
            self.events.push_back(Event::NewReachable { ctx, method });
        }
        let m = self.program.method(method);
        let mut news: Vec<(VarId, ObjId)> = Vec::new();
        let mut assigns: Vec<(VarId, VarId, EdgeKind)> = Vec::new();
        let mut static_calls: Vec<CallSiteId> = Vec::new();
        m.visit_stmts(|s| match s {
            Stmt::New { lhs, obj } => news.push((*lhs, *obj)),
            Stmt::Assign { lhs, rhs } => assigns.push((*rhs, *lhs, EdgeKind::Assign)),
            Stmt::Cast(id) => {
                let c = self.program.cast(*id);
                assigns.push((c.rhs(), c.lhs(), EdgeKind::Cast(*id)));
            }
            Stmt::Call(id) if self.program.call_site(*id).kind() == CallKind::Static => {
                static_calls.push(*id);
            }
            _ => {}
        });
        for (lhs, obj) in news {
            let hctx = selector.select_heap(self.program, &mut self.interner, ctx, obj);
            let cs = self.cs_obj(hctx, obj);
            let ptr = self.var_ptr(ctx, lhs);
            self.enqueue_one(ptr, cs.0);
        }
        for (rhs, lhs, kind) in assigns {
            let s = self.var_ptr(ctx, rhs);
            let t = self.var_ptr(ctx, lhs);
            self.add_edge(s, t, kind);
        }
        for site in static_calls {
            let callee = self.program.call_site(site).target();
            let callee_ctx = selector.select_call(
                self.program,
                &mut self.interner,
                CallInfo {
                    caller_ctx: ctx,
                    site,
                    callee,
                    recv: None,
                },
            );
            self.add_call_edge(selector, plugin, ctx, site, callee_ctx, callee);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn add_call_edge<S: ContextSelector, P: Plugin>(
        &mut self,
        selector: &S,
        plugin: &P,
        caller_ctx: CtxId,
        site: CallSiteId,
        callee_ctx: CtxId,
        callee: MethodId,
    ) {
        if !self
            .call_edge_set
            .insert((caller_ctx, site, callee_ctx, callee))
        {
            return;
        }
        self.call_edges.push((caller_ctx, site, callee_ctx, callee));
        self.call_edges_by_callee
            .entry(callee)
            .or_default()
            .push((caller_ctx, site, callee_ctx));
        self.stats.call_edges += 1;
        self.add_reachable(selector, plugin, callee_ctx, callee);
        let cs = self.program.call_site(site);
        let m = self.program.method(callee);
        // [Param]: argument -> parameter edges (excluding the receiver,
        // which is populated object-by-object in [Call]).
        for (k, &param) in m.params().iter().enumerate() {
            let arg = cs.args()[k];
            let s = self.var_ptr(caller_ctx, arg);
            let t = self.var_ptr(callee_ctx, param);
            self.add_edge(s, t, EdgeKind::Param);
        }
        // [Return]: suppressed when the callee's return variable is in
        // cutReturns.
        if let (Some(lhs), Some(ret)) = (cs.lhs(), m.ret_var()) {
            if !plugin.is_return_cut(callee) {
                let s = self.var_ptr(callee_ctx, ret);
                let t = self.var_ptr(caller_ctx, lhs);
                self.add_edge(s, t, EdgeKind::Return(callee));
            }
        }
        if self.emit_events {
            self.events.push_back(Event::NewCallEdge {
                caller_ctx,
                site,
                callee_ctx,
                callee,
            });
        }
    }

    /// Processes one worklist entry (always a representative — the queue is
    /// canonicalized at pop time). Returns `false` when the budget is
    /// exhausted.
    fn step<S: ContextSelector, P: Plugin>(
        &mut self,
        selector: &S,
        plugin: &P,
        ptr: PtrId,
        incoming: PointsToSet,
    ) -> bool {
        let Some(delta) = self.slots.pts_mut(ptr.0).union_delta(&incoming) else {
            return true;
        };
        self.stats.propagations += 1;
        if self.balanced_route {
            self.bump_route_cost(ptr.0, delta.len() as u64);
        }
        if let Some(max) = self.budget.max_propagations {
            if self.stats.propagations > max {
                return false;
            }
        }
        if let Some(limit) = self.budget.time {
            // Checking the clock every 1024 propagations keeps overhead low.
            if self.stats.propagations.is_multiple_of(1024) && self.started.elapsed() > limit {
                return false;
            }
        }

        // [Propagate] along PFG edges (respecting cast filters). Unfiltered
        // edges enqueue the delta by reference; only cast edges pay for a
        // filtered copy. The successor row is walked with a segment cursor:
        // each 56-byte segment is copied out of the arena by value, which
        // releases the borrow before `enqueue` mutates other slots —
        // nothing inside `enqueue`/`apply_filter` can append to this row
        // (the old take/put split borrow asserted the same invariant).
        let mut seg_idx = self.slots.succ_head(ptr.0);
        while seg_idx != crate::arena::NONE {
            let seg = self.slots.succ_seg(ptr.0, seg_idx);
            for &(t, code) in &seg.entries[..seg.len as usize] {
                match crate::arena::decode_filter(code) {
                    None => self.enqueue(PtrId(t), &delta),
                    Some(class) => {
                        let out = self.apply_filter(&delta, class);
                        self.enqueue(PtrId(t), &out);
                    }
                }
            }
            seg_idx = seg.next;
        }

        self.fan_out(selector, plugin, ptr, delta);
        true
    }

    /// Statement processing and `NewPointsTo` events for a committed delta,
    /// fanned out to every member of a collapsed SCC — each member's
    /// loads/stores/calls must see the shared set's growth exactly as they
    /// would uncollapsed. The member list is taken out and restored around
    /// the loop (nothing inside statement processing can reach `members`;
    /// merges only happen between worklist steps), avoiding an O(|SCC|)
    /// clone per delta. Shared by the sequential `step` and the parallel
    /// coordinator phase.
    fn fan_out<S: ContextSelector, P: Plugin>(
        &mut self,
        selector: &S,
        plugin: &P,
        ptr: PtrId,
        delta: PointsToSet,
    ) {
        if let Some(group) = self.members.remove(&ptr.0) {
            for &m in &group {
                if let PtrKey::Var(ctx, v) = self.ptr_keys[m as usize] {
                    self.process_var_stmts(selector, plugin, ctx, v, &delta);
                }
            }
            if self.emit_events {
                for &m in &group {
                    self.events.push_back(Event::NewPointsTo {
                        ptr: PtrId(m),
                        delta: delta.clone(),
                    });
                }
            }
            self.members.insert(ptr.0, group);
        } else {
            if let PtrKey::Var(ctx, v) = self.ptr_keys[ptr.0 as usize] {
                self.process_var_stmts(selector, plugin, ctx, v, &delta);
            }
            if self.emit_events {
                self.events.push_back(Event::NewPointsTo { ptr, delta });
            }
        }
    }

    /// The `[Load]` / `[Store]` / `[Call]` rules for one variable whose
    /// points-to set grew by `delta`.
    fn process_var_stmts<S: ContextSelector, P: Plugin>(
        &mut self,
        selector: &S,
        plugin: &P,
        ctx: CtxId,
        v: VarId,
        delta: &PointsToSet,
    ) {
        // [Load]
        for i in 0..self.stmts.loads_with_base[v.index()].len() {
            let l = self.stmts.loads_with_base[v.index()][i];
            let site = self.program.load(l);
            let (lhs, field) = (site.lhs(), site.field());
            let t = self.var_ptr(ctx, lhs);
            for o in delta.iter() {
                let s = self.field_ptr(CsObjId(o), field);
                self.add_edge(s, t, EdgeKind::Load(l));
            }
        }
        // [Store] (cut-aware)
        for i in 0..self.stmts.stores_with_base[v.index()].len() {
            let st = self.stmts.stores_with_base[v.index()][i];
            if plugin.is_store_cut(st) {
                continue;
            }
            let site = self.program.store(st);
            let (rhs, field) = (site.rhs(), site.field());
            let s = self.var_ptr(ctx, rhs);
            for o in delta.iter() {
                let t = self.field_ptr(CsObjId(o), field);
                self.add_edge(s, t, EdgeKind::Store(st));
            }
        }
        // [Call]
        for i in 0..self.stmts.calls_with_recv[v.index()].len() {
            let site = self.stmts.calls_with_recv[v.index()][i];
            for o in delta.iter() {
                self.process_instance_call(selector, plugin, ctx, site, CsObjId(o));
            }
        }
    }

    fn process_instance_call<S: ContextSelector, P: Plugin>(
        &mut self,
        selector: &S,
        plugin: &P,
        caller_ctx: CtxId,
        site: CallSiteId,
        recv: CsObjId,
    ) {
        let cs = self.program.call_site(site);
        let (heap_ctx, obj) = self.obj_key(recv);
        let callee = match cs.kind() {
            CallKind::Virtual => {
                let class = self.program.obj(obj).class();
                match self.program.dispatch(class, cs.target()) {
                    Some(m) => m,
                    None => return, // no concrete impl: spurious receiver
                }
            }
            CallKind::Special => cs.target(),
            CallKind::Static => unreachable!("static calls have no receiver"),
        };
        let callee_ctx = selector.select_call(
            self.program,
            &mut self.interner,
            CallInfo {
                caller_ctx,
                site,
                callee,
                recv: Some((heap_ctx, obj)),
            },
        );
        self.add_call_edge(selector, plugin, caller_ctx, site, callee_ctx, callee);
        // [Call]: the receiver object flows into the callee's `this`.
        if let Some(this) = self.program.method(callee).this_var() {
            let t = self.var_ptr(callee_ctx, this);
            self.enqueue_one(t, recv.0);
        }
    }

    // ---- SCC-collapsed propagation ----------------------------------------

    /// Whether enough unfiltered copy edges accumulated to pay for a
    /// condensation epoch. The adaptive threshold is geometric — the next
    /// epoch waits for the edge count to grow by a constant fraction — so
    /// the total condensation work stays `O((V + E) log E)` regardless of
    /// how large the graph gets.
    fn should_collapse(&self) -> bool {
        if !self.opts.collapse_sccs || self.copy_edges_since_collapse == 0 {
            return false;
        }
        let threshold = self
            .opts
            .collapse_epoch
            .unwrap_or_else(|| crate::scc::epoch_threshold(self.stats.edges));
        self.copy_edges_since_collapse >= threshold
    }

    /// One condensation epoch: finds SCCs of the unfiltered copy subgraph
    /// over the current representatives (offline Tarjan, Nuutila-style
    /// re-run per epoch) and merges each nontrivial SCC onto its smallest
    /// member.
    ///
    /// Merging unifies the shared points-to set, successor list, and
    /// pending accumulator at the representative, then restores the
    /// uncollapsed solver's observable behavior in two replay passes:
    ///
    /// 1. the unified set is flushed along every (rebuilt) outgoing edge —
    ///    a member's edge may never have seen another member's elements;
    /// 2. every member whose old set was a strict subset of the union gets
    ///    per-member statement processing and a `NewPointsTo` event for the
    ///    missing elements, exactly as if the elements had propagated to it
    ///    around the cycle.
    fn collapse_cycles<S: ContextSelector, P: Plugin>(&mut self, selector: &S, plugin: &P) {
        self.copy_edges_since_collapse = 0;
        self.stats.scc_runs += 1;
        let n = self.ptr_keys.len();
        // Canonical unfiltered adjacency over representatives.
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for u in 0..n as u32 {
            if !self.reps.is_rep(u) {
                continue;
            }
            let mut out: Vec<u32> = Vec::new();
            for (t, filter) in self.slots.succ_iter(u) {
                if filter.is_none() {
                    let c = self.reps.find(t.0);
                    if c != u {
                        out.push(c);
                    }
                }
            }
            adj[u as usize] = out;
        }
        let mut catchups: Vec<(u32, PointsToSet)> = Vec::new();
        let mut flush_reps: Vec<u32> = Vec::new();
        for group in crate::scc::merge_groups(&self.reps, &adj) {
            let rep = group[0];
            self.stats.sccs_collapsed += 1;
            self.stats.ptrs_collapsed += (group.len() - 1) as u64;
            // Union the members' sets; remember each merged subgroup's old
            // set so its missing elements can be replayed per member.
            let mut union = PointsToSet::new();
            let mut subgroups: Vec<(Vec<u32>, PointsToSet)> = Vec::with_capacity(group.len());
            for &m in &group {
                let old = self.slots.take_pts(m);
                let sub = self.members.remove(&m).unwrap_or_else(|| vec![m]);
                union.union_with(&old);
                subgroups.push((sub, old));
            }
            let mut all: Vec<u32> = Vec::new();
            for (sub, mut old) in subgroups {
                if let Some(delta) = old.union_delta(&union) {
                    for &m in &sub {
                        catchups.push((m, delta.clone()));
                    }
                }
                all.extend(sub);
            }
            all.sort_unstable();
            self.members.insert(rep, all);
            self.slots.put_pts(rep, union);
            for &m in &group[1..] {
                self.reps.set_parent(m, rep);
            }
            if self.balanced_route {
                // Merged members' accumulated union cost follows the
                // surviving representative, like their sets do.
                for &m in &group[1..] {
                    let c = self
                        .route_cost
                        .get_mut(m as usize)
                        .map_or(0, std::mem::take);
                    if c != 0 {
                        self.bump_route_cost(rep, c);
                    }
                }
            }
            // Rebuild the representative's successor list: canonical
            // targets, intra-SCC edges dropped (the shared set makes them
            // no-ops), physical duplicates that earlier merges created
            // removed. Dedup is per (target, filter) so a cast edge never
            // shadows an unfiltered edge to the same target.
            let mut new_succ: Vec<(PtrId, Option<csc_ir::ClassId>)> = Vec::new();
            let mut seen: FxHashSet<(u32, Option<csc_ir::ClassId>)> = FxHashSet::default();
            for &m in &group {
                for (t, filter) in self.slots.take_succ(m) {
                    let c = self.reps.find(t.0);
                    if c != rep && seen.insert((c, filter)) {
                        new_succ.push((PtrId(c), filter));
                    }
                }
            }
            self.slots.put_succ(rep, new_succ);
            // Migrate the merged members' edge-dedup groups onto the
            // surviving representative (pairs keep their original
            // endpoints — only the grouping key, and with it the owning
            // shard, changes).
            let mut pairs = self.slots.take_edge_pairs(rep).unwrap_or_default();
            for &m in &group[1..] {
                if let Some(p) = self.slots.take_edge_pairs(m) {
                    if pairs.is_empty() {
                        pairs = p;
                    } else {
                        pairs.merge(&p);
                    }
                }
            }
            if !pairs.is_empty() {
                self.slots.put_edge_pairs(rep, pairs);
            }
            // Merge the pending accumulators; requeue the representative if
            // a member (but not the representative itself) was queued.
            let mut pend = self.slots.take_pending(rep);
            let rep_was_queued = !pend.is_empty();
            for &m in &group[1..] {
                let p = self.slots.take_pending(m);
                pend.union_with(&p);
            }
            if !pend.is_empty() {
                if !rep_was_queued {
                    self.queue.push_back(PtrId(rep));
                }
                self.slots.put_pending(rep, pend);
            }
            flush_reps.push(rep);
        }
        self.reps.flatten();

        // Replay pass 1: flush the unified sets along the rebuilt edges.
        // The set is taken out and restored around the loop and the
        // successor row walked by segment cursor (`enqueue` can reach
        // neither), instead of paying an O(|succ|) clone per collapsed
        // representative.
        for rep in flush_reps {
            if self.slots.pts(rep).is_empty() {
                continue;
            }
            let pts = self.slots.take_pts(rep);
            let mut seg_idx = self.slots.succ_head(rep);
            while seg_idx != crate::arena::NONE {
                let seg = self.slots.succ_seg(rep, seg_idx);
                for &(t, code) in &seg.entries[..seg.len as usize] {
                    match crate::arena::decode_filter(code) {
                        None => self.enqueue(PtrId(t), &pts),
                        Some(class) => {
                            let out = self.apply_filter(&pts, class);
                            self.enqueue(PtrId(t), &out);
                        }
                    }
                }
                seg_idx = seg.next;
            }
            self.slots.put_pts(rep, pts);
        }
        // Replay pass 2: per-member catch-up for elements a member had not
        // seen before its set was unified.
        for (m, delta) in catchups {
            if let PtrKey::Var(ctx, v) = self.ptr_keys[m as usize] {
                self.process_var_stmts(selector, plugin, ctx, v, &delta);
            }
            if self.emit_events {
                self.events.push_back(Event::NewPointsTo {
                    ptr: PtrId(m),
                    delta,
                });
            }
        }

        // Topology-aware routing: re-home slots by observed union cost now
        // that representatives are canonical for the epoch.
        if self.balanced_route {
            self.rebalance_shards();
        }
    }

    /// Accumulates observed union cost against slot `rep` (the seed for
    /// [`SolverState::rebalance_shards`]). Only called under
    /// `balanced_route`, so the `mod` default pays nothing.
    fn bump_route_cost(&mut self, rep: u32, amount: u64) {
        if self.route_cost.len() <= rep as usize {
            self.route_cost.resize(rep as usize + 1, 0);
        }
        self.route_cost[rep as usize] += amount;
    }

    /// The topology-aware routing pass (`CSC_SHARD_ROUTE=balanced`), run
    /// at condensation epochs: assigns live representatives to shards by a
    /// greedy longest-processing-time bin-pack over accumulated union cost
    /// — heaviest first (ties to the lower id), each onto the currently
    /// least-loaded shard (ties to the lower shard index) — leaves
    /// non-representative slots on the round-robin layout, and physically
    /// migrates the rows ([`crate::shard::ShardedSlots::apply_route`]).
    /// Purely a placement change: slot ids, and with them every projection
    /// and propagation count, are untouched, so runs stay deterministic
    /// per (thread count, commit mode, route mode).
    fn rebalance_shards(&mut self) {
        let n = self.nthreads;
        let len = self.slots.len();
        let mut target: Vec<u32> = (0..len).map(|i| i % n as u32).collect();
        let mut ranked: Vec<(u64, u32)> = (0..len)
            .filter(|&u| self.reps.is_rep(u))
            .map(|u| (self.route_cost.get(u as usize).copied().unwrap_or(0), u))
            .collect();
        ranked.sort_unstable_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        let mut load = vec![0u64; n];
        for (cost, u) in ranked {
            let s = (0..n).min_by_key(|&s| load[s]).expect("at least one shard");
            // Even a zero-cost representative counts one unit, so
            // never-propagated slots still spread across shards instead of
            // piling onto shard 0.
            load[s] += cost.max(1);
            target[u as usize] = u32::try_from(s).expect("shard index fits u32");
        }
        self.slots.apply_route(target);
    }

    // ---- sharded parallel propagation -------------------------------------

    /// One bulk-synchronous parallel propagation round, dispatched onto
    /// the persistent worker pool.
    ///
    /// The coordinator drains the whole worklist into per-shard batches
    /// (slot id modulo shard count — representatives only, so a collapsed
    /// SCC never straddles shards), freezes the round-shared state (succ /
    /// reps / members / keys / statement index / plugin) into one
    /// [`crate::shard::RoundShared`], and hands each pooled worker its
    /// shard plus its batch. The workers run the three sub-phases of
    /// [`crate::shard::run_worker`]: union the batched deltas into their
    /// owned points-to sets and route the new elements through per-shard
    /// outboxes, replay statement fan-out and plugin discovery for the
    /// committed deltas as [`crate::shard::Derived`] packets, and merge
    /// the inboxes into the owners' pending accumulators. Back on the
    /// coordinator, [`SolverState::commit_derived`] commits the packets in
    /// deterministic (shard, batch, packet) order — interning, PFG and
    /// call-graph growth, context selection, plugin-table updates, and SCC
    /// epochs stay single-threaded between rounds, which is what keeps
    /// runs deterministic for a fixed thread count.
    ///
    /// Whether a drained batch of `len` representatives should be
    /// processed inline on the coordinator instead of dispatched to the
    /// worker pool.
    ///
    /// Without round fusion this is the fixed `32 × threads` heuristic of
    /// the PR-4 engine, byte-for-byte. With `CSC_ROUND_FUSION=1` the
    /// threshold adapts to the observed round-size regime: a streak of
    /// eight consecutive inline rounds doubles it (event-driven solves
    /// drip-feed thousands of tiny rounds — fusing them amortizes pool
    /// dispatch), a dispatched round re-anchors it at twice that round's
    /// size (capped at `2048 × threads`), and a wave-front round at least
    /// four times over the threshold snaps it back to the base so the
    /// heavy phase parallelizes immediately. Driven purely by batch
    /// lengths, which are deterministic per thread count on the BSP
    /// engine, so fusion never costs reproducibility.
    fn inline_round(&mut self, len: usize) -> bool {
        let base = 32 * self.nthreads;
        if !self.round_fusion {
            return len < base;
        }
        let cap_max = 2048 * self.nthreads;
        if len < self.inline_cap {
            self.fused_streak += 1;
            if self.fused_streak >= 8 {
                self.fused_streak = 0;
                self.inline_cap = (self.inline_cap * 2).min(cap_max);
            }
            true
        } else {
            self.fused_streak = 0;
            self.inline_cap = if len >= self.inline_cap * 4 {
                base
            } else {
                (len * 2).min(cap_max)
            };
            false
        }
    }

    /// Returns `false` when the budget was exhausted.
    fn parallel_round<'scope, S, P>(
        &mut self,
        selector: &S,
        plugin: &mut Option<P>,
        pool: &crate::pool::WorkerPool<'scope, 'p, P>,
    ) -> Phase
    where
        S: ContextSelector,
        P: Plugin + Send + Sync + 'scope,
        'p: 'scope,
    {
        let n = self.nthreads;
        // Drain the queue in order, canonicalizing stale entries exactly
        // like the sequential pop does.
        let mut batch: Vec<(u32, PointsToSet)> = Vec::with_capacity(self.queue.len());
        while let Some(ptr) = self.queue.pop_front() {
            let rep = self.reps.find(ptr.0);
            let incoming = self.slots.take_pending(rep);
            if incoming.is_empty() {
                continue; // duplicate queue entry; already drained
            }
            batch.push((rep, incoming));
        }

        // Small rounds run inline on the coordinator: plugin-driven
        // solves drip-feed the worklist one event at a time (thousands of
        // rounds of a handful of pointers), where even pool dispatch
        // overhead would dominate wall-clock. The threshold is
        // deterministic, so runs stay reproducible; the wave-front rounds
        // that carry the real union work exceed it by orders of magnitude.
        if self.inline_round(batch.len()) {
            let p = plugin.as_ref().expect("plugin present between rounds");
            for (rep, incoming) in batch {
                if !self.step(selector, p, PtrId(rep), incoming) {
                    return Phase::Budget;
                }
            }
            return Phase::Done;
        }

        self.stats.parallel_rounds += 1;
        // Partition into per-shard batches (queue order within a shard).
        let mut work: Vec<Vec<(u32, PointsToSet)>> = vec![Vec::new(); n];
        for (rep, incoming) in batch {
            work[self.slots.shard_of(rep)].push((rep, incoming));
        }

        // Freeze the round-shared state. Everything is *moved* (Vec
        // headers and the plugin — no elements are copied) into one Arc
        // the workers share and the coordinator reclaims at the barrier;
        // see `crate::pool` for the ownership protocol.
        let discovery = plugin
            .as_ref()
            .expect("plugin present between rounds")
            .parallel_discovery();
        // The commit plane additionally freezes the intern tables: workers
        // read them to resolve `[Load]`/`[Store]` targets, allocating
        // misses from their pre-reserved id strides.
        let commit = self.par_commit.then(|| crate::shard::CommitShared {
            ci_var_ptrs: std::mem::take(&mut self.ci_var_ptrs),
            var_ptr_table: std::mem::take(&mut self.var_ptr_table),
            field_ptr_table: std::mem::take(&mut self.field_ptr_table),
        });
        let shared = std::sync::Arc::new(crate::shard::RoundShared {
            reps: std::mem::take(&mut self.reps),
            members: std::mem::take(&mut self.members),
            ptr_keys: std::mem::take(&mut self.ptr_keys),
            obj_keys: std::mem::take(&mut self.obj_keys),
            stmts: std::mem::take(&mut self.stmts),
            program: self.program,
            plugin: plugin.take().expect("plugin present between rounds"),
            discovery,
            nshards: n as u32,
            deadline: self.budget.time.map(|limit| self.started + limit),
            commit,
            route: self.slots.route.take(),
        });
        let (txs, rxs): (Vec<_>, Vec<_>) = (0..n)
            .map(|_| std::sync::mpsc::channel::<crate::shard::Packet>())
            .unzip();
        let (etxs, erxs): (Vec<_>, Vec<_>) = (0..n)
            .map(|_| std::sync::mpsc::channel::<crate::shard::EdgePacket>())
            .unzip();
        let mut jobs = Vec::with_capacity(n);
        for (i, ((batch, rx), erx)) in work.into_iter().zip(rxs).zip(erxs).enumerate() {
            jobs.push(crate::shard::RoundJob {
                shared: std::sync::Arc::clone(&shared),
                shard: std::mem::take(&mut self.slots.shards[i]),
                batch,
                txs: txs.clone(),
                rx,
                etxs: etxs.clone(),
                erx,
                bufs: pool.bufs(),
            });
        }
        drop(txs);
        drop(etxs);

        // Parallel phase: the pooled workers run; the coordinator only
        // waits at the barrier. This span is what `parallel_secs` counts.
        let par_start = Instant::now();
        let report = pool.round(jobs);
        self.stats.parallel_secs += par_start.elapsed().as_secs_f64();

        // Reclaim the frozen state: every worker dropped its Arc clone
        // before reporting, so the Arc is unique again.
        let Ok(shared) = std::sync::Arc::try_unwrap(shared) else {
            unreachable!("round state still shared after the barrier")
        };
        self.reps = shared.reps;
        self.members = shared.members;
        self.ptr_keys = shared.ptr_keys;
        self.obj_keys = shared.obj_keys;
        self.stmts = shared.stmts;
        if let Some(c) = shared.commit {
            self.ci_var_ptrs = c.ci_var_ptrs;
            self.var_ptr_table = c.var_ptr_table;
            self.field_ptr_table = c.field_ptr_table;
        }
        self.slots.route = shared.route;
        *plugin = Some(shared.plugin);

        // Coordinator phase: restore the shards, requeue newly pending
        // representatives, and commit the derived packets, all in shard
        // order (deterministic).
        let mut stmt_groups: Vec<(Vec<crate::shard::DeltaCommit>, Vec<crate::shard::Derived>)> =
            Vec::with_capacity(n);
        let mut fresh_logs = Vec::with_capacity(n);
        let mut edge_logs = Vec::with_capacity(n);
        let mut flush_logs = Vec::with_capacity(n);
        let mut timed_out = false;
        let poison = report.poison;
        for (i, (shard, r)) in report.results.into_iter().enumerate() {
            self.slots.shards[i] = shard;
            let Some(r) = r else { continue };
            self.stats.propagations += r.propagations;
            self.queue.extend(r.newly_queued);
            stmt_groups.push((r.stmt, r.derived));
            fresh_logs.push(r.fresh);
            edge_logs.push(r.edges);
            flush_logs.push(r.flushes);
            timed_out |= r.timed_out;
        }

        // A poisoned round unwinds like a budget abort, but *harder*: the
        // panicked worker's fresh-id and edge logs are gone, so running
        // reconciliation on the surviving logs could leave peers' packets
        // referencing ids the slot plane never registered. Every round log
        // is dropped wholesale, the worklist is cleared, and the state is
        // marked poisoned — safe to drop and to read, never continued.
        if let Some(err) = poison {
            self.poisoned = true;
            self.queue.clear();
            return Phase::Poisoned(err);
        }

        // Commit section (what `commit_secs` measures): reconcile the
        // workers' id-stride allocations and edge commits, then replay the
        // derived packets. Reconciliation runs even on an aborting round
        // so the id space and the already-mutated shards stay consistent;
        // only the derived packets are dropped, like the replay path.
        let commit_start = Instant::now();
        if self.par_commit {
            self.reconcile_round(fresh_logs, edge_logs, flush_logs);
        }
        let ok = 'commit: {
            if timed_out {
                break 'commit false;
            }
            if let Some(max) = self.budget.max_propagations {
                if self.stats.propagations > max {
                    break 'commit false;
                }
            }
            if let Some(limit) = self.budget.time {
                if self.started.elapsed() > limit {
                    break 'commit false;
                }
            }
            let p = plugin.as_mut().expect("plugin restored after the round");
            for (stmts, derived) in stmt_groups {
                let mut packets = derived.into_iter();
                let mut start = 0u32;
                for (ptr, delta, end) in stmts {
                    // The outbox clones were merged and dropped in the
                    // workers' merge sub-phase, so this unwraps copy-free.
                    let delta = std::sync::Arc::unwrap_or_clone(delta);
                    if self.balanced_route {
                        self.bump_route_cost(ptr.0, delta.len() as u64);
                    }
                    let count = (end - start) as usize;
                    start = end;
                    self.commit_derived(
                        selector,
                        p,
                        ptr,
                        &delta,
                        packets.by_ref().take(count),
                        discovery,
                    );
                }
            }
            true
        };
        self.stats.commit_secs += commit_start.elapsed().as_secs_f64();
        if ok {
            Phase::Done
        } else {
            Phase::Budget
        }
    }

    /// One async work-stealing propagation phase (`CSC_ENGINE=async`, the
    /// default multi-threaded engine; see `crate::steal`).
    ///
    /// Where [`SolverState::parallel_round`] pays a barrier plus a
    /// sequential coordinator pass per round, this drains the *entire*
    /// reachable worklist in one continuously-running phase: the
    /// coordinator seeds each shard's worklist, dispatches the pool into
    /// the steal plane, and waits on the quiescence detector — one
    /// coordinated *pause* (counted in `pause_count`) per structural
    /// phase, however many propagation "rounds" the fixpoint would have
    /// taken. The phase logs (committed deltas, derived packets) are then
    /// committed exactly like a round's, so call-graph growth, context
    /// selection, plugin `apply`, and SCC epochs stay coordinator-side.
    ///
    /// The phase runs with the commit plane off (`commit: None`): edge
    /// growth happens at the pause point, where the statement fan-out of
    /// the *whole* phase commits in one pass — the async engine removes
    /// round barriers, not the discover/commit split.
    ///
    /// Returns [`Phase::Budget`] when the budget was exhausted and
    /// [`Phase::Poisoned`] when a worker died (or an injected fault
    /// fired); either way the phase teardown has already completed.
    fn async_phase<'scope, S, P>(
        &mut self,
        selector: &S,
        plugin: &mut Option<P>,
        pool: &crate::pool::WorkerPool<'scope, 'p, P>,
    ) -> Phase
    where
        S: ContextSelector,
        P: Plugin + Send + Sync + 'scope,
        'p: 'scope,
    {
        let n = self.nthreads;
        // Drain the queue in order, canonicalizing stale entries exactly
        // like the sequential pop does.
        let mut batch: Vec<(u32, PointsToSet)> = Vec::with_capacity(self.queue.len());
        while let Some(ptr) = self.queue.pop_front() {
            let rep = self.reps.find(ptr.0);
            let incoming = self.slots.take_pending(rep);
            if incoming.is_empty() {
                continue; // duplicate queue entry; already drained
            }
            batch.push((rep, incoming));
        }

        // Small batches run inline on the coordinator, exactly like the
        // BSP engine's small rounds: event-driven solves drip-feed a
        // handful of pointers per event, where a pool dispatch (let alone
        // a quiescence-detected phase) would dominate.
        if batch.len() < 32 * n {
            let p = plugin.as_ref().expect("plugin present between rounds");
            for (rep, incoming) in batch {
                if !self.step(selector, p, PtrId(rep), incoming) {
                    return Phase::Budget;
                }
            }
            return Phase::Done;
        }

        self.stats.pause_count += 1;
        // Seed the shard worklists: restore each drained delta into its
        // pending accumulator (batch representatives are distinct, so
        // each seed carries exactly one unit of outstanding work).
        let mut seeds: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut seeded = 0u64;
        for (rep, incoming) in batch {
            let s = self.slots.shard_of(rep);
            self.slots.put_pending(rep, incoming);
            seeds[s].push(rep);
            seeded += 1;
        }

        // Freeze the phase-shared state (same ownership protocol as the
        // BSP round; see `crate::pool`).
        let discovery = plugin
            .as_ref()
            .expect("plugin present between rounds")
            .parallel_discovery();
        let shared = std::sync::Arc::new(crate::shard::RoundShared {
            reps: std::mem::take(&mut self.reps),
            members: std::mem::take(&mut self.members),
            ptr_keys: std::mem::take(&mut self.ptr_keys),
            obj_keys: std::mem::take(&mut self.obj_keys),
            stmts: std::mem::take(&mut self.stmts),
            program: self.program,
            plugin: plugin.take().expect("plugin present between rounds"),
            discovery,
            nshards: n as u32,
            deadline: self.budget.time.map(|limit| self.started + limit),
            commit: None,
            route: self.slots.route.take(),
        });
        let prop_limit = self
            .budget
            .max_propagations
            .map(|m| m.saturating_sub(self.stats.propagations));
        let ctrl = std::sync::Arc::new(crate::steal::AsyncCtrl::new(n, prop_limit, pool.bufs()));
        ctrl.seed_work(seeded);
        let cells: Vec<crate::steal::ShardCell> = seeds
            .into_iter()
            .enumerate()
            .map(|(i, seed)| {
                crate::steal::ShardCell::new(std::mem::take(&mut self.slots.shards[i]), seed)
            })
            .collect();
        let cells = std::sync::Arc::new(cells);
        let jobs: Vec<crate::pool::StealJob<'p, P>> = (0..n)
            .map(|_| crate::pool::StealJob {
                shared: std::sync::Arc::clone(&shared),
                ctrl: std::sync::Arc::clone(&ctrl),
                cells: std::sync::Arc::clone(&cells),
            })
            .collect();

        // Parallel phase: the workers propagate to quiescence (or abort);
        // the coordinator only waits on the detector.
        let par_start = Instant::now();
        let phase_err = pool.steal_phase(jobs, &ctrl).err();
        self.stats.parallel_secs += par_start.elapsed().as_secs_f64();

        // Reclaim the frozen state: every worker dropped its Arcs before
        // reporting, so both are unique again.
        let Ok(shared) = std::sync::Arc::try_unwrap(shared) else {
            unreachable!("phase state still shared after quiescence")
        };
        self.reps = shared.reps;
        self.members = shared.members;
        self.ptr_keys = shared.ptr_keys;
        self.obj_keys = shared.obj_keys;
        self.stmts = shared.stmts;
        self.slots.route = shared.route;
        *plugin = Some(shared.plugin);
        let Ok(cells) = std::sync::Arc::try_unwrap(cells) else {
            unreachable!("shard cells still shared after quiescence")
        };

        // Coordinator pause: restore the shards, collect the phase logs,
        // and (on abort) requeue whatever the workers left behind so the
        // partial state stays consistent.
        let aborted = ctrl.was_aborted();
        self.stats.steal_count += ctrl.steal_count();
        let mut stmt_groups: Vec<(Vec<crate::shard::DeltaCommit>, Vec<crate::shard::Derived>)> =
            Vec::with_capacity(n);
        for (i, cell) in cells.into_iter().enumerate() {
            let sh = cell.into_inner();
            self.slots.shards[i] = sh.shard;
            self.stats.propagations += sh.propagations;
            // Leftover worklist entries exist only on abort; their pending
            // accumulators are still populated, so requeueing the ids
            // restores the sequential worklist invariant.
            self.queue.extend(sh.queue.into_iter().map(PtrId));
            stmt_groups.push((sh.stmt, sh.derived));
        }
        // Undelivered inbox messages (abort only) re-enter through the
        // normal enqueue path.
        for (trep, payload) in ctrl.drain_leftovers() {
            self.enqueue(PtrId(trep), &payload);
        }

        // A poisoned phase (worker panic or injected fault) unwinds like a
        // budget abort — derived packets dropped, shards already restored
        // above — but the state is marked dead: safe to drop and to read,
        // never continued.
        if let Some(err) = phase_err {
            self.poisoned = true;
            self.queue.clear();
            return Phase::Poisoned(err);
        }

        // Commit section: replay the phase's derived packets in (shard,
        // processing order) — dropped wholesale on abort, like a round's.
        let commit_start = Instant::now();
        let ok = 'commit: {
            if aborted {
                break 'commit false;
            }
            if let Some(max) = self.budget.max_propagations {
                if self.stats.propagations > max {
                    break 'commit false;
                }
            }
            if let Some(limit) = self.budget.time {
                if self.started.elapsed() > limit {
                    break 'commit false;
                }
            }
            let p = plugin.as_mut().expect("plugin restored after the phase");
            for (stmts, derived) in stmt_groups {
                let mut packets = derived.into_iter();
                let mut start = 0u32;
                for (ptr, delta, end) in stmts {
                    // Every inbox clone of the delta was merged and
                    // dropped during the phase, so this unwraps copy-free.
                    let delta = std::sync::Arc::unwrap_or_clone(delta);
                    if self.balanced_route {
                        self.bump_route_cost(ptr.0, delta.len() as u64);
                    }
                    let count = (end - start) as usize;
                    start = end;
                    self.commit_derived(
                        selector,
                        p,
                        ptr,
                        &delta,
                        packets.by_ref().take(count),
                        discovery,
                    );
                }
            }
            true
        };
        self.stats.commit_secs += commit_start.elapsed().as_secs_f64();
        if ok {
            Phase::Done
        } else {
            Phase::Budget
        }
    }

    /// The commit plane's coordinator-side reconciliation, run once per
    /// parallel round after the shards are restored.
    ///
    /// Workers interned fresh pointers from disjoint id strides, so ids
    /// never collide — but two workers may have interned the *same key*
    /// under different ids. This pass canonicalizes, in deterministic
    /// shard-major allocation order:
    ///
    /// * **Pass A** — register each fresh key: the first occurrence keeps
    ///   its id (written into `ptr_keys` and the intern tables); later
    ///   duplicates are *aliased* — their key slot stays [`PtrKey::Dead`],
    ///   their union-find entry is parented onto the canonical id (so any
    ///   stored reference canonicalizes through `repr`), and they never
    ///   join a `members` group (merge election only considers live
    ///   representatives).
    /// * **Pass B** — migrate the duplicates' worker-committed growth
    ///   (successor rows, edge-pair groups) onto their canonicals,
    ///   *verbatim*: pass C rewrites endpoints through the alias map, and
    ///   rewriting them here too would make its canonical-pair inserts
    ///   collide with themselves.
    /// * **Pass C** — re-check the workers' edge logs against the
    ///   canonical id space: rewritten pairs replace their raw entries in
    ///   the dedup groups; a pair another worker already committed under a
    ///   different fresh id is dropped (its leftover successor entry is
    ///   idempotent and deduplicated at the next condensation epoch).
    ///   Survivors are counted and, when events are on, announced — the
    ///   workers never touch `SolverStats`.
    ///
    /// Finally the workers' flush payloads (source sets cloned shard-side
    /// at edge-commit time) are enqueued; `enqueue` routes them through
    /// `repr`, so flushes to an aliased duplicate land on its canonical.
    fn reconcile_round(
        &mut self,
        fresh: Vec<Vec<(PtrKey, u32)>>,
        edges: Vec<Vec<crate::shard::EdgeReq>>,
        flushes: Vec<Vec<(u32, std::sync::Arc<PointsToSet>)>>,
    ) {
        // Pad the slot plane to the post-round layout (each worker
        // appended rows for its own stride only, leaving shards ragged).
        let mut new_len = self.slots.len();
        for log in &fresh {
            // Stride ids are allocated in increasing order per worker.
            if let Some(&(_, id)) = log.last() {
                new_len = new_len.max(id + 1);
            }
        }
        if new_len > self.slots.len() {
            let appended: Vec<usize> = fresh.iter().map(Vec::len).collect();
            self.slots.pad_to(new_len, &appended);
            let old_len = u32::try_from(self.ptr_keys.len()).expect("too many pointers");
            self.ptr_keys.resize(new_len as usize, PtrKey::Dead);
            for _ in old_len..new_len {
                self.reps.push();
            }
        }

        // Pass A.
        let mut alias: FxHashMap<u32, u32> = FxHashMap::default();
        for log in &fresh {
            for &(key, id) in log {
                debug_assert!(matches!(self.ptr_keys[id as usize], PtrKey::Dead));
                if let Some(canon) = self.find_ptr(key) {
                    alias.insert(id, canon.0);
                    self.reps.set_parent(id, canon.0);
                    continue;
                }
                self.ptr_keys[id as usize] = key;
                match key {
                    PtrKey::Var(ctx, v) if ctx == CtxId::EMPTY => {
                        self.ci_var_ptrs[v.index()] = id;
                    }
                    PtrKey::Var(ctx, v) => {
                        self.var_ptr_table.insert((ctx, v), PtrId(id));
                    }
                    PtrKey::Field(obj, f) => {
                        self.field_ptr_table.insert((obj, f), PtrId(id));
                    }
                    PtrKey::Dead => unreachable!("workers never intern dead keys"),
                }
                self.stats.pointers += 1;
            }
        }

        // Pass B (skipped entirely in the common no-duplicates case).
        if !alias.is_empty() {
            for log in &fresh {
                for &(_, id) in log {
                    let Some(&canon) = alias.get(&id) else {
                        continue;
                    };
                    let succ = self.slots.take_succ(id);
                    if !succ.is_empty() {
                        self.slots.extend_succ(canon, succ);
                    }
                    if let Some(pairs) = self.slots.take_edge_pairs(id) {
                        let group = self.slots.edge_pairs_mut(canon);
                        if group.is_empty() {
                            *group = pairs;
                        } else {
                            group.merge(&pairs);
                        }
                    }
                }
            }
        }

        // Pass C.
        for log in &edges {
            for &(src, dst, kind) in log {
                let asrc = alias.get(&src).copied().unwrap_or(src);
                let adst = alias.get(&dst).copied().unwrap_or(dst);
                if (asrc, adst) != (src, dst) {
                    let csrc = self.reps.find(asrc);
                    let group = self.slots.edge_pairs_mut(csrc);
                    group.remove(src, dst);
                    if asrc == adst || !group.insert(asrc, adst) {
                        continue;
                    }
                }
                self.stats.edges += 1;
                if self.reps.find(asrc) != self.reps.find(adst) {
                    // Worker-committed edges are unfiltered copies.
                    self.copy_edges_since_collapse += 1;
                }
                if self.emit_events {
                    self.events.push_back(Event::NewEdge {
                        src: PtrId(asrc),
                        dst: PtrId(adst),
                        kind,
                    });
                }
            }
        }

        // Flushes, in (shard, commit) order.
        for log in flushes {
            for (dst, payload) in log {
                self.enqueue(PtrId(dst), &payload);
            }
        }
    }

    /// Commits one committed delta's worker-derived packets: interning,
    /// edge/call-graph mutation, context selection, and plugin reactions,
    /// in the deterministic order the worker emitted them. For plugins
    /// without worker-side discovery, also queues the per-member
    /// `NewPointsTo` events the sequential `fan_out` would have queued.
    fn commit_derived<S: ContextSelector, P: Plugin>(
        &mut self,
        selector: &S,
        plugin: &mut P,
        ptr: PtrId,
        delta: &PointsToSet,
        derived: impl Iterator<Item = crate::shard::Derived>,
        discovery: bool,
    ) {
        use crate::shard::Derived;
        for d in derived {
            match d {
                Derived::LoadFan { site, ctx } => {
                    // Same shape as the sequential `[Load]` loop: intern
                    // the target once, then one field pointer per object.
                    let l = self.program.load(site);
                    let (lhs, field) = (l.lhs(), l.field());
                    let t = self.var_ptr(ctx, lhs);
                    for o in delta.iter() {
                        let s = self.field_ptr(CsObjId(o), field);
                        self.add_edge(s, t, EdgeKind::Load(site));
                    }
                }
                Derived::StoreFan { site, ctx } => {
                    let st = self.program.store(site);
                    let (rhs, field) = (st.rhs(), st.field());
                    let s = self.var_ptr(ctx, rhs);
                    for o in delta.iter() {
                        let t = self.field_ptr(CsObjId(o), field);
                        self.add_edge(s, t, EdgeKind::Store(site));
                    }
                }
                Derived::Call {
                    caller_ctx,
                    site,
                    recv,
                    callee,
                } => {
                    // The worker resolved dispatch; context selection and
                    // the `[Call]` receiver flow stay coordinator-side.
                    let (heap_ctx, obj) = self.obj_key(CsObjId(recv));
                    let callee_ctx = selector.select_call(
                        self.program,
                        &mut self.interner,
                        CallInfo {
                            caller_ctx,
                            site,
                            callee,
                            recv: Some((heap_ctx, obj)),
                        },
                    );
                    self.add_call_edge(selector, &*plugin, caller_ctx, site, callee_ctx, callee);
                    if let Some(this) = self.program.method(callee).this_var() {
                        let t = self.var_ptr(callee_ctx, this);
                        self.enqueue_one(t, recv);
                    }
                }
                Derived::React(r) => plugin.apply(self, delta, *r),
            }
        }
        if self.emit_events && !discovery {
            if let Some(group) = self.members.remove(&ptr.0) {
                for &m in &group {
                    self.events.push_back(Event::NewPointsTo {
                        ptr: PtrId(m),
                        delta: delta.clone(),
                    });
                }
                self.members.insert(ptr.0, group);
            } else {
                self.events.push_back(Event::NewPointsTo {
                    ptr,
                    delta: delta.clone(),
                });
            }
        }
    }

    // ---- context-insensitive projections (used by clients) ----------------

    /// Union of `pt(c:v)` over all contexts `c`, projected to allocation
    /// sites — sorted and deduplicated, so downstream tables and snapshots
    /// are deterministic.
    pub fn pt_var_projected(&self, v: VarId) -> Vec<ObjId> {
        let mut out: Vec<ObjId> = Vec::new();
        for (i, key) in self.ptr_keys.iter().enumerate() {
            if let PtrKey::Var(_, var) = key {
                if *var == v {
                    // Fan collapsed members back out to their
                    // representative's shared set at projection time.
                    for o in self.slots.pts(self.reps.find(i as u32)).iter() {
                        out.push(self.obj_keys[o as usize].1);
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Context-insensitive projection of the reachable-method set (ordered).
    pub fn reachable_methods_projected(&self) -> BTreeSet<MethodId> {
        self.reachable_log.iter().map(|&(_, m)| m).collect()
    }

    /// Context-insensitive projection of the call graph (ordered).
    pub fn call_edges_projected(&self) -> BTreeSet<(CallSiteId, MethodId)> {
        self.call_edges
            .iter()
            .map(|&(_, site, _, callee)| (site, callee))
            .collect()
    }
}

/// The outcome of one parallel phase (a BSP round or an async
/// work-stealing phase), as seen by the engine loop.
enum Phase {
    /// Committed; keep draining.
    Done,
    /// Budget exhausted; the solve ends with [`SolveStatus::Timeout`].
    Budget,
    /// A worker panicked or an injected fault fired; the solve ends with
    /// [`SolveStatus::Poisoned`] and this typed cause.
    Poisoned(SolveError),
}

/// A configured pointer-analysis run.
pub struct Solver<'p, S, P> {
    state: SolverState<'p>,
    selector: S,
    plugin: P,
}

/// The outcome of a solver run: final state plus status and timing.
pub struct PtaResult<'p> {
    /// The final analysis state (points-to sets, call graph, stats).
    pub state: SolverState<'p>,
    /// Termination status.
    pub status: SolveStatus,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// The selector name (e.g. `"ci"`, `"2obj"`).
    pub analysis: String,
    /// The typed cause when `status` is [`SolveStatus::Poisoned`].
    pub error: Option<SolveError>,
}

impl<'p, S: ContextSelector, P: Plugin> Solver<'p, S, P> {
    /// Creates a solver for `program` with the given policy and plugin,
    /// using the default [`SolverOptions`].
    pub fn new(program: &'p Program, selector: S, plugin: P, budget: Budget) -> Self {
        Self::with_options(program, selector, plugin, budget, SolverOptions::default())
    }

    /// Creates a solver with explicit engine options (e.g. SCC collapsing
    /// disabled for differential testing).
    pub fn with_options(
        program: &'p Program,
        selector: S,
        plugin: P,
        budget: Budget,
        opts: SolverOptions,
    ) -> Self {
        Solver {
            state: SolverState::new(program, budget, opts),
            selector,
            plugin,
        }
    }

    /// Runs to fixpoint (or budget exhaustion) and returns the result
    /// together with the plugin (which may carry analysis-specific data,
    /// e.g. Cut-Shortcut's involved-method set).
    ///
    /// The `Send + Sync` bound on the plugin exists for the parallel
    /// engine, which shares the (round-frozen) plugin with its worker
    /// threads; the sequential engine never crosses a thread boundary.
    pub fn solve(mut self) -> (PtaResult<'p>, P)
    where
        P: Send + Sync,
    {
        let start = Instant::now();
        self.state.started = start;
        self.state.emit_events = self.plugin.wants_events();
        self.plugin.init(&mut self.state);
        let entry = self.state.program.entry();
        self.state
            .add_reachable(&self.selector, &self.plugin, CtxId::EMPTY, entry);
        self.drain(start)
    }

    /// Runs the engine loop (sequential, BSP, or async work-stealing per
    /// the resolved options) on the already-seeded state until fixpoint or
    /// budget exhaustion, then finalizes the result. Shared by [`solve`]
    /// (seeded from the entry method) and the incremental re-solve path
    /// (seeded from a delta's re-propagation frontier).
    ///
    /// [`solve`]: Solver::solve
    fn drain(self, start: Instant) -> (PtaResult<'p>, P)
    where
        P: Send + Sync,
    {
        let Solver {
            mut state,
            selector,
            mut plugin,
        } = self;
        crate::fault::init();
        let (status, error) = if state.nthreads > 1 {
            // Sharded parallel engine: rounds of parallel propagation with
            // sequential coordinator phases in between, the workers parked
            // in a pool that lives for the whole solve. Plugin events are
            // processed only at quiescent points (empty worklist), exactly
            // like the sequential loop; the loop terminates on the first
            // fully quiescent round (no worklist entries, no events).
            let nthreads = state.nthreads;
            let mut slot = Some(plugin);
            let outcome = std::thread::scope(|scope| {
                let pool = crate::pool::WorkerPool::start(scope, nthreads);
                loop {
                    if state.should_collapse() {
                        let p = slot.as_ref().expect("plugin present between rounds");
                        state.collapse_cycles(&selector, p);
                    }
                    if !state.queue.is_empty() {
                        let phase = if state.async_engine {
                            state.async_phase(&selector, &mut slot, &pool)
                        } else {
                            state.parallel_round(&selector, &mut slot, &pool)
                        };
                        match phase {
                            Phase::Done => {}
                            Phase::Budget => break (SolveStatus::Timeout, None),
                            Phase::Poisoned(err) => {
                                break (SolveStatus::Poisoned, Some(err));
                            }
                        }
                    } else if let Some(ev) = state.events.pop_front() {
                        slot.as_mut()
                            .expect("plugin present between rounds")
                            .handle(&mut state, ev);
                    } else {
                        break (SolveStatus::Completed, None);
                    }
                }
            });
            plugin = slot.expect("plugin restored after the solve");
            outcome
        } else {
            // The sequential engine (threads = 1), byte-for-byte the
            // pre-parallel behavior: per-pointer steps, events at
            // quiescence.
            let mut status = SolveStatus::Completed;
            loop {
                if state.should_collapse() {
                    state.collapse_cycles(&selector, &plugin);
                }
                if let Some(ptr) = state.queue.pop_front() {
                    // The sequential engine's unit of round work. A panic
                    // here (injected or organic) unwinds to the caller;
                    // the guarded entry points translate it into a typed
                    // `SolveError`.
                    crate::fault::hit(crate::fault::FaultPoint::WorkerRound);
                    // Canonicalize: the pointer may have been merged into an
                    // SCC after it was queued.
                    let ptr = state.repr(ptr);
                    let incoming = state.slots.take_pending(ptr.0);
                    if !state.step(&selector, &plugin, ptr, incoming) {
                        status = SolveStatus::Timeout;
                        break;
                    }
                } else if let Some(ev) = state.events.pop_front() {
                    plugin.handle(&mut state, ev);
                } else {
                    break;
                }
            }
            (status, None)
        };
        let elapsed = start.elapsed();
        // The Amdahl split: everything that is not a parallel phase is
        // coordinator time (on the sequential engine, the whole solve).
        state.stats.coordinator_secs = (elapsed.as_secs_f64() - state.stats.parallel_secs).max(0.0);
        state.record_mem_stats();
        (
            PtaResult {
                state,
                status,
                elapsed,
                analysis: selector.name().to_owned(),
                error,
            },
            plugin,
        )
    }
}
