//! The pointer-analysis engine: a delta-propagating worklist solver over the
//! pointer flow graph (PFG) with on-the-fly call-graph construction,
//! implementing the rules of Fig. 7 of the paper.
//!
//! The solver is generic over a [`ContextSelector`] (context insensitivity,
//! `k`-obj/`k`-type/`k`-call-site, selective) and over a [`Plugin`] that can
//! observe solver events and manipulate the PFG. Cut-Shortcut is implemented
//! entirely as such a plugin (`crate::csc`): its `cutStores`/`cutReturns`
//! sets suppress edge creation in the `[Store]`/`[Return]` rules, and its
//! shortcut edges (`E_SC`) enter the graph through [`SolverState::add_edge`].
//!
//! ## Data plane
//!
//! The state is organized for dense-id access: the empty context (which
//! every pointer of a CI or Cut-Shortcut run and most pointers of a
//! selective run live under) interns variables and objects through plain
//! `Vec` lookups, with small FxHash tables only as the residual path for
//! context-qualified entities. PFG edge deduplication reuses the hybrid
//! [`PointsToSet`] as a per-source target set, and the worklist batches
//! deltas per pointer — repeated `NewPointsTo` deltas targeting the same
//! pointer coalesce into one pending set before fan-out.
//!
//! ## SCC-collapsed propagation
//!
//! Assign-cycles (SCCs of *unfiltered* copy edges — assigns, parameters,
//! returns, shortcut edges; everything but cast-filtered edges) are
//! periodically collapsed onto a representative pointer: a union-find
//! ([`crate::scc::UnionFind`]) redirects the shared points-to set, the
//! successor lists, and the pending-delta accumulator of every member to
//! the representative, so a delta entering the cycle costs one union
//! instead of one trip around the cycle. Collapsing is *precision-neutral*
//! and observationally transparent:
//!
//! * statement processing (`[Load]`/`[Store]`/`[Call]`) and `NewPointsTo`
//!   events still happen per member — when a representative's set grows,
//!   the delta fans out to every member's statements, so plugins (the
//!   Cut-Shortcut obligations in particular) see the same logical growth
//!   per pointer as the uncollapsed solver;
//! * PFG edges are deduplicated on their *original* endpoints, `NewEdge`
//!   events carry original endpoints, and `has_edge` answers on original
//!   endpoints — only the physical successor lists live at representatives;
//! * projections read through the union-find, so results are fanned back
//!   out to members at projection time.
//!
//! Cycles are detected offline-per-epoch (Nuutila-style): after every
//! `collapse_epoch` unfiltered-edge insertions a Tarjan condensation runs
//! over the current representatives, which keeps the scheme correct under
//! edges that plugins (cut/shortcut) insert mid-solve. The
//! `tests/differential.rs` harness asserts bit-identical results with
//! collapsing on and off for every suite program × analysis configuration.
//!
//! ## Sharded parallel propagation
//!
//! With [`SolverOptions::threads`] ≥ 2 the solver runs a bulk-synchronous
//! sharded engine (see [`crate::shard`]): pointer slots are partitioned
//! across shards by SCC representative (slot id modulo shard count — a
//! collapsed cycle reads and writes only its representative's slot, so it
//! never straddles shards), each worker thread owns one shard's `pts` and
//! `pending` halves, and a round unions the drained worklist deltas in
//! parallel, exchanging cross-shard deltas through per-shard outboxes.
//! Everything that grows the graph — statement fan-out, call-graph
//! construction, plugin events, condensation epochs — runs on the
//! coordinator between rounds, and all cross-thread merge orders are
//! sorted by source shard, so a run is deterministic for a fixed thread
//! count and its *projected* results are bit-identical to the sequential
//! engine's for every thread count (enforced by the differential
//! harness). `threads = 1` takes the original sequential loop untouched,
//! propagation counts included.

use std::collections::{BTreeSet, VecDeque};
use std::time::{Duration, Instant};

use csc_ir::{
    CallKind, CallSiteId, CastId, FieldId, LoadId, MethodId, ObjId, Program, Stmt, StoreId, VarId,
};

use crate::context::{CallInfo, ContextSelector, CtxId, CtxInterner};
use crate::fx::{FxHashMap, FxHashSet};
use crate::pts::PointsToSet;

/// A dense id for a PFG pointer (context-qualified variable or
/// context-qualified abstract object's field).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PtrId(pub u32);

/// A dense id for a context-qualified abstract object.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CsObjId(pub u32);

/// What a [`PtrId`] denotes.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum PtrKey {
    /// A variable under a context.
    Var(CtxId, VarId),
    /// An instance field of a context-qualified object.
    Field(CsObjId, FieldId),
}

/// Provenance of a PFG edge; lets plugins distinguish load edges from
/// return edges etc. (needed by the `[RelayEdge]` rule).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Local assignment (`[Assign]`).
    Assign,
    /// Reference cast (treated as assignment, as in Tai-e).
    Cast(CastId),
    /// Field load edge `o.f -> x` (`[Load]`).
    Load(LoadId),
    /// Field store edge `y -> o.f` (`[Store]`).
    Store(StoreId),
    /// Argument-to-parameter edge (`[Param]`).
    Param,
    /// Return-variable-to-call-site-lhs edge (`[Return]`); carries the
    /// callee method.
    Return(MethodId),
    /// A shortcut edge added by the Cut-Shortcut plugin (`[Shortcut]`).
    Shortcut(ShortcutKind),
}

/// Which Cut-Shortcut rule produced a shortcut edge.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ShortcutKind {
    /// `[ShortcutStore]` — field access pattern, stores.
    Store,
    /// `[ShortcutLoad]` — field access pattern, loads.
    Load,
    /// `[RelayEdge]` — soundness relay for mixed returns.
    Relay,
    /// `[ShortcutContainer]` — container access pattern.
    Container,
    /// `[ShortcutLFlow]` — local flow pattern.
    LocalFlow,
}

/// An observable solver event, delivered to the [`Plugin`] in order.
#[derive(Clone, Debug)]
pub enum Event {
    /// `delta` was added to `pt(ptr)`.
    NewPointsTo {
        /// The pointer whose set grew.
        ptr: PtrId,
        /// Exactly the new objects.
        delta: PointsToSet,
    },
    /// A new call-graph edge was discovered.
    NewCallEdge {
        /// Caller context.
        caller_ctx: CtxId,
        /// The call site.
        site: CallSiteId,
        /// Callee context.
        callee_ctx: CtxId,
        /// Resolved callee.
        callee: MethodId,
    },
    /// A method became reachable under a context.
    NewReachable {
        /// The context.
        ctx: CtxId,
        /// The method.
        method: MethodId,
    },
    /// A PFG edge was added.
    NewEdge {
        /// Source pointer.
        src: PtrId,
        /// Target pointer.
        dst: PtrId,
        /// Provenance.
        kind: EdgeKind,
    },
}

/// A solver extension. The Cut-Shortcut analysis is the canonical
/// implementation; [`NoPlugin`] is the identity.
pub trait Plugin {
    /// Called once before solving starts.
    fn init(&mut self, st: &mut SolverState<'_>) {
        let _ = st;
    }

    /// Whether the plugin wants [`Event`]s delivered (skipping event
    /// bookkeeping keeps plain analyses allocation-light).
    fn wants_events(&self) -> bool {
        false
    }

    /// Handles one event. May freely add edges / points-to facts via the
    /// state.
    fn handle(&mut self, st: &mut SolverState<'_>, ev: Event) {
        let _ = (st, ev);
    }

    /// `[Store]` cut check: whether the given store site's PFG edges are
    /// suppressed (`cutStores`).
    fn is_store_cut(&self, site: StoreId) -> bool {
        let _ = site;
        false
    }

    /// `[Return]` cut check: whether return edges from `m`'s return variable
    /// are suppressed (`cutReturns`).
    fn is_return_cut(&self, m: MethodId) -> bool {
        let _ = m;
        false
    }
}

/// The identity plugin (plain Andersen-style analysis).
#[derive(Copy, Clone, Debug, Default)]
pub struct NoPlugin;

impl Plugin for NoPlugin {}

/// Solver termination status.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SolveStatus {
    /// Fixpoint reached.
    Completed,
    /// The time or propagation budget was exhausted first.
    Timeout,
}

/// Resource limits, emulating the paper's 2-hour budget.
#[derive(Copy, Clone, Debug, Default)]
pub struct Budget {
    /// Wall-clock limit.
    pub time: Option<Duration>,
    /// Maximum number of points-to propagations (deterministic limit,
    /// useful in tests).
    pub max_propagations: Option<u64>,
}

impl Budget {
    /// No limits.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Wall-clock limit only.
    pub fn with_time(d: Duration) -> Self {
        Budget {
            time: Some(d),
            max_propagations: None,
        }
    }
}

/// Counters reported alongside results.
#[derive(Copy, Clone, Debug, Default)]
pub struct SolverStats {
    /// Worklist propagations with a non-empty delta.
    pub propagations: u64,
    /// PFG edges added (logical edges, counted on original endpoints).
    pub edges: u64,
    /// Call-graph edges added.
    pub call_edges: u64,
    /// Reachable (context, method) pairs.
    pub reachable: u64,
    /// Distinct pointers interned.
    pub pointers: u64,
    /// Distinct context-qualified objects interned.
    pub objects: u64,
    /// SCC condensation epochs executed.
    pub scc_runs: u64,
    /// Nontrivial assign-SCCs collapsed across all epochs.
    pub sccs_collapsed: u64,
    /// Pointers merged into another representative.
    pub ptrs_collapsed: u64,
    /// Worker threads the propagation engine ran with (1 = the sequential
    /// engine; the resolved value when [`SolverOptions::threads`] was 0).
    pub threads: u64,
    /// Bulk-synchronous parallel rounds executed (0 on the sequential
    /// path).
    pub parallel_rounds: u64,
}

/// Engine tuning knobs, independent of the analysis policy (context
/// selector / plugin). The default enables SCC-collapsed propagation with
/// an adaptive epoch length.
#[derive(Copy, Clone, Debug)]
pub struct SolverOptions {
    /// Collapse assign-cycles (SCCs of unfiltered copy edges) onto
    /// representative pointers during solving. Precision-neutral — the
    /// differential harness (`crates/core/tests/differential.rs`) asserts
    /// bit-identical projected results either way.
    pub collapse_sccs: bool,
    /// Unfiltered-copy-edge insertions between condensation epochs. `None`
    /// picks an adaptive threshold from the current pointer count; tests
    /// use small values to stress merge paths on tiny programs.
    pub collapse_epoch: Option<u32>,
    /// Propagation worker threads. `1` (the default) runs the sequential
    /// engine unchanged; `0` resolves to the machine's available
    /// parallelism; `>= 2` runs the sharded bulk-synchronous engine, whose
    /// projected results are bit-identical to the sequential engine's for
    /// any thread count (enforced by `tests/differential.rs`) while its
    /// propagation counts are deterministic per thread count.
    pub threads: usize,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            collapse_sccs: true,
            collapse_epoch: None,
            threads: 1,
        }
    }
}

impl SolverOptions {
    /// Cycle collapsing disabled (the uncollapsed reference engine).
    pub fn no_collapse() -> Self {
        SolverOptions {
            collapse_sccs: false,
            ..SolverOptions::default()
        }
    }

    /// Collapsing with a fixed epoch length (testing knob).
    pub fn with_epoch(epoch: u32) -> Self {
        SolverOptions {
            collapse_sccs: true,
            collapse_epoch: Some(epoch),
            ..SolverOptions::default()
        }
    }

    /// The same options with an explicit propagation thread count
    /// (`0` = available parallelism).
    pub fn with_threads(self, threads: usize) -> Self {
        SolverOptions { threads, ..self }
    }

    /// The worker-thread count these options resolve to on this machine.
    pub fn resolved_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            n => n,
        }
    }
}

/// Per-variable static usage index (which loads/stores/calls have the
/// variable as base/receiver), built once per program.
struct VarUses {
    loads_with_base: Vec<Vec<LoadId>>,
    stores_with_base: Vec<Vec<StoreId>>,
    calls_with_recv: Vec<Vec<CallSiteId>>,
}

impl VarUses {
    fn build(program: &Program) -> Self {
        let n = program.vars().len();
        let mut uses = VarUses {
            loads_with_base: vec![Vec::new(); n],
            stores_with_base: vec![Vec::new(); n],
            calls_with_recv: vec![Vec::new(); n],
        };
        for (i, l) in program.loads().iter().enumerate() {
            uses.loads_with_base[l.base().index()].push(LoadId::from_usize(i));
        }
        for (i, s) in program.stores().iter().enumerate() {
            uses.stores_with_base[s.base().index()].push(StoreId::from_usize(i));
        }
        for (i, c) in program.call_sites().iter().enumerate() {
            if let Some(r) = c.recv() {
                uses.calls_with_recv[r.index()].push(CallSiteId::from_usize(i));
            }
        }
        uses
    }
}

/// Sentinel for "not interned yet" in the dense CI tables.
const ABSENT: u32 = u32::MAX;

/// The complete mutable analysis state. Plugins receive `&mut` access.
pub struct SolverState<'p> {
    /// The program under analysis.
    pub program: &'p Program,
    /// Context interner.
    pub interner: CtxInterner,

    /// Dense empty-context variable pointers, indexed by variable
    /// ([`ABSENT`] = not interned). The residual table below only sees
    /// context-qualified variables.
    ci_var_ptrs: Vec<u32>,
    var_ptr_table: FxHashMap<(CtxId, VarId), PtrId>,
    field_ptr_table: FxHashMap<(CsObjId, FieldId), PtrId>,
    ptr_keys: Vec<PtrKey>,

    /// Dense empty-heap-context objects, indexed by allocation site.
    ci_objs: Vec<u32>,
    obj_table: FxHashMap<(CtxId, ObjId), CsObjId>,
    obj_keys: Vec<(CtxId, ObjId)>,

    /// Points-to sets and pending-delta accumulators, stored at SCC
    /// representatives and sharded round-robin by slot id for the parallel
    /// engine (one shard when sequential); merged members keep an empty
    /// slot and read through [`SolverState::repr`].
    slots: crate::shard::ShardedSlots,
    /// Successors with an optional cast filter: only objects whose class
    /// is a subtype of the filter class propagate along the edge
    /// (`checkcast` semantics, as in Tai-e and Doop). Lists live at SCC
    /// representatives; stored targets may be stale (merged away) and are
    /// re-canonicalized at enqueue time and at each condensation epoch.
    succ: Vec<Vec<(PtrId, Option<csc_ir::ClassId>)>>,
    /// Per-source *logical* PFG edge-target sets, keyed by original
    /// endpoints (deduplication + `has_edge`; identical with collapsing on
    /// or off). Hash sets keep the memory proportional to the edge count
    /// (a bitmap here would scale with the *maximum* target id per hub
    /// source).
    edge_targets: Vec<FxHashSet<u32>>,

    /// Representative index for SCC-collapsed propagation.
    reps: crate::scc::UnionFind,
    /// Member lists (ascending, representative first) for collapsed
    /// representatives only; uncollapsed pointers have no entry.
    members: FxHashMap<u32, Vec<u32>>,
    /// Unfiltered copy edges inserted since the last condensation epoch.
    copy_edges_since_collapse: u32,
    opts: SolverOptions,
    /// Resolved propagation worker count (>= 1).
    nthreads: usize,

    /// Batched worklist: the FIFO of pointers with a non-empty pending
    /// accumulator (the accumulators themselves live in `slots`).
    queue: VecDeque<PtrId>,

    events: VecDeque<Event>,
    emit_events: bool,

    /// Reachability: dense for the empty context, residual set for
    /// context-qualified units, plus the insertion-ordered log backing the
    /// public views.
    reachable_ci: Vec<bool>,
    reachable_cs: FxHashSet<(CtxId, MethodId)>,
    reachable_log: Vec<(CtxId, MethodId)>,

    call_edge_set: FxHashSet<(CtxId, CallSiteId, CtxId, MethodId)>,
    call_edges: Vec<(CtxId, CallSiteId, CtxId, MethodId)>,
    call_edges_by_callee: FxHashMap<MethodId, Vec<(CtxId, CallSiteId, CtxId)>>,

    uses: VarUses,

    /// Counters.
    pub stats: SolverStats,
    budget: Budget,
    started: Instant,
}

impl<'p> SolverState<'p> {
    fn new(program: &'p Program, budget: Budget, opts: SolverOptions) -> Self {
        let nthreads = opts.resolved_threads().max(1);
        let stats = SolverStats {
            threads: nthreads as u64,
            ..SolverStats::default()
        };
        SolverState {
            program,
            interner: CtxInterner::new(),
            ci_var_ptrs: vec![ABSENT; program.vars().len()],
            var_ptr_table: FxHashMap::default(),
            field_ptr_table: FxHashMap::default(),
            ptr_keys: Vec::new(),
            ci_objs: vec![ABSENT; program.objs().len()],
            obj_table: FxHashMap::default(),
            obj_keys: Vec::new(),
            slots: crate::shard::ShardedSlots::new(nthreads),
            succ: Vec::new(),
            edge_targets: Vec::new(),
            reps: crate::scc::UnionFind::new(),
            members: FxHashMap::default(),
            copy_edges_since_collapse: 0,
            opts,
            nthreads,
            queue: VecDeque::new(),
            events: VecDeque::new(),
            emit_events: false,
            reachable_ci: vec![false; program.methods().len()],
            reachable_cs: FxHashSet::default(),
            reachable_log: Vec::new(),
            call_edge_set: FxHashSet::default(),
            call_edges: Vec::new(),
            call_edges_by_callee: FxHashMap::default(),
            uses: VarUses::build(program),
            stats,
            budget,
            started: Instant::now(),
        }
    }

    // ---- interning -------------------------------------------------------

    fn push_ptr(&mut self, key: PtrKey) -> PtrId {
        let id = PtrId(u32::try_from(self.ptr_keys.len()).expect("too many pointers"));
        self.ptr_keys.push(key);
        self.slots.push();
        self.succ.push(Vec::new());
        self.edge_targets.push(FxHashSet::default());
        self.reps.push();
        self.stats.pointers += 1;
        id
    }

    /// Interns a context-qualified variable pointer.
    pub fn var_ptr(&mut self, ctx: CtxId, v: VarId) -> PtrId {
        if ctx == CtxId::EMPTY {
            let slot = self.ci_var_ptrs[v.index()];
            if slot != ABSENT {
                return PtrId(slot);
            }
            let id = self.push_ptr(PtrKey::Var(ctx, v));
            self.ci_var_ptrs[v.index()] = id.0;
            id
        } else {
            if let Some(&p) = self.var_ptr_table.get(&(ctx, v)) {
                return p;
            }
            let id = self.push_ptr(PtrKey::Var(ctx, v));
            self.var_ptr_table.insert((ctx, v), id);
            id
        }
    }

    /// Interns a field pointer.
    pub fn field_ptr(&mut self, obj: CsObjId, f: FieldId) -> PtrId {
        if let Some(&p) = self.field_ptr_table.get(&(obj, f)) {
            return p;
        }
        let id = self.push_ptr(PtrKey::Field(obj, f));
        self.field_ptr_table.insert((obj, f), id);
        id
    }

    /// Interns a context-qualified object.
    pub fn cs_obj(&mut self, ctx: CtxId, obj: ObjId) -> CsObjId {
        if ctx == CtxId::EMPTY {
            let slot = self.ci_objs[obj.index()];
            if slot != ABSENT {
                return CsObjId(slot);
            }
        } else if let Some(&o) = self.obj_table.get(&(ctx, obj)) {
            return o;
        }
        let id = CsObjId(u32::try_from(self.obj_keys.len()).expect("too many objects"));
        self.obj_keys.push((ctx, obj));
        if ctx == CtxId::EMPTY {
            self.ci_objs[obj.index()] = id.0;
        } else {
            self.obj_table.insert((ctx, obj), id);
        }
        self.stats.objects += 1;
        id
    }

    /// What a pointer id denotes.
    pub fn ptr_key(&self, p: PtrId) -> PtrKey {
        self.ptr_keys[p.0 as usize]
    }

    /// The (heap context, allocation site) behind a [`CsObjId`].
    pub fn obj_key(&self, o: CsObjId) -> (CtxId, ObjId) {
        self.obj_keys[o.0 as usize]
    }

    /// Number of interned pointers.
    pub fn ptr_count(&self) -> usize {
        self.ptr_keys.len()
    }

    /// Number of interned context-qualified objects.
    pub fn obj_count(&self) -> usize {
        self.obj_keys.len()
    }

    /// Canonical representative of a pointer: identity unless the pointer
    /// was merged into an assign-SCC, in which case the SCC's elected
    /// representative is returned.
    pub fn repr(&self, p: PtrId) -> PtrId {
        PtrId(self.reps.find(p.0))
    }

    /// Current points-to set of a pointer (read through the representative
    /// indirection — members of a collapsed SCC share one set).
    pub fn pt(&self, p: PtrId) -> &PointsToSet {
        self.slots.pts(self.reps.find(p.0))
    }

    /// Looks up an already-interned pointer without creating it.
    pub fn find_ptr(&self, key: PtrKey) -> Option<PtrId> {
        match key {
            PtrKey::Var(ctx, v) if ctx == CtxId::EMPTY => {
                let slot = self.ci_var_ptrs[v.index()];
                (slot != ABSENT).then_some(PtrId(slot))
            }
            PtrKey::Var(ctx, v) => self.var_ptr_table.get(&(ctx, v)).copied(),
            PtrKey::Field(obj, f) => self.field_ptr_table.get(&(obj, f)).copied(),
        }
    }

    // ---- worklist --------------------------------------------------------

    /// Queues a delta for a pointer, coalescing it with whatever is already
    /// pending for that pointer. Deltas accumulate at the pointer's SCC
    /// representative.
    fn enqueue(&mut self, ptr: PtrId, objs: &PointsToSet) {
        if objs.is_empty() {
            return;
        }
        let ptr = self.repr(ptr);
        let slot = self.slots.pending_mut(ptr.0);
        let was_empty = slot.is_empty();
        slot.union_with(objs);
        if was_empty {
            self.queue.push_back(ptr);
        }
    }

    /// Queues a single object for a pointer.
    fn enqueue_one(&mut self, ptr: PtrId, obj: u32) {
        let ptr = self.repr(ptr);
        let slot = self.slots.pending_mut(ptr.0);
        let was_empty = slot.is_empty();
        slot.insert(obj);
        if was_empty {
            self.queue.push_back(ptr);
        }
    }

    // ---- mutation (also used by plugins) ----------------------------------

    /// Adds a PFG edge (deduplicated on its *original* endpoints). New
    /// edges immediately flush the source's current points-to set to the
    /// target. Cast edges carry a type filter (`checkcast` semantics): only
    /// objects assignable to the cast target propagate, as in Tai-e and
    /// Doop.
    ///
    /// The physical successor entry lives at the source's SCC
    /// representative; an edge whose endpoints are already in the same SCC
    /// stays logical-only (the shared set makes propagation a no-op), but
    /// is still counted, deduplicated, and delivered as a [`Event::NewEdge`]
    /// so plugins observe the same PFG as the uncollapsed solver.
    pub fn add_edge(&mut self, src: PtrId, dst: PtrId, kind: EdgeKind) {
        if src == dst || !self.edge_targets[src.0 as usize].insert(dst.0) {
            return;
        }
        let filter = match kind {
            EdgeKind::Cast(id) => self.program.cast(id).ty().as_class(),
            _ => None,
        };
        self.stats.edges += 1;
        let csrc = self.reps.find(src.0);
        if csrc != self.reps.find(dst.0) {
            if filter.is_none() {
                self.copy_edges_since_collapse += 1;
            }
            self.succ[csrc as usize].push((dst, filter));
            if !self.slots.pts(csrc).is_empty() {
                match filter {
                    None => {
                        let pts = self.slots.take_pts(csrc);
                        self.enqueue(dst, &pts);
                        self.slots.put_pts(csrc, pts);
                    }
                    Some(class) => {
                        let filtered = self.apply_filter(self.slots.pts(csrc), class);
                        self.enqueue(dst, &filtered);
                    }
                }
            }
        }
        if self.emit_events {
            self.events.push_back(Event::NewEdge { src, dst, kind });
        }
    }

    /// Restricts a set to objects assignable to `class` (`checkcast`
    /// semantics). Only cast edges pay for this copy — unfiltered edges
    /// propagate their delta by reference, so there is no identity-clone
    /// arm here.
    fn apply_filter(&self, objs: &PointsToSet, class: csc_ir::ClassId) -> PointsToSet {
        crate::shard::filter_pts(objs, class, &self.obj_keys, self.program)
    }

    /// Whether a PFG edge already exists.
    pub fn has_edge(&self, src: PtrId, dst: PtrId) -> bool {
        self.edge_targets[src.0 as usize].contains(&dst.0)
    }

    /// Injects objects into a pointer's points-to set (via the worklist).
    pub fn add_points_to(&mut self, ptr: PtrId, objs: PointsToSet) {
        self.enqueue(ptr, &objs);
    }

    /// All call-graph edges onto `callee`, as
    /// `(caller context, call site, callee context)` triples.
    pub fn call_edges_of(&self, callee: MethodId) -> &[(CtxId, CallSiteId, CtxId)] {
        self.call_edges_by_callee
            .get(&callee)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All call-graph edges.
    pub fn call_edges(&self) -> &[(CtxId, CallSiteId, CtxId, MethodId)] {
        &self.call_edges
    }

    /// All reachable (context, method) pairs, in discovery order.
    pub fn reachable(&self) -> &[(CtxId, MethodId)] {
        &self.reachable_log
    }

    /// Elapsed wall-clock time since solving began.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    // ---- core algorithm ---------------------------------------------------

    /// Marks `(ctx, method)` reachable; returns whether it was new.
    fn insert_reachable(&mut self, ctx: CtxId, method: MethodId) -> bool {
        if ctx == CtxId::EMPTY {
            let slot = &mut self.reachable_ci[method.index()];
            if *slot {
                return false;
            }
            *slot = true;
        } else if !self.reachable_cs.insert((ctx, method)) {
            return false;
        }
        self.reachable_log.push((ctx, method));
        true
    }

    fn add_reachable<S: ContextSelector, P: Plugin>(
        &mut self,
        selector: &S,
        plugin: &P,
        ctx: CtxId,
        method: MethodId,
    ) {
        if !self.insert_reachable(ctx, method) {
            return;
        }
        self.stats.reachable += 1;
        if self.emit_events {
            self.events.push_back(Event::NewReachable { ctx, method });
        }
        let m = self.program.method(method);
        let mut news: Vec<(VarId, ObjId)> = Vec::new();
        let mut assigns: Vec<(VarId, VarId, EdgeKind)> = Vec::new();
        let mut static_calls: Vec<CallSiteId> = Vec::new();
        m.visit_stmts(|s| match s {
            Stmt::New { lhs, obj } => news.push((*lhs, *obj)),
            Stmt::Assign { lhs, rhs } => assigns.push((*rhs, *lhs, EdgeKind::Assign)),
            Stmt::Cast(id) => {
                let c = self.program.cast(*id);
                assigns.push((c.rhs(), c.lhs(), EdgeKind::Cast(*id)));
            }
            Stmt::Call(id) if self.program.call_site(*id).kind() == CallKind::Static => {
                static_calls.push(*id);
            }
            _ => {}
        });
        for (lhs, obj) in news {
            let hctx = selector.select_heap(self.program, &mut self.interner, ctx, obj);
            let cs = self.cs_obj(hctx, obj);
            let ptr = self.var_ptr(ctx, lhs);
            self.enqueue_one(ptr, cs.0);
        }
        for (rhs, lhs, kind) in assigns {
            let s = self.var_ptr(ctx, rhs);
            let t = self.var_ptr(ctx, lhs);
            self.add_edge(s, t, kind);
        }
        for site in static_calls {
            let callee = self.program.call_site(site).target();
            let callee_ctx = selector.select_call(
                self.program,
                &mut self.interner,
                CallInfo {
                    caller_ctx: ctx,
                    site,
                    callee,
                    recv: None,
                },
            );
            self.add_call_edge(selector, plugin, ctx, site, callee_ctx, callee);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn add_call_edge<S: ContextSelector, P: Plugin>(
        &mut self,
        selector: &S,
        plugin: &P,
        caller_ctx: CtxId,
        site: CallSiteId,
        callee_ctx: CtxId,
        callee: MethodId,
    ) {
        if !self
            .call_edge_set
            .insert((caller_ctx, site, callee_ctx, callee))
        {
            return;
        }
        self.call_edges.push((caller_ctx, site, callee_ctx, callee));
        self.call_edges_by_callee
            .entry(callee)
            .or_default()
            .push((caller_ctx, site, callee_ctx));
        self.stats.call_edges += 1;
        self.add_reachable(selector, plugin, callee_ctx, callee);
        let cs = self.program.call_site(site);
        let m = self.program.method(callee);
        // [Param]: argument -> parameter edges (excluding the receiver,
        // which is populated object-by-object in [Call]).
        for (k, &param) in m.params().iter().enumerate() {
            let arg = cs.args()[k];
            let s = self.var_ptr(caller_ctx, arg);
            let t = self.var_ptr(callee_ctx, param);
            self.add_edge(s, t, EdgeKind::Param);
        }
        // [Return]: suppressed when the callee's return variable is in
        // cutReturns.
        if let (Some(lhs), Some(ret)) = (cs.lhs(), m.ret_var()) {
            if !plugin.is_return_cut(callee) {
                let s = self.var_ptr(callee_ctx, ret);
                let t = self.var_ptr(caller_ctx, lhs);
                self.add_edge(s, t, EdgeKind::Return(callee));
            }
        }
        if self.emit_events {
            self.events.push_back(Event::NewCallEdge {
                caller_ctx,
                site,
                callee_ctx,
                callee,
            });
        }
    }

    /// Processes one worklist entry (always a representative — the queue is
    /// canonicalized at pop time). Returns `false` when the budget is
    /// exhausted.
    fn step<S: ContextSelector, P: Plugin>(
        &mut self,
        selector: &S,
        plugin: &P,
        ptr: PtrId,
        incoming: PointsToSet,
    ) -> bool {
        let Some(delta) = self.slots.pts_mut(ptr.0).union_delta(&incoming) else {
            return true;
        };
        self.stats.propagations += 1;
        if let Some(max) = self.budget.max_propagations {
            if self.stats.propagations > max {
                return false;
            }
        }
        if let Some(limit) = self.budget.time {
            // Checking the clock every 1024 propagations keeps overhead low.
            if self.stats.propagations.is_multiple_of(1024) && self.started.elapsed() > limit {
                return false;
            }
        }

        // [Propagate] along PFG edges (respecting cast filters). Unfiltered
        // edges enqueue the delta by reference; only cast edges pay for a
        // filtered copy. The successor list is taken out and restored
        // around the loop — nothing inside `enqueue`/`apply_filter` can
        // reach `succ`, and the split borrow avoids re-indexing (and
        // historically an O(|succ|) clone) per delta.
        let succ = std::mem::take(&mut self.succ[ptr.0 as usize]);
        for &(t, filter) in &succ {
            match filter {
                None => self.enqueue(t, &delta),
                Some(class) => {
                    let out = self.apply_filter(&delta, class);
                    self.enqueue(t, &out);
                }
            }
        }
        debug_assert!(self.succ[ptr.0 as usize].is_empty());
        self.succ[ptr.0 as usize] = succ;

        self.fan_out(selector, plugin, ptr, delta);
        true
    }

    /// Statement processing and `NewPointsTo` events for a committed delta,
    /// fanned out to every member of a collapsed SCC — each member's
    /// loads/stores/calls must see the shared set's growth exactly as they
    /// would uncollapsed. The member list is taken out and restored around
    /// the loop (nothing inside statement processing can reach `members`;
    /// merges only happen between worklist steps), avoiding an O(|SCC|)
    /// clone per delta. Shared by the sequential `step` and the parallel
    /// coordinator phase.
    fn fan_out<S: ContextSelector, P: Plugin>(
        &mut self,
        selector: &S,
        plugin: &P,
        ptr: PtrId,
        delta: PointsToSet,
    ) {
        if let Some(group) = self.members.remove(&ptr.0) {
            for &m in &group {
                if let PtrKey::Var(ctx, v) = self.ptr_keys[m as usize] {
                    self.process_var_stmts(selector, plugin, ctx, v, &delta);
                }
            }
            if self.emit_events {
                for &m in &group {
                    self.events.push_back(Event::NewPointsTo {
                        ptr: PtrId(m),
                        delta: delta.clone(),
                    });
                }
            }
            self.members.insert(ptr.0, group);
        } else {
            if let PtrKey::Var(ctx, v) = self.ptr_keys[ptr.0 as usize] {
                self.process_var_stmts(selector, plugin, ctx, v, &delta);
            }
            if self.emit_events {
                self.events.push_back(Event::NewPointsTo { ptr, delta });
            }
        }
    }

    /// The `[Load]` / `[Store]` / `[Call]` rules for one variable whose
    /// points-to set grew by `delta`.
    fn process_var_stmts<S: ContextSelector, P: Plugin>(
        &mut self,
        selector: &S,
        plugin: &P,
        ctx: CtxId,
        v: VarId,
        delta: &PointsToSet,
    ) {
        // [Load]
        for i in 0..self.uses.loads_with_base[v.index()].len() {
            let l = self.uses.loads_with_base[v.index()][i];
            let site = self.program.load(l);
            let (lhs, field) = (site.lhs(), site.field());
            let t = self.var_ptr(ctx, lhs);
            for o in delta.iter() {
                let s = self.field_ptr(CsObjId(o), field);
                self.add_edge(s, t, EdgeKind::Load(l));
            }
        }
        // [Store] (cut-aware)
        for i in 0..self.uses.stores_with_base[v.index()].len() {
            let st = self.uses.stores_with_base[v.index()][i];
            if plugin.is_store_cut(st) {
                continue;
            }
            let site = self.program.store(st);
            let (rhs, field) = (site.rhs(), site.field());
            let s = self.var_ptr(ctx, rhs);
            for o in delta.iter() {
                let t = self.field_ptr(CsObjId(o), field);
                self.add_edge(s, t, EdgeKind::Store(st));
            }
        }
        // [Call]
        for i in 0..self.uses.calls_with_recv[v.index()].len() {
            let site = self.uses.calls_with_recv[v.index()][i];
            for o in delta.iter() {
                self.process_instance_call(selector, plugin, ctx, site, CsObjId(o));
            }
        }
    }

    fn process_instance_call<S: ContextSelector, P: Plugin>(
        &mut self,
        selector: &S,
        plugin: &P,
        caller_ctx: CtxId,
        site: CallSiteId,
        recv: CsObjId,
    ) {
        let cs = self.program.call_site(site);
        let (heap_ctx, obj) = self.obj_key(recv);
        let callee = match cs.kind() {
            CallKind::Virtual => {
                let class = self.program.obj(obj).class();
                match self.program.dispatch(class, cs.target()) {
                    Some(m) => m,
                    None => return, // no concrete impl: spurious receiver
                }
            }
            CallKind::Special => cs.target(),
            CallKind::Static => unreachable!("static calls have no receiver"),
        };
        let callee_ctx = selector.select_call(
            self.program,
            &mut self.interner,
            CallInfo {
                caller_ctx,
                site,
                callee,
                recv: Some((heap_ctx, obj)),
            },
        );
        self.add_call_edge(selector, plugin, caller_ctx, site, callee_ctx, callee);
        // [Call]: the receiver object flows into the callee's `this`.
        if let Some(this) = self.program.method(callee).this_var() {
            let t = self.var_ptr(callee_ctx, this);
            self.enqueue_one(t, recv.0);
        }
    }

    // ---- SCC-collapsed propagation ----------------------------------------

    /// Whether enough unfiltered copy edges accumulated to pay for a
    /// condensation epoch. The adaptive threshold is geometric — the next
    /// epoch waits for the edge count to grow by a constant fraction — so
    /// the total condensation work stays `O((V + E) log E)` regardless of
    /// how large the graph gets.
    fn should_collapse(&self) -> bool {
        if !self.opts.collapse_sccs || self.copy_edges_since_collapse == 0 {
            return false;
        }
        let threshold = self
            .opts
            .collapse_epoch
            .unwrap_or_else(|| (self.stats.edges as u32 / 2).max(4096));
        self.copy_edges_since_collapse >= threshold
    }

    /// One condensation epoch: finds SCCs of the unfiltered copy subgraph
    /// over the current representatives (offline Tarjan, Nuutila-style
    /// re-run per epoch) and merges each nontrivial SCC onto its smallest
    /// member.
    ///
    /// Merging unifies the shared points-to set, successor list, and
    /// pending accumulator at the representative, then restores the
    /// uncollapsed solver's observable behavior in two replay passes:
    ///
    /// 1. the unified set is flushed along every (rebuilt) outgoing edge —
    ///    a member's edge may never have seen another member's elements;
    /// 2. every member whose old set was a strict subset of the union gets
    ///    per-member statement processing and a `NewPointsTo` event for the
    ///    missing elements, exactly as if the elements had propagated to it
    ///    around the cycle.
    fn collapse_cycles<S: ContextSelector, P: Plugin>(&mut self, selector: &S, plugin: &P) {
        self.copy_edges_since_collapse = 0;
        self.stats.scc_runs += 1;
        let n = self.ptr_keys.len();
        // Canonical unfiltered adjacency over representatives.
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for u in 0..n as u32 {
            if !self.reps.is_rep(u) {
                continue;
            }
            let mut out: Vec<u32> = Vec::new();
            for &(t, filter) in &self.succ[u as usize] {
                if filter.is_none() {
                    let c = self.reps.find(t.0);
                    if c != u {
                        out.push(c);
                    }
                }
            }
            adj[u as usize] = out;
        }
        let mut catchups: Vec<(u32, PointsToSet)> = Vec::new();
        let mut flush_reps: Vec<u32> = Vec::new();
        for group in crate::scc::merge_groups(&self.reps, &adj) {
            let rep = group[0];
            self.stats.sccs_collapsed += 1;
            self.stats.ptrs_collapsed += (group.len() - 1) as u64;
            // Union the members' sets; remember each merged subgroup's old
            // set so its missing elements can be replayed per member.
            let mut union = PointsToSet::new();
            let mut subgroups: Vec<(Vec<u32>, PointsToSet)> = Vec::with_capacity(group.len());
            for &m in &group {
                let old = self.slots.take_pts(m);
                let sub = self.members.remove(&m).unwrap_or_else(|| vec![m]);
                union.union_with(&old);
                subgroups.push((sub, old));
            }
            let mut all: Vec<u32> = Vec::new();
            for (sub, mut old) in subgroups {
                if let Some(delta) = old.union_delta(&union) {
                    for &m in &sub {
                        catchups.push((m, delta.clone()));
                    }
                }
                all.extend(sub);
            }
            all.sort_unstable();
            self.members.insert(rep, all);
            self.slots.put_pts(rep, union);
            for &m in &group[1..] {
                self.reps.set_parent(m, rep);
            }
            // Rebuild the representative's successor list: canonical
            // targets, intra-SCC edges dropped (the shared set makes them
            // no-ops), physical duplicates that earlier merges created
            // removed. Dedup is per (target, filter) so a cast edge never
            // shadows an unfiltered edge to the same target.
            let mut new_succ: Vec<(PtrId, Option<csc_ir::ClassId>)> = Vec::new();
            let mut seen: FxHashSet<(u32, Option<csc_ir::ClassId>)> = FxHashSet::default();
            for &m in &group {
                for (t, filter) in std::mem::take(&mut self.succ[m as usize]) {
                    let c = self.reps.find(t.0);
                    if c != rep && seen.insert((c, filter)) {
                        new_succ.push((PtrId(c), filter));
                    }
                }
            }
            self.succ[rep as usize] = new_succ;
            // Merge the pending accumulators; requeue the representative if
            // a member (but not the representative itself) was queued.
            let mut pend = self.slots.take_pending(rep);
            let rep_was_queued = !pend.is_empty();
            for &m in &group[1..] {
                let p = self.slots.take_pending(m);
                pend.union_with(&p);
            }
            if !pend.is_empty() {
                if !rep_was_queued {
                    self.queue.push_back(PtrId(rep));
                }
                self.slots.put_pending(rep, pend);
            }
            flush_reps.push(rep);
        }
        self.reps.flatten();

        // Replay pass 1: flush the unified sets along the rebuilt edges.
        // Both the successor list and the set are taken out and restored
        // around the loop (`enqueue` can reach neither), instead of paying
        // an O(|succ|) clone per collapsed representative.
        for rep in flush_reps {
            if self.slots.pts(rep).is_empty() {
                continue;
            }
            let succ = std::mem::take(&mut self.succ[rep as usize]);
            let pts = self.slots.take_pts(rep);
            for &(t, filter) in &succ {
                match filter {
                    None => self.enqueue(t, &pts),
                    Some(class) => {
                        let out = self.apply_filter(&pts, class);
                        self.enqueue(t, &out);
                    }
                }
            }
            self.slots.put_pts(rep, pts);
            debug_assert!(self.succ[rep as usize].is_empty());
            self.succ[rep as usize] = succ;
        }
        // Replay pass 2: per-member catch-up for elements a member had not
        // seen before its set was unified.
        for (m, delta) in catchups {
            if let PtrKey::Var(ctx, v) = self.ptr_keys[m as usize] {
                self.process_var_stmts(selector, plugin, ctx, v, &delta);
            }
            if self.emit_events {
                self.events.push_back(Event::NewPointsTo {
                    ptr: PtrId(m),
                    delta,
                });
            }
        }
    }

    // ---- sharded parallel propagation -------------------------------------

    /// One bulk-synchronous parallel propagation round.
    ///
    /// The coordinator drains the whole worklist into per-shard batches
    /// (slot id modulo shard count — representatives only, so a collapsed
    /// SCC never straddles shards), then scoped workers run the two
    /// lock-free sub-phases of [`crate::shard::run_worker`]: union the
    /// batched deltas into their owned points-to sets and route the new
    /// elements through per-shard outboxes into the owners' pending
    /// accumulators. Back on the coordinator, the committed deltas replay
    /// statement/event fan-out in deterministic (shard, batch) order —
    /// everything that can grow the graph (edges, call edges, contexts,
    /// plugin reactions, SCC epochs) stays single-threaded between rounds,
    /// which is what keeps runs deterministic for a fixed thread count.
    ///
    /// Returns `false` when the budget was exhausted.
    fn parallel_round<S: ContextSelector, P: Plugin>(&mut self, selector: &S, plugin: &P) -> bool {
        let n = self.nthreads;
        // Drain the queue in order, canonicalizing stale entries exactly
        // like the sequential pop does.
        let mut batch: Vec<(u32, PointsToSet)> = Vec::with_capacity(self.queue.len());
        while let Some(ptr) = self.queue.pop_front() {
            let rep = self.reps.find(ptr.0);
            let incoming = self.slots.take_pending(rep);
            if incoming.is_empty() {
                continue; // duplicate queue entry; already drained
            }
            batch.push((rep, incoming));
        }

        // Small rounds run inline on the coordinator: plugin-driven
        // solves drip-feed the worklist one event at a time (thousands of
        // rounds of a handful of pointers), where per-round thread spawns
        // would dominate wall-clock. The threshold is deterministic, so
        // runs stay reproducible; the wave-front rounds that carry the
        // real union work exceed it by orders of magnitude.
        if batch.len() < 32 * n {
            for (rep, incoming) in batch {
                if !self.step(selector, plugin, PtrId(rep), incoming) {
                    return false;
                }
            }
            return true;
        }

        self.stats.parallel_rounds += 1;
        // Partition into per-shard batches (queue order within a shard).
        let mut work: Vec<Vec<(u32, PointsToSet)>> = vec![Vec::new(); n];
        for (rep, incoming) in batch {
            work[self.slots.shard_of(rep)].push((rep, incoming));
        }

        // Parallel phase: one scoped worker per shard. Disjoint `&mut`
        // shard borrows carry the hot state; everything else is shared
        // read-only for the duration of the scope.
        let nshards = n as u32;
        let deadline = self.budget.time.map(|limit| self.started + limit);
        let succ = &self.succ;
        let reps = &self.reps;
        let obj_keys = &self.obj_keys;
        let program = self.program;
        let shards = &mut self.slots.shards;
        let results: Vec<crate::shard::WorkerResult> = std::thread::scope(|scope| {
            let (txs, rxs): (Vec<_>, Vec<_>) = (0..n)
                .map(|_| std::sync::mpsc::channel::<crate::shard::Packet>())
                .unzip();
            let mut handles = Vec::with_capacity(n);
            for (me, ((shard, batch), rx)) in shards.iter_mut().zip(work).zip(rxs).enumerate() {
                let txs = txs.clone();
                handles.push(scope.spawn(move || {
                    crate::shard::run_worker(
                        me, nshards, shard, batch, txs, rx, succ, reps, obj_keys, program, deadline,
                    )
                }));
            }
            drop(txs);
            handles
                .into_iter()
                .map(|h| h.join().expect("propagation worker panicked"))
                .collect()
        });

        // Coordinator phase: requeue newly pending representatives and
        // replay statement fan-out, both in shard order (deterministic).
        let mut stmt: Vec<(PtrId, std::sync::Arc<PointsToSet>)> = Vec::new();
        let mut timed_out = false;
        for r in results {
            self.stats.propagations += r.propagations;
            self.queue.extend(r.newly_queued);
            stmt.extend(r.stmt);
            timed_out |= r.timed_out;
        }
        if timed_out {
            return false;
        }
        if let Some(max) = self.budget.max_propagations {
            if self.stats.propagations > max {
                return false;
            }
        }
        if let Some(limit) = self.budget.time {
            if self.started.elapsed() > limit {
                return false;
            }
        }
        for (ptr, delta) in stmt {
            // The outbox clones were merged and dropped in the workers'
            // merge sub-phase, so this unwraps copy-free.
            self.fan_out(
                selector,
                plugin,
                ptr,
                std::sync::Arc::unwrap_or_clone(delta),
            );
        }
        true
    }

    // ---- context-insensitive projections (used by clients) ----------------

    /// Union of `pt(c:v)` over all contexts `c`, projected to allocation
    /// sites — sorted and deduplicated, so downstream tables and snapshots
    /// are deterministic.
    pub fn pt_var_projected(&self, v: VarId) -> Vec<ObjId> {
        let mut out: Vec<ObjId> = Vec::new();
        for (i, key) in self.ptr_keys.iter().enumerate() {
            if let PtrKey::Var(_, var) = key {
                if *var == v {
                    // Fan collapsed members back out to their
                    // representative's shared set at projection time.
                    for o in self.slots.pts(self.reps.find(i as u32)).iter() {
                        out.push(self.obj_keys[o as usize].1);
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Context-insensitive projection of the reachable-method set (ordered).
    pub fn reachable_methods_projected(&self) -> BTreeSet<MethodId> {
        self.reachable_log.iter().map(|&(_, m)| m).collect()
    }

    /// Context-insensitive projection of the call graph (ordered).
    pub fn call_edges_projected(&self) -> BTreeSet<(CallSiteId, MethodId)> {
        self.call_edges
            .iter()
            .map(|&(_, site, _, callee)| (site, callee))
            .collect()
    }
}

/// A configured pointer-analysis run.
pub struct Solver<'p, S, P> {
    state: SolverState<'p>,
    selector: S,
    plugin: P,
}

/// The outcome of a solver run: final state plus status and timing.
pub struct PtaResult<'p> {
    /// The final analysis state (points-to sets, call graph, stats).
    pub state: SolverState<'p>,
    /// Termination status.
    pub status: SolveStatus,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// The selector name (e.g. `"ci"`, `"2obj"`).
    pub analysis: String,
}

impl<'p, S: ContextSelector, P: Plugin> Solver<'p, S, P> {
    /// Creates a solver for `program` with the given policy and plugin,
    /// using the default [`SolverOptions`].
    pub fn new(program: &'p Program, selector: S, plugin: P, budget: Budget) -> Self {
        Self::with_options(program, selector, plugin, budget, SolverOptions::default())
    }

    /// Creates a solver with explicit engine options (e.g. SCC collapsing
    /// disabled for differential testing).
    pub fn with_options(
        program: &'p Program,
        selector: S,
        plugin: P,
        budget: Budget,
        opts: SolverOptions,
    ) -> Self {
        Solver {
            state: SolverState::new(program, budget, opts),
            selector,
            plugin,
        }
    }

    /// Runs to fixpoint (or budget exhaustion) and returns the result
    /// together with the plugin (which may carry analysis-specific data,
    /// e.g. Cut-Shortcut's involved-method set).
    pub fn solve(mut self) -> (PtaResult<'p>, P) {
        let start = Instant::now();
        self.state.started = start;
        self.state.emit_events = self.plugin.wants_events();
        self.plugin.init(&mut self.state);
        let entry = self.state.program.entry();
        self.state
            .add_reachable(&self.selector, &self.plugin, CtxId::EMPTY, entry);
        let mut status = SolveStatus::Completed;
        if self.state.nthreads > 1 {
            // Sharded parallel engine: rounds of parallel propagation with
            // sequential coordinator phases in between. Plugin events are
            // processed only at quiescent points (empty worklist), exactly
            // like the sequential loop; the loop terminates on the first
            // fully quiescent round (no worklist entries, no events).
            loop {
                if self.state.should_collapse() {
                    self.state.collapse_cycles(&self.selector, &self.plugin);
                }
                if !self.state.queue.is_empty() {
                    if !self.state.parallel_round(&self.selector, &self.plugin) {
                        status = SolveStatus::Timeout;
                        break;
                    }
                } else if let Some(ev) = self.state.events.pop_front() {
                    self.plugin.handle(&mut self.state, ev);
                } else {
                    break;
                }
            }
        } else {
            // The sequential engine (threads = 1), byte-for-byte the
            // pre-parallel behavior: per-pointer steps, events at
            // quiescence.
            loop {
                if self.state.should_collapse() {
                    self.state.collapse_cycles(&self.selector, &self.plugin);
                }
                if let Some(ptr) = self.state.queue.pop_front() {
                    // Canonicalize: the pointer may have been merged into an
                    // SCC after it was queued.
                    let ptr = self.state.repr(ptr);
                    let incoming = self.state.slots.take_pending(ptr.0);
                    if !self.state.step(&self.selector, &self.plugin, ptr, incoming) {
                        status = SolveStatus::Timeout;
                        break;
                    }
                } else if let Some(ev) = self.state.events.pop_front() {
                    self.plugin.handle(&mut self.state, ev);
                } else {
                    break;
                }
            }
        }
        let elapsed = start.elapsed();
        (
            PtaResult {
                state: self.state,
                status,
                elapsed,
                analysis: self.selector.name().to_owned(),
            },
            self.plugin,
        )
    }
}
