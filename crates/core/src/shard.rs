//! Sharded pointer-slot storage, the sharded statement index, and the
//! parallel propagation workers.
//!
//! The multi-threaded engine partitions pointer slots across `N` shards by
//! SCC representative: slot `i` lives in shard `i % N`, and because every
//! member of a collapsed assign-SCC reads and writes through its
//! representative's slot, a collapsed cycle never straddles shards. Each
//! worker thread owns exactly one [`Shard`] — the points-to sets and the
//! pending-delta accumulators of its representatives — so the hot set
//! unions of a propagation round run without any locking at all.
//!
//! One bulk-synchronous round has three sub-phases per worker:
//!
//! 1. **propagate** — drain the round's batch of `(representative,
//!    incoming delta)` pairs: union each delta into the owned points-to
//!    set, and turn the genuinely new elements into outbox messages for
//!    the successors' owning shards (cast filters applied worker-side);
//! 2. **fan-out discovery** — replay statement fan-out for the committed
//!    deltas *worker-side*: walk the [`StmtIndex`] for every member of the
//!    delta's SCC and emit [`Derived`] packets — derived `[Load]`/`[Store]`
//!    edges (per new object), `[Call]` resolutions (virtual dispatch runs
//!    on the worker), and plugin reactions discovered through
//!    [`Plugin::discover`] against the per-shard obligation tables. The
//!    packets describe mutations by *key*, not by id, so this sub-phase
//!    touches no shared mutable state; it runs after the outboxes are sent,
//!    overlapping peers' propagate sub-phase;
//! 3. **merge** — receive one outbox from every peer (mpsc channels; the
//!    receive-from-all acts as the phase barrier), sort the packets by
//!    source shard so the merge order is deterministic, and union the
//!    payloads into the owned pending accumulators, recording which
//!    representatives became newly pending.
//!
//! The coordinator then *commits* the derived packets in deterministic
//! (shard, batch, packet) order: interning, PFG/call-graph mutation,
//! context selection, and plugin table updates all stay single-threaded,
//! which is what keeps runs deterministic per thread count and projections
//! bit-identical to the sequential engine's (see `solver.rs`).
//!
//! The statement index itself ([`StmtIndex`]) is built once per solve and
//! is read-only thereafter; it is "sharded by access" — each worker reads
//! the rows of the pointers it owns — rather than physically partitioned,
//! because its rows are keyed by variable while shard ownership is keyed
//! by (representative) pointer: one variable's row serves every context
//! qualification of that variable, and those pointers hash to different
//! shards.

use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;

use csc_ir::{CallKind, CallSiteId, ClassId, FieldId, LoadId, ObjId, Program, StoreId, VarId};

use crate::arena::{PairSet, SuccTable};
use crate::context::CtxId;
use crate::fx::FxHashMap;
use crate::pts::PointsToSet;
use crate::scc::UnionFind;
use crate::solver::{CsObjId, DiscoverCtx, EdgeKind, Plugin, PtrId, PtrKey, Reaction, ABSENT};

/// One shard of the pointer-slot plane: the points-to sets, pending
/// accumulators, successor lists, and PFG edge-dedup sets of every slot
/// `i` with `i % nshards == shard_index`. Local storage index is
/// `i / nshards`.
///
/// The PFG growth state (`succ`, `edge_pairs`) lives *inside* the shard —
/// not in the round-frozen snapshot — so the commit plane can grow the
/// graph worker-side: a worker owns every edge whose (canonical) source it
/// owns, and commits it without touching shared mutable state.
#[derive(Default)]
pub(crate) struct Shard {
    /// Points-to sets (live at SCC representatives, like the sequential
    /// engine's flat vector).
    pub(crate) pts: Vec<PointsToSet>,
    /// Batched worklist accumulators, paired 1:1 with `pts`.
    pub(crate) pending: Vec<PointsToSet>,
    /// Successor edges with optional cast filters, rows paired 1:1 with
    /// `pts` (rows live at SCC representatives; see
    /// `SolverState::add_edge`). Arena-backed: all rows share one segment
    /// pool instead of one `Vec` allocation per source.
    pub(crate) succ: SuccTable,
    /// Per-representative *logical* PFG edge sets, keyed by original
    /// `(src, dst)` endpoints and grouped under the source's current
    /// representative (deduplication + `has_edge`; identical with
    /// collapsing on or off). Grouping by representative keeps ownership
    /// aligned with `succ`: the shard that owns a source's successor row
    /// also owns its dedup set, so worker-side edge commits stay
    /// shard-local. Condensation epochs migrate groups when
    /// representatives merge.
    pub(crate) edge_pairs: FxHashMap<u32, PairSet>,
}

impl Shard {
    /// Heap bytes of this shard's edge storage (successor arena plus the
    /// dedup pair sets).
    pub(crate) fn edge_bytes(&self) -> u64 {
        self.succ.bytes()
            + (self.edge_pairs.capacity() * std::mem::size_of::<(u32, PairSet)>()) as u64
            + self.edge_pairs.values().map(PairSet::bytes).sum::<u64>()
    }
}

/// A per-slot physical placement, installed by topology-aware routing
/// (`CSC_SHARD_ROUTE=balanced`): slot `i` lives at
/// `shards[shard[i]].pts[local[i]]`. Absent (the `mod` default and the
/// state before the first rebalance), placement is the arithmetic
/// round-robin `(i % n, i / n)`.
///
/// Fresh ids minted after a rebalance — by the sequential interner and by
/// the commit plane's worker strides alike — are always mod-routed: the
/// stride reservation argument (worker `w` owns ids `≡ w`) is what makes
/// worker-side allocation lock-free, so only *observed* slots are ever
/// re-homed, at condensation epochs, seeded by accumulated union cost.
#[derive(Clone)]
pub(crate) struct RouteMap {
    /// Owning shard per slot id.
    pub(crate) shard: Vec<u32>,
    /// Row index within the owning shard per slot id.
    pub(crate) local: Vec<u32>,
}

/// The complete sharded slot plane: `pts` and `pending` for every interned
/// pointer, distributed round-robin across shards (or per an installed
/// [`RouteMap`]). With one shard this is the sequential engine's flat
/// storage behind an index indirection that compiles to the identity.
pub(crate) struct ShardedSlots {
    n: u32,
    len: u32,
    pub(crate) shards: Vec<Shard>,
    pub(crate) route: Option<RouteMap>,
}

impl ShardedSlots {
    /// Creates an empty slot plane with `n` shards (at least one).
    pub(crate) fn new(n: usize) -> Self {
        let n = n.max(1);
        ShardedSlots {
            n: u32::try_from(n).expect("shard count fits u32"),
            len: 0,
            shards: (0..n).map(|_| Shard::default()).collect(),
            route: None,
        }
    }

    /// The shard owning slot `i`.
    #[inline]
    pub(crate) fn shard_of(&self, i: u32) -> usize {
        if let Some(r) = &self.route {
            return r.shard[i as usize] as usize;
        }
        if self.n == 1 {
            0
        } else {
            (i % self.n) as usize
        }
    }

    #[inline]
    fn loc(&self, i: u32) -> (usize, usize) {
        if let Some(r) = &self.route {
            return (r.shard[i as usize] as usize, r.local[i as usize] as usize);
        }
        if self.n == 1 {
            (0, i as usize)
        } else {
            ((i % self.n) as usize, (i / self.n) as usize)
        }
    }

    /// Appends one empty slot (the next dense id) and returns nothing; the
    /// caller assigns ids densely, and fresh slots are always mod-routed:
    /// slot `len` goes to shard `len % n` (appended at the end of that
    /// shard's rows when a [`RouteMap`] is installed).
    pub(crate) fn push(&mut self) {
        let i = self.len;
        let s = if self.n == 1 {
            0
        } else {
            (i % self.n) as usize
        };
        let shard = &mut self.shards[s];
        if let Some(r) = &mut self.route {
            r.shard.push(s as u32);
            r.local
                .push(u32::try_from(shard.pts.len()).expect("row index fits u32"));
        } else {
            debug_assert_eq!(shard.pts.len(), (i / self.n) as usize);
        }
        shard.pts.push(PointsToSet::new());
        shard.pending.push(PointsToSet::new());
        shard.succ.push_row();
        self.len += 1;
    }

    /// Number of slots (the next dense id).
    #[inline]
    pub(crate) fn len(&self) -> u32 {
        self.len
    }

    /// Pads every shard to the layout of a plane with `new_len` dense
    /// slots after a commit-plane round. The workers appended their stride
    /// allocations (`appended[w]` rows each, in allocation order) to their
    /// own shards only, so the shards are ragged and the id gaps of
    /// under-allocating strides have no rows yet.
    ///
    /// Without a route map, shard `s` simply grows to
    /// `ceil((new_len - s) / n)` rows — worker appends land exactly at
    /// their arithmetic row positions, and the resize fills the gap ids
    /// (which all sort after the allocated strides within a shard). With a
    /// route map installed, the same layout is recorded explicitly: fresh
    /// ids are mod-owned, allocated strides sit at the end of each shard's
    /// pre-round rows in stride order, and gap ids get fresh empty rows
    /// after them.
    pub(crate) fn pad_to(&mut self, new_len: u32, appended: &[usize]) {
        debug_assert!(new_len >= self.len);
        let n = self.n;
        let old_len = self.len;
        if let Some(mut route) = self.route.take() {
            // Rows each shard held before the workers' appends, and the
            // first stride index of this round's allocations per shard.
            let base_rows: Vec<usize> = self
                .shards
                .iter()
                .zip(appended)
                .map(|(sh, &a)| sh.pts.len() - a)
                .collect();
            for id in old_len..new_len {
                let w = (id % n) as usize;
                let stride = id / n;
                let first = old_len.saturating_sub(w as u32).div_ceil(n);
                let local = if ((stride - first) as usize) < appended[w] {
                    // A worker-allocated id: its row already exists.
                    base_rows[w] + (stride - first) as usize
                } else {
                    // A gap id of an under-allocating stride: append an
                    // empty row.
                    let shard = &mut self.shards[w];
                    let l = shard.pts.len();
                    shard.pts.push(PointsToSet::new());
                    shard.pending.push(PointsToSet::new());
                    shard.succ.push_row();
                    l
                };
                route.shard.push(w as u32);
                route
                    .local
                    .push(u32::try_from(local).expect("row index fits u32"));
            }
            self.route = Some(route);
        } else {
            for (s, shard) in self.shards.iter_mut().enumerate() {
                let target = (new_len.saturating_sub(s as u32)).div_ceil(n) as usize;
                debug_assert!(shard.pts.len() <= target);
                shard.pts.resize_with(target, PointsToSet::new);
                shard.pending.resize_with(target, PointsToSet::new);
                shard.succ.resize_rows(target);
            }
        }
        self.len = new_len;
    }

    /// Physically re-homes every slot per `target` (the new owning shard
    /// per slot id) and installs the resulting [`RouteMap`]. Rows are
    /// migrated in slot-id order, so the produced layout — and every
    /// subsequent worker-side access — is deterministic. Edge-pair groups
    /// follow their representative's slot.
    pub(crate) fn apply_route(&mut self, target: Vec<u32>) {
        debug_assert_eq!(target.len(), self.len as usize);
        let n = self.n as usize;
        let mut old =
            std::mem::replace(&mut self.shards, (0..n).map(|_| Shard::default()).collect());
        let old_route = self.route.take();
        let old_loc = |i: u32| -> (usize, usize) {
            if let Some(r) = &old_route {
                (r.shard[i as usize] as usize, r.local[i as usize] as usize)
            } else {
                ((i as usize) % n, (i as usize) / n)
            }
        };
        let mut route = RouteMap {
            shard: target,
            local: Vec::with_capacity(self.len as usize),
        };
        for i in 0..self.len {
            let (os, ol) = old_loc(i);
            let s = route.shard[i as usize] as usize;
            let shard = &mut self.shards[s];
            route
                .local
                .push(u32::try_from(shard.pts.len()).expect("row index fits u32"));
            shard.pts.push(std::mem::take(&mut old[os].pts[ol]));
            shard.pending.push(std::mem::take(&mut old[os].pending[ol]));
            let row = shard.succ.rows();
            shard.succ.push_row();
            let migrated = old[os].succ.take_row(ol);
            shard.succ.extend_row(row, migrated);
        }
        for o in &mut old {
            for (rep, pairs) in o.edge_pairs.drain() {
                let s = route.shard[rep as usize] as usize;
                self.shards[s].edge_pairs.insert(rep, pairs);
            }
        }
        self.route = Some(route);
    }

    /// Shared points-to set of slot `i`.
    #[inline]
    pub(crate) fn pts(&self, i: u32) -> &PointsToSet {
        let (s, l) = self.loc(i);
        &self.shards[s].pts[l]
    }

    /// Mutable points-to set of slot `i`.
    #[inline]
    pub(crate) fn pts_mut(&mut self, i: u32) -> &mut PointsToSet {
        let (s, l) = self.loc(i);
        &mut self.shards[s].pts[l]
    }

    /// Takes slot `i`'s points-to set out, leaving it empty (take/restore
    /// pattern for split borrows).
    #[inline]
    pub(crate) fn take_pts(&mut self, i: u32) -> PointsToSet {
        std::mem::take(self.pts_mut(i))
    }

    /// Restores a taken points-to set.
    #[inline]
    pub(crate) fn put_pts(&mut self, i: u32, set: PointsToSet) {
        *self.pts_mut(i) = set;
    }

    /// Mutable pending accumulator of slot `i`.
    #[inline]
    pub(crate) fn pending_mut(&mut self, i: u32) -> &mut PointsToSet {
        let (s, l) = self.loc(i);
        &mut self.shards[s].pending[l]
    }

    /// Takes slot `i`'s pending accumulator out, leaving it empty.
    #[inline]
    pub(crate) fn take_pending(&mut self, i: u32) -> PointsToSet {
        std::mem::take(self.pending_mut(i))
    }

    /// Restores a taken pending accumulator.
    #[inline]
    pub(crate) fn put_pending(&mut self, i: u32, set: PointsToSet) {
        *self.pending_mut(i) = set;
    }

    /// Iterates slot `i`'s successor edges in insertion order.
    #[inline]
    pub(crate) fn succ_iter(&self, i: u32) -> impl Iterator<Item = (PtrId, Option<ClassId>)> + '_ {
        let (s, l) = self.loc(i);
        self.shards[s].succ.iter_row(l).map(|(d, f)| (PtrId(d), f))
    }

    /// Appends one successor edge at slot `i`.
    #[inline]
    pub(crate) fn succ_push(&mut self, i: u32, dst: PtrId, filter: Option<ClassId>) {
        let (s, l) = self.loc(i);
        self.shards[s].succ.push_entry(l, dst.0, filter);
    }

    /// First segment of slot `i`'s successor chain ([`crate::arena::NONE`]
    /// when empty) — the cursor entry point for walking a row while
    /// mutating other slots (see [`succ_seg`](Self::succ_seg)).
    #[inline]
    pub(crate) fn succ_head(&self, i: u32) -> u32 {
        let (s, l) = self.loc(i);
        self.shards[s].succ.head(l)
    }

    /// Fetches one segment of slot `i`'s successor chain *by value*,
    /// releasing the arena borrow: the hot propagation loop copies 56
    /// bytes per six edges instead of taking and restoring the row.
    #[inline]
    pub(crate) fn succ_seg(&self, i: u32, seg: u32) -> crate::arena::SuccSeg {
        let (s, _) = self.loc(i);
        self.shards[s].succ.seg(seg)
    }

    /// Removes and returns slot `i`'s successor edges (cold paths: SCC
    /// collapse and reconciliation rebuild rows wholesale).
    pub(crate) fn take_succ(&mut self, i: u32) -> Vec<(PtrId, Option<ClassId>)> {
        let (s, l) = self.loc(i);
        self.shards[s]
            .succ
            .take_row(l)
            .into_iter()
            .map(|(d, f)| (PtrId(d), f))
            .collect()
    }

    /// Installs a successor list at slot `i` (the row must be empty — the
    /// restore half of [`take_succ`](Self::take_succ)).
    pub(crate) fn put_succ(&mut self, i: u32, succ: Vec<(PtrId, Option<ClassId>)>) {
        let (s, l) = self.loc(i);
        debug_assert_eq!(self.shards[s].succ.row_len(l), 0);
        self.shards[s]
            .succ
            .extend_row(l, succ.into_iter().map(|(d, f)| (d.0, f)));
    }

    /// Appends a batch of successor edges at slot `i` (reconciliation
    /// folds aliased rows onto their canonical slot).
    pub(crate) fn extend_succ(&mut self, i: u32, succ: Vec<(PtrId, Option<ClassId>)>) {
        let (s, l) = self.loc(i);
        self.shards[s]
            .succ
            .extend_row(l, succ.into_iter().map(|(d, f)| (d.0, f)));
    }

    /// The edge-dedup pair group of representative `rep`, created on
    /// demand.
    #[inline]
    pub(crate) fn edge_pairs_mut(&mut self, rep: u32) -> &mut PairSet {
        let shard = self.shard_of(rep);
        self.shards[shard].edge_pairs.entry(rep).or_default()
    }

    /// The edge-dedup pair group of representative `rep`, if any.
    #[inline]
    pub(crate) fn edge_pairs(&self, rep: u32) -> Option<&PairSet> {
        self.shards[self.shard_of(rep)].edge_pairs.get(&rep)
    }

    /// Removes and returns `rep`'s pair group (condensation epochs migrate
    /// merged members' groups onto the surviving representative).
    pub(crate) fn take_edge_pairs(&mut self, rep: u32) -> Option<PairSet> {
        let shard = self.shard_of(rep);
        self.shards[shard].edge_pairs.remove(&rep)
    }

    /// Installs a pair group at `rep`'s owning shard.
    pub(crate) fn put_edge_pairs(&mut self, rep: u32, pairs: PairSet) {
        let shard = self.shard_of(rep);
        self.shards[shard].edge_pairs.insert(rep, pairs);
    }

    /// Heap bytes of the points-to plane (`pts` + `pending` sets), with
    /// CoW-shared dense chunks attributed once; also counts the shared
    /// references deduplicated (see [`crate::mem`]).
    pub(crate) fn pts_account(&self) -> crate::mem::PtsAccount {
        let mut acc = crate::mem::PtsAccount::default();
        for shard in &self.shards {
            for set in shard.pts.iter().chain(shard.pending.iter()) {
                set.account(&mut acc);
            }
        }
        acc
    }

    /// Heap bytes of the PFG edge storage across all shards.
    pub(crate) fn edge_bytes(&self) -> u64 {
        self.shards.iter().map(Shard::edge_bytes).sum()
    }
}

/// Per-variable static usage index (which loads/stores/calls have the
/// variable as base/receiver), built once per solve and read-only
/// thereafter — the workers' fan-out discovery and the sequential engine's
/// statement processing both walk it.
#[derive(Default)]
pub(crate) struct StmtIndex {
    pub(crate) loads_with_base: Vec<Vec<LoadId>>,
    pub(crate) stores_with_base: Vec<Vec<StoreId>>,
    pub(crate) calls_with_recv: Vec<Vec<CallSiteId>>,
}

impl StmtIndex {
    pub(crate) fn build(program: &Program) -> Self {
        let n = program.vars().len();
        let mut idx = StmtIndex {
            loads_with_base: vec![Vec::new(); n],
            stores_with_base: vec![Vec::new(); n],
            calls_with_recv: vec![Vec::new(); n],
        };
        // Walk method *bodies*, not the site tables: a `ProgramDelta`
        // statement removal leaves its site-table entry behind as an orphan
        // (site ids are append-only), and orphaned sites must not fire. For
        // builder-produced programs the two walks are identical — site ids
        // are allocated in body order.
        for m in program.methods() {
            m.visit_stmts(|s| match s {
                csc_ir::Stmt::Load(id) => {
                    idx.loads_with_base[program.load(*id).base().index()].push(*id);
                }
                csc_ir::Stmt::Store(id) => {
                    idx.stores_with_base[program.store(*id).base().index()].push(*id);
                }
                csc_ir::Stmt::Call(id) => {
                    if let Some(r) = program.call_site(*id).recv() {
                        idx.calls_with_recv[r.index()].push(*id);
                    }
                }
                _ => {}
            });
        }
        idx
    }
}

/// Restricts a delta to the objects assignable to `class` (`checkcast`
/// semantics). Free function so the parallel workers can filter without a
/// `SolverState` borrow.
pub(crate) fn filter_pts(
    objs: &PointsToSet,
    class: ClassId,
    obj_keys: &[(CtxId, ObjId)],
    program: &Program,
) -> PointsToSet {
    objs.iter()
        .filter(|&o| {
            let (_, obj) = obj_keys[o as usize];
            program.is_subclass(program.obj(obj).class(), class)
        })
        .collect()
}

/// A work item a worker *derived* from a committed delta and hands to the
/// coordinator for commit. Mutation descriptions travel by key (context ×
/// site, object × field), never by pointer id the coordinator has not
/// interned yet — interning order therefore stays a coordinator-only
/// concern and runs in deterministic packet order.
///
/// Load/store fan-out is one packet per *site activation* — the committed
/// delta rides along with the packet group, and the coordinator iterates
/// it during commit exactly like the sequential `process_var_stmts` loop,
/// so a delta of `k` objects hitting `s` sites costs `s` packets, not
/// `s × k`. Call resolutions are per (site, object) because that is where
/// the worker does real work: virtual dispatch runs worker-side.
pub(crate) enum Derived {
    /// `[Load]` fan-out at one load site under one context: the edges
    /// `obj.field -> (ctx, lhs)` for every `obj` in the delta.
    LoadFan { site: LoadId, ctx: CtxId },
    /// `[Store]` fan-out at one store site under one context (cut stores
    /// were filtered worker-side through [`Plugin::is_store_cut`]): the
    /// edges `(ctx, rhs) -> obj.field` for every `obj` in the delta.
    StoreFan { site: StoreId, ctx: CtxId },
    /// A `[Call]`-rule resolution: virtual dispatch already performed on
    /// the worker; the coordinator selects the callee context and commits
    /// the call edge.
    Call {
        caller_ctx: CtxId,
        site: CallSiteId,
        recv: u32,
        callee: csc_ir::MethodId,
    },
    /// A plugin reaction discovered worker-side ([`Plugin::discover`]);
    /// committed through [`Plugin::apply`]. Boxed so the rare reaction
    /// variant (it can carry a whole points-to set) does not inflate every
    /// packet in the stream.
    React(Box<Reaction>),
}

/// Everything the workers share for the duration of one parallel round.
///
/// The coordinator *moves* these pieces out of the solver state into one
/// `Arc` per round, the workers read them, and the coordinator reclaims
/// them (`Arc::try_unwrap`) after the round barrier — safe Rust's way of
/// expressing "frozen during the round, mutable between rounds" without
/// cloning anything but an `Arc` header per round.
pub(crate) struct RoundShared<'p, P> {
    pub(crate) reps: UnionFind,
    pub(crate) members: FxHashMap<u32, Vec<u32>>,
    pub(crate) ptr_keys: Vec<PtrKey>,
    pub(crate) obj_keys: Vec<(CtxId, ObjId)>,
    pub(crate) stmts: StmtIndex,
    pub(crate) program: &'p Program,
    pub(crate) plugin: P,
    /// Whether [`Plugin::discover`] runs worker-side this round.
    pub(crate) discovery: bool,
    pub(crate) nshards: u32,
    pub(crate) deadline: Option<std::time::Instant>,
    /// The frozen intern tables of the sharded commit plane; `None` runs
    /// the PR-5 coordinator-replay fallback (`CSC_PAR_COMMIT=0`).
    pub(crate) commit: Option<CommitShared>,
    /// The slot plane's physical placement, when topology-aware routing
    /// (`CSC_SHARD_ROUTE=balanced`) has re-homed slots; `None` means the
    /// arithmetic mod layout. Moved out of [`ShardedSlots`] for the round
    /// (placement only changes at coordinator-side condensation epochs).
    pub(crate) route: Option<RouteMap>,
}

impl<P> RoundShared<'_, P> {
    /// The shard owning slot `u`. Ids past the route map (fresh stride
    /// allocations of this round) are always mod-owned.
    #[inline]
    pub(crate) fn shard_of(&self, u: u32) -> u32 {
        match &self.route {
            Some(r) if (u as usize) < r.shard.len() => r.shard[u as usize],
            _ => u % self.nshards,
        }
    }

    /// The row index of slot `u` within its owning shard. Only valid for
    /// pre-round slots — this round's fresh stride ids live at worker-local
    /// appended rows the allocating worker tracks itself.
    #[inline]
    pub(crate) fn local_of(&self, u: u32) -> usize {
        match &self.route {
            Some(r) => r.local[u as usize] as usize,
            None => (u / self.nshards) as usize,
        }
    }
}

/// The round-frozen intern tables the commit plane's worker-side interner
/// reads through. Lookups hit these first; a miss allocates a fresh id
/// from the worker's own stride (see [`run_worker`]) and records it for
/// the coordinator's reconciliation pass.
pub(crate) struct CommitShared {
    /// Dense empty-context variable pointers ([`ABSENT`] = not interned).
    pub(crate) ci_var_ptrs: Vec<u32>,
    /// Residual context-qualified variable pointers.
    pub(crate) var_ptr_table: FxHashMap<(CtxId, VarId), PtrId>,
    /// Field pointers.
    pub(crate) field_ptr_table: FxHashMap<(CsObjId, FieldId), PtrId>,
}

/// An outbox packet: `(source shard, messages)` where each message is a
/// `(destination representative, delta)` pair. Deltas travel by `Arc` —
/// an unfiltered delta fanning out to many successors ships one shared
/// set plus per-edge pointer clones, mirroring the sequential engine's
/// propagate-by-reference invariant; only the receiving shard's pending
/// union copies elements.
pub(crate) type Packet = (usize, Vec<(u32, Arc<PointsToSet>)>);

/// A commit-plane edge request: one `[Load]`/`[Store]` PFG edge by
/// original `(src, dst)` endpoints (either may be a fresh stride id),
/// routed to the shard owning the source's representative, which commits
/// it — dedup, successor push, flush — without coordinator involvement.
pub(crate) type EdgeReq = (u32, u32, EdgeKind);

/// An edge-commit outbox packet: `(source shard, edge requests)`.
pub(crate) type EdgePacket = (usize, Vec<EdgeReq>);

/// One round's input to a pooled worker (see `crate::pool`).
pub(crate) struct RoundJob<'p, P> {
    pub(crate) shared: Arc<RoundShared<'p, P>>,
    pub(crate) shard: Shard,
    pub(crate) batch: Vec<(u32, PointsToSet)>,
    /// `txs[d]` reaches shard `d`'s worker (including self).
    pub(crate) txs: Vec<Sender<Packet>>,
    /// This worker's inbox for the round.
    pub(crate) rx: Receiver<Packet>,
    /// Edge-commit channels (second exchange; exercised only when the
    /// commit plane is on).
    pub(crate) etxs: Vec<Sender<EdgePacket>>,
    pub(crate) erx: Receiver<EdgePacket>,
    /// The worker pool's shared packet freelist: outbox message vectors
    /// are drawn from and returned to it, so steady-state rounds allocate
    /// nothing on the delta path.
    pub(crate) bufs: Arc<crate::steal::BufPool<(u32, Arc<PointsToSet>)>>,
}

/// One committed delta with its worker-derived packets:
/// `(representative, committed delta, derived work)`.
pub(crate) type DeltaCommit = (PtrId, Arc<PointsToSet>, u32);

/// What one worker hands back to the coordinator after a round.
pub(crate) struct WorkerResult {
    /// Committed deltas in batch order — the coordinator commits the
    /// derived packets and (for plugins without worker-side discovery)
    /// replays `NewPointsTo` events from these. The third element is the
    /// *exclusive end* of the delta's packet range in `derived` (ranges
    /// are contiguous and start where the previous delta's ended), so the
    /// whole round's packet stream lives in one allocation per worker. By
    /// the time the coordinator runs, all outbox clones of a delta have
    /// been merged and dropped, so the `Arc` is unique again and unwraps
    /// without a copy.
    pub(crate) stmt: Vec<DeltaCommit>,
    /// The round's derived packets, all deltas concatenated in batch
    /// order; `stmt` carries the range boundaries.
    pub(crate) derived: Vec<Derived>,
    /// Representatives whose pending accumulator went from empty to
    /// non-empty during the merge sub-phase, in deterministic order.
    pub(crate) newly_queued: Vec<PtrId>,
    /// Worklist propagations with a non-empty delta.
    pub(crate) propagations: u64,
    /// Whether this worker hit the wall-clock deadline mid-batch (its
    /// remaining deltas were restored to pending; the coordinator aborts
    /// the solve).
    pub(crate) timed_out: bool,
    /// Commit plane: fresh pointers this worker interned, in allocation
    /// order — `(key, stride id)`. Reconciliation registers the first
    /// occurrence of each key (shard-major order) as canonical and aliases
    /// later duplicates onto it.
    pub(crate) fresh: Vec<(PtrKey, u32)>,
    /// Commit plane: edges this worker committed into its own shard
    /// (post-dedup, deterministic order). The coordinator re-checks them
    /// against the canonicalized id space, counts the survivors, and
    /// queues their `NewEdge` events.
    pub(crate) edges: Vec<EdgeReq>,
    /// Commit plane: flush requests for committed edges whose source
    /// already had a non-empty points-to set — `(original dst, source
    /// set)`. The payload was cloned shard-side; the coordinator only
    /// enqueues it.
    pub(crate) flushes: Vec<(u32, Arc<PointsToSet>)>,
}

/// Replays statement fan-out and plugin discovery for one committed delta,
/// worker-side. Mirrors the member enumeration of the sequential engine's
/// `fan_out`: every member of a collapsed SCC sees the shared set's growth
/// exactly as it would uncollapsed. Emits packets in the deterministic
/// order the coordinator commits them: per member (ascending,
/// representative first) — loads, stores, calls, then plugin reactions.
pub(crate) fn discover_fan_out<P: Plugin>(
    shared: &RoundShared<'_, P>,
    rep: u32,
    delta: &PointsToSet,
    out: &mut Vec<Derived>,
) {
    let group: &[u32] = shared
        .members
        .get(&rep)
        .map(Vec::as_slice)
        .unwrap_or(std::slice::from_ref(&rep));
    let dctx = DiscoverCtx {
        obj_keys: &shared.obj_keys,
        program: shared.program,
    };
    for &m in group {
        if let PtrKey::Var(ctx, v) = shared.ptr_keys[m as usize] {
            // [Load]
            for &l in &shared.stmts.loads_with_base[v.index()] {
                out.push(Derived::LoadFan { site: l, ctx });
            }
            // [Store] (cut-aware; `is_store_cut` is a pure predicate, so
            // evaluating it worker-side matches the sequential engine).
            for &s in &shared.stmts.stores_with_base[v.index()] {
                if shared.plugin.is_store_cut(s) {
                    continue;
                }
                out.push(Derived::StoreFan { site: s, ctx });
            }
            // [Call]: virtual dispatch resolves worker-side; spurious
            // receivers (no concrete impl) are dropped here, like the
            // sequential engine's early return.
            for &site in &shared.stmts.calls_with_recv[v.index()] {
                let cs = shared.program.call_site(site);
                for recv in delta.iter() {
                    let (_, obj) = shared.obj_keys[recv as usize];
                    let callee = match cs.kind() {
                        CallKind::Virtual => {
                            let class = shared.program.obj(obj).class();
                            match shared.program.dispatch(class, cs.target()) {
                                Some(m) => m,
                                None => continue,
                            }
                        }
                        CallKind::Special => cs.target(),
                        CallKind::Static => unreachable!("static calls have no receiver"),
                    };
                    out.push(Derived::Call {
                        caller_ctx: ctx,
                        site,
                        recv,
                        callee,
                    });
                }
            }
        }
        if shared.discovery {
            let mut reactions = Vec::new();
            shared
                .plugin
                .discover(PtrId(m), delta, &dctx, &mut reactions);
            out.extend(reactions.into_iter().map(|r| Derived::React(Box::new(r))));
        }
    }
}

/// The commit plane's worker-side interner: frozen-table lookups with
/// stride-allocated fresh ids.
///
/// Worker `s` of `n` owns the id stride `{ l*n + s }`; its `k`-th fresh
/// pointer this round gets the id `(base + k) * n + s` where `base` is the
/// shard's slot count at round start — a *pre-reserved, lock-free id
/// range*: no two workers can allocate the same id, every fresh id is
/// self-owned (`id % n == s`, so its slot storage appends to the
/// allocating worker's own shard), and the assignment is a pure function
/// of the worker's deterministic round schedule, never of cross-thread
/// timing. Two workers may still intern the *same key* under different
/// ids; the coordinator's reconciliation pass aliases such duplicates
/// onto the first occurrence in shard-major order (see
/// `SolverState::reconcile_round`).
struct StrideInterner<'a> {
    commit: &'a CommitShared,
    me: u32,
    n: u32,
    /// Next unallocated stride index — starts at the first index whose id
    /// `index * n + me` lies past the frozen id space. Derived from the
    /// frozen `ptr_keys` length, *not* from the shard's row count: with
    /// topology-aware routing the two decouple (rows migrate between
    /// shards; the id stride does not).
    next: u32,
    /// Worker-local fresh interns (so a key allocated twice by the *same*
    /// worker reuses its id).
    fresh_vars: FxHashMap<(CtxId, VarId), u32>,
    fresh_fields: FxHashMap<(CsObjId, FieldId), u32>,
    /// Allocation-ordered log for the reconciliation pass.
    fresh: Vec<(PtrKey, u32)>,
}

impl StrideInterner<'_> {
    /// Allocates the next id of this worker's stride and appends its slot
    /// storage to the owned shard.
    fn alloc(&mut self, key: PtrKey, shard: &mut Shard) -> u32 {
        let id = u64::from(self.next) * u64::from(self.n) + u64::from(self.me);
        let id = u32::try_from(id).expect("too many pointers");
        self.next += 1;
        shard.pts.push(PointsToSet::new());
        shard.pending.push(PointsToSet::new());
        shard.succ.push_row();
        self.fresh.push((key, id));
        id
    }

    /// Interns a context-qualified variable pointer (mirrors
    /// `SolverState::var_ptr`).
    fn var_ptr(&mut self, ctx: CtxId, v: VarId, shard: &mut Shard) -> u32 {
        if ctx == CtxId::EMPTY {
            let slot = self.commit.ci_var_ptrs[v.index()];
            if slot != ABSENT {
                return slot;
            }
        } else if let Some(&p) = self.commit.var_ptr_table.get(&(ctx, v)) {
            return p.0;
        }
        if let Some(&id) = self.fresh_vars.get(&(ctx, v)) {
            return id;
        }
        let id = self.alloc(PtrKey::Var(ctx, v), shard);
        self.fresh_vars.insert((ctx, v), id);
        id
    }

    /// Interns a field pointer (mirrors `SolverState::field_ptr`).
    fn field_ptr(&mut self, obj: CsObjId, f: FieldId, shard: &mut Shard) -> u32 {
        if let Some(&p) = self.commit.field_ptr_table.get(&(obj, f)) {
            return p.0;
        }
        if let Some(&id) = self.fresh_fields.get(&(obj, f)) {
            return id;
        }
        let id = self.alloc(PtrKey::Field(obj, f), shard);
        self.fresh_fields.insert((obj, f), id);
        id
    }
}

/// Commit-plane fan-out for one committed delta: like [`discover_fan_out`]
/// but the `[Load]`/`[Store]` rules are *resolved* here — targets interned
/// through the stride interner, one [`EdgeReq`] per edge routed to the
/// shard owning the source's representative — instead of shipped to the
/// coordinator as replay packets. `[Call]` resolutions and plugin
/// reactions still travel as [`Derived`] packets (context selection and
/// obligation-table writes stay coordinator-side).
#[allow(clippy::too_many_arguments)]
fn commit_fan_out<P: Plugin>(
    shared: &RoundShared<'_, P>,
    shard: &mut Shard,
    interner: &mut StrideInterner<'_>,
    rep: u32,
    delta: &PointsToSet,
    derived: &mut Vec<Derived>,
    eout: &mut [Vec<EdgeReq>],
) {
    let group: &[u32] = shared
        .members
        .get(&rep)
        .map(Vec::as_slice)
        .unwrap_or(std::slice::from_ref(&rep));
    let dctx = DiscoverCtx {
        obj_keys: &shared.obj_keys,
        program: shared.program,
    };
    for &m in group {
        if let PtrKey::Var(ctx, v) = shared.ptr_keys[m as usize] {
            // [Load]: one edge per (site, object), source-owner routed.
            for &l in &shared.stmts.loads_with_base[v.index()] {
                let site = shared.program.load(l);
                let t = interner.var_ptr(ctx, site.lhs(), shard);
                for o in delta.iter() {
                    let s = interner.field_ptr(CsObjId(o), site.field(), shard);
                    let owner = shared.shard_of(shared.reps.find_ext(s)) as usize;
                    eout[owner].push((s, t, EdgeKind::Load(l)));
                }
            }
            // [Store] (cut-aware): all edges share the source, so the
            // owner is computed once.
            for &st in &shared.stmts.stores_with_base[v.index()] {
                if shared.plugin.is_store_cut(st) {
                    continue;
                }
                let site = shared.program.store(st);
                let s = interner.var_ptr(ctx, site.rhs(), shard);
                let owner = shared.shard_of(shared.reps.find_ext(s)) as usize;
                for o in delta.iter() {
                    let t = interner.field_ptr(CsObjId(o), site.field(), shard);
                    eout[owner].push((s, t, EdgeKind::Store(st)));
                }
            }
            // [Call]: identical to the replay path — dispatch worker-side,
            // context selection coordinator-side.
            for &site in &shared.stmts.calls_with_recv[v.index()] {
                let cs = shared.program.call_site(site);
                for recv in delta.iter() {
                    let (_, obj) = shared.obj_keys[recv as usize];
                    let callee = match cs.kind() {
                        CallKind::Virtual => {
                            let class = shared.program.obj(obj).class();
                            match shared.program.dispatch(class, cs.target()) {
                                Some(m) => m,
                                None => continue,
                            }
                        }
                        CallKind::Special => cs.target(),
                        CallKind::Static => unreachable!("static calls have no receiver"),
                    };
                    derived.push(Derived::Call {
                        caller_ctx: ctx,
                        site,
                        recv,
                        callee,
                    });
                }
            }
        }
        if shared.discovery {
            let mut reactions = Vec::new();
            shared
                .plugin
                .discover(PtrId(m), delta, &dctx, &mut reactions);
            derived.extend(reactions.into_iter().map(|r| Derived::React(Box::new(r))));
        }
    }
}

/// Runs one worker's share of a bulk-synchronous propagation round. See
/// the module docs for the three sub-phases (plus the commit plane's
/// fourth: edge commit). `shared.deadline` is the
/// wall-clock budget's cutoff: checked every 1024 propagations like the
/// sequential engine, so a single oversized round cannot overshoot the
/// budget unboundedly — on expiry the worker restores its remaining
/// deltas to pending and still completes the channel protocol (all
/// sub-phases must run or peers would deadlock).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_worker<P: Plugin>(
    me: usize,
    shared: &RoundShared<'_, P>,
    shard: &mut Shard,
    batch: Vec<(u32, PointsToSet)>,
    txs: Vec<Sender<Packet>>,
    rx: Receiver<Packet>,
    etxs: Vec<Sender<EdgePacket>>,
    erx: Receiver<EdgePacket>,
    bufs: &crate::steal::BufPool<(u32, Arc<PointsToSet>)>,
) -> WorkerResult {
    crate::fault::hit(crate::fault::FaultPoint::WorkerRound);
    let nshards = shared.nshards;
    // Pre-round geometry for this round's fresh stride allocations: the
    // first unallocated stride index, and the shard row where the first
    // appended fresh slot will land (row count at round start).
    let frozen_len = u32::try_from(shared.ptr_keys.len()).expect("too many pointers");
    let first_stride = frozen_len.saturating_sub(me as u32).div_ceil(nshards);
    let base_rows = shard.pts.len();
    // Sub-phase 1: propagate. Union incoming deltas into the owned
    // points-to sets; route genuinely new elements to the successors'
    // owning shards.
    let mut out: Vec<Vec<(u32, Arc<PointsToSet>)>> = (0..nshards).map(|_| bufs.get()).collect();
    let mut stmt: Vec<DeltaCommit> = Vec::with_capacity(batch.len());
    let mut propagations = 0u64;
    let mut timed_out = false;
    for (rep, incoming) in batch {
        debug_assert_eq!(shared.shard_of(rep), me as u32);
        let local = shared.local_of(rep);
        if timed_out {
            // Restore the drained delta so the partial state stays
            // consistent (the coordinator aborts after this round).
            shard.pending[local].union_with(&incoming);
            continue;
        }
        let Some(delta) = shard.pts[local].union_delta(&incoming) else {
            continue;
        };
        propagations += 1;
        if let Some(d) = shared.deadline {
            if propagations.is_multiple_of(1024) && std::time::Instant::now() > d {
                timed_out = true;
            }
        }
        let delta = Arc::new(delta);
        // The successor row lives in this worker's own shard (rows are
        // stored at representatives, and batch representatives are
        // self-owned by construction).
        for (t, filter) in shard.succ.iter_row(local) {
            // Stored targets may be stale (merged away); canonicalize like
            // the sequential engine's enqueue does. A target canonicalizing
            // back onto the source is a no-op (the delta is already in the
            // shared set).
            let trep = shared.reps.find(t);
            if trep == rep {
                continue;
            }
            let payload = match filter {
                None => Arc::clone(&delta),
                Some(class) => {
                    Arc::new(filter_pts(&delta, class, &shared.obj_keys, shared.program))
                }
            };
            if !payload.is_empty() {
                out[shared.shard_of(trep) as usize].push((trep, payload));
            }
        }
        stmt.push((PtrId(rep), delta, 0));
    }
    crate::fault::hit(crate::fault::FaultPoint::OutboxSend);
    for (d, tx) in txs.iter().enumerate() {
        tx.send((me, std::mem::take(&mut out[d])))
            .expect(crate::pool::PEER_HANGUP);
    }
    drop(txs);

    // Sub-phase 2: fan-out discovery, overlapping the peers' propagate
    // sub-phase (the outboxes are already on the wire). With the commit
    // plane on, `[Load]`/`[Store]` edges are resolved right here — fresh
    // pointers interned from this worker's pre-reserved id stride, edge
    // requests routed to the source's owning shard over the second channel
    // plane. Otherwise everything ships to the coordinator as replay
    // packets, which read only the frozen round state (keys, not ids).
    // All deltas share one flat packet vector; `stmt` records each
    // delta's exclusive range end.
    let mut derived: Vec<Derived> = Vec::new();
    let mut fresh: Vec<(PtrKey, u32)> = Vec::new();
    if let Some(commit) = &shared.commit {
        let mut interner = StrideInterner {
            commit,
            me: me as u32,
            n: nshards,
            next: first_stride,
            fresh_vars: FxHashMap::default(),
            fresh_fields: FxHashMap::default(),
            fresh: Vec::new(),
        };
        let mut eout: Vec<Vec<EdgeReq>> = vec![Vec::new(); nshards as usize];
        for (rep, delta, end) in &mut stmt {
            commit_fan_out(
                shared,
                shard,
                &mut interner,
                rep.0,
                delta,
                &mut derived,
                &mut eout,
            );
            *end = u32::try_from(derived.len()).expect("packet count fits u32");
        }
        for (d, tx) in etxs.iter().enumerate() {
            tx.send((me, std::mem::take(&mut eout[d])))
                .expect(crate::pool::PEER_HANGUP);
        }
        fresh = interner.fresh;
    } else {
        for (rep, delta, end) in &mut stmt {
            discover_fan_out(shared, rep.0, delta, &mut derived);
            *end = u32::try_from(derived.len()).expect("packet count fits u32");
        }
    }
    drop(etxs);

    // Sub-phase 3: merge. Receiving one packet from every shard (self
    // included) doubles as the round barrier; sorting by source shard
    // makes the merge order — and therefore the newly-queued order —
    // deterministic regardless of thread scheduling.
    let mut packets: Vec<Packet> = (0..nshards)
        .map(|_| rx.recv().expect(crate::pool::PEER_HANGUP))
        .collect();
    packets.sort_unstable_by_key(|&(src, _)| src);
    let mut newly_queued: Vec<PtrId> = Vec::new();
    for (_, mut msgs) in packets {
        for (trep, payload) in msgs.drain(..) {
            debug_assert_eq!(shared.shard_of(trep), me as u32);
            let slot = &mut shard.pending[shared.local_of(trep)];
            let was_empty = slot.is_empty();
            slot.union_with(&payload);
            if was_empty {
                newly_queued.push(PtrId(trep));
            }
        }
        bufs.put(msgs);
    }
    // Sub-phase 4 (commit plane only): edge commit. Receive one edge
    // packet from every shard (the second barrier), sort by source shard
    // for determinism, and commit the edges whose *source representative*
    // this worker owns: dedup against the owned pair sets, grow the owned
    // successor rows, and clone flush payloads for edges whose source
    // already points somewhere. Everything here reads the round-frozen
    // union-find, so commits are order-independent across shards; the
    // coordinator re-checks the logs against the canonicalized id space
    // before counting them.
    let mut edges: Vec<EdgeReq> = Vec::new();
    let mut flushes: Vec<(u32, Arc<PointsToSet>)> = Vec::new();
    if shared.commit.is_some() {
        let mut epackets: Vec<EdgePacket> = (0..nshards)
            .map(|_| erx.recv().expect(crate::pool::PEER_HANGUP))
            .collect();
        epackets.sort_unstable_by_key(|&(src, _)| src);
        // One flush payload per source representative per round, shared
        // across its edges by `Arc` like the sequential flush path.
        let mut flush_cache: FxHashMap<u32, Arc<PointsToSet>> = FxHashMap::default();
        for (_, reqs) in epackets {
            for (src, dst, kind) in reqs {
                if src == dst {
                    continue;
                }
                let csrc = shared.reps.find_ext(src);
                debug_assert_eq!(shared.shard_of(csrc), me as u32);
                if !shard.edge_pairs.entry(csrc).or_default().insert(src, dst) {
                    continue;
                }
                // Pre-round slots resolve through the shared placement;
                // this round's own fresh stride ids live at the rows this
                // worker appended past `base_rows`, in stride order.
                let local = if csrc >= frozen_len {
                    base_rows + ((csrc / nshards) - first_stride) as usize
                } else {
                    shared.local_of(csrc)
                };
                if csrc != shared.reps.find_ext(dst) {
                    // Worker-committed edges are `[Load]`/`[Store]` copies
                    // — never cast-filtered.
                    shard.succ.push_entry(local, dst, None);
                    if !shard.pts[local].is_empty() {
                        let payload = flush_cache
                            .entry(csrc)
                            .or_insert_with(|| Arc::new(shard.pts[local].clone()));
                        flushes.push((dst, Arc::clone(payload)));
                    }
                }
                edges.push((src, dst, kind));
            }
        }
    }
    drop(erx);

    WorkerResult {
        stmt,
        derived,
        newly_queued,
        propagations,
        timed_out,
        fresh,
        edges,
        flushes,
    }
}
