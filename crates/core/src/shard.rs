//! Sharded pointer-slot storage and the parallel propagation workers.
//!
//! The multi-threaded engine partitions pointer slots across `N` shards by
//! SCC representative: slot `i` lives in shard `i % N`, and because every
//! member of a collapsed assign-SCC reads and writes through its
//! representative's slot, a collapsed cycle never straddles shards. Each
//! worker thread owns exactly one [`Shard`] — the points-to sets and the
//! pending-delta accumulators of its representatives — so the hot set
//! unions of a propagation round run without any locking at all.
//!
//! One bulk-synchronous round has two sub-phases per worker:
//!
//! 1. **propagate** — drain the round's batch of `(representative,
//!    incoming delta)` pairs: union each delta into the owned points-to
//!    set, and turn the genuinely new elements into outbox messages for
//!    the successors' owning shards (cast filters applied worker-side);
//! 2. **merge** — receive one outbox from every peer (mpsc channels; the
//!    receive-from-all acts as the phase barrier), sort the packets by
//!    source shard so the merge order is deterministic, and union the
//!    payloads into the owned pending accumulators, recording which
//!    representatives became newly pending.
//!
//! Everything that grows the graph — statement fan-out, call-graph
//! construction, plugin events, SCC re-condensation — happens on the
//! coordinator between rounds (see `solver.rs`), which is what keeps the
//! parallel engine's results deterministic and its projections
//! bit-identical to the sequential engine's.

use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;

use csc_ir::{ClassId, ObjId, Program};

use crate::context::CtxId;
use crate::pts::PointsToSet;
use crate::scc::UnionFind;
use crate::solver::PtrId;

/// One shard of the pointer-slot plane: the points-to sets and pending
/// accumulators of every slot `i` with `i % nshards == shard_index`. Local
/// storage index is `i / nshards`.
#[derive(Default)]
pub(crate) struct Shard {
    /// Points-to sets (live at SCC representatives, like the sequential
    /// engine's flat vector).
    pub(crate) pts: Vec<PointsToSet>,
    /// Batched worklist accumulators, paired 1:1 with `pts`.
    pub(crate) pending: Vec<PointsToSet>,
}

/// The complete sharded slot plane: `pts` and `pending` for every interned
/// pointer, distributed round-robin across shards. With one shard this is
/// the sequential engine's flat storage behind an index indirection that
/// compiles to the identity.
pub(crate) struct ShardedSlots {
    n: u32,
    len: u32,
    pub(crate) shards: Vec<Shard>,
}

impl ShardedSlots {
    /// Creates an empty slot plane with `n` shards (at least one).
    pub(crate) fn new(n: usize) -> Self {
        let n = n.max(1);
        ShardedSlots {
            n: u32::try_from(n).expect("shard count fits u32"),
            len: 0,
            shards: (0..n).map(|_| Shard::default()).collect(),
        }
    }

    /// The shard owning slot `i`.
    #[inline]
    pub(crate) fn shard_of(&self, i: u32) -> usize {
        if self.n == 1 {
            0
        } else {
            (i % self.n) as usize
        }
    }

    #[inline]
    fn loc(&self, i: u32) -> (usize, usize) {
        if self.n == 1 {
            (0, i as usize)
        } else {
            ((i % self.n) as usize, (i / self.n) as usize)
        }
    }

    /// Appends one empty slot (the next dense id) and returns nothing; the
    /// caller assigns ids densely, so slot `len` goes to shard `len % n`.
    pub(crate) fn push(&mut self) {
        let (s, l) = self.loc(self.len);
        let shard = &mut self.shards[s];
        debug_assert_eq!(shard.pts.len(), l);
        shard.pts.push(PointsToSet::new());
        shard.pending.push(PointsToSet::new());
        self.len += 1;
    }

    /// Shared points-to set of slot `i`.
    #[inline]
    pub(crate) fn pts(&self, i: u32) -> &PointsToSet {
        let (s, l) = self.loc(i);
        &self.shards[s].pts[l]
    }

    /// Mutable points-to set of slot `i`.
    #[inline]
    pub(crate) fn pts_mut(&mut self, i: u32) -> &mut PointsToSet {
        let (s, l) = self.loc(i);
        &mut self.shards[s].pts[l]
    }

    /// Takes slot `i`'s points-to set out, leaving it empty (take/restore
    /// pattern for split borrows).
    #[inline]
    pub(crate) fn take_pts(&mut self, i: u32) -> PointsToSet {
        std::mem::take(self.pts_mut(i))
    }

    /// Restores a taken points-to set.
    #[inline]
    pub(crate) fn put_pts(&mut self, i: u32, set: PointsToSet) {
        *self.pts_mut(i) = set;
    }

    /// Mutable pending accumulator of slot `i`.
    #[inline]
    pub(crate) fn pending_mut(&mut self, i: u32) -> &mut PointsToSet {
        let (s, l) = self.loc(i);
        &mut self.shards[s].pending[l]
    }

    /// Takes slot `i`'s pending accumulator out, leaving it empty.
    #[inline]
    pub(crate) fn take_pending(&mut self, i: u32) -> PointsToSet {
        std::mem::take(self.pending_mut(i))
    }

    /// Restores a taken pending accumulator.
    #[inline]
    pub(crate) fn put_pending(&mut self, i: u32, set: PointsToSet) {
        *self.pending_mut(i) = set;
    }
}

/// Restricts a delta to the objects assignable to `class` (`checkcast`
/// semantics). Free function so the parallel workers can filter without a
/// `SolverState` borrow.
pub(crate) fn filter_pts(
    objs: &PointsToSet,
    class: ClassId,
    obj_keys: &[(CtxId, ObjId)],
    program: &Program,
) -> PointsToSet {
    objs.iter()
        .filter(|&o| {
            let (_, obj) = obj_keys[o as usize];
            program.is_subclass(program.obj(obj).class(), class)
        })
        .collect()
}

/// An outbox packet: `(source shard, messages)` where each message is a
/// `(destination representative, delta)` pair. Deltas travel by `Arc` —
/// an unfiltered delta fanning out to many successors ships one shared
/// set plus per-edge pointer clones, mirroring the sequential engine's
/// propagate-by-reference invariant; only the receiving shard's pending
/// union copies elements.
pub(crate) type Packet = (usize, Vec<(u32, Arc<PointsToSet>)>);

/// What one worker hands back to the coordinator after a round.
pub(crate) struct WorkerResult {
    /// `(representative, committed delta)` pairs, in batch order — the
    /// coordinator replays statement/event fan-out from these. By the
    /// time the coordinator runs, all outbox clones of a delta have been
    /// merged and dropped, so the `Arc` is unique again and unwraps
    /// without a copy.
    pub(crate) stmt: Vec<(PtrId, Arc<PointsToSet>)>,
    /// Representatives whose pending accumulator went from empty to
    /// non-empty during the merge sub-phase, in deterministic order.
    pub(crate) newly_queued: Vec<PtrId>,
    /// Worklist propagations with a non-empty delta.
    pub(crate) propagations: u64,
    /// Whether this worker hit the wall-clock deadline mid-batch (its
    /// remaining deltas were restored to pending; the coordinator aborts
    /// the solve).
    pub(crate) timed_out: bool,
}

/// Runs one worker's share of a bulk-synchronous propagation round. See
/// the module docs for the two sub-phases. `txs[d]` reaches shard `d`'s
/// worker (including `me`); `rx` is this worker's inbox. `deadline` is
/// the wall-clock budget's cutoff: checked every 1024 propagations like
/// the sequential engine, so a single oversized round cannot overshoot
/// the budget unboundedly — on expiry the worker restores its remaining
/// deltas to pending and still completes the channel protocol (both
/// sub-phases must run or peers would deadlock).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_worker(
    me: usize,
    nshards: u32,
    shard: &mut Shard,
    batch: Vec<(u32, PointsToSet)>,
    txs: Vec<Sender<Packet>>,
    rx: Receiver<Packet>,
    succ: &[Vec<(PtrId, Option<ClassId>)>],
    reps: &UnionFind,
    obj_keys: &[(CtxId, ObjId)],
    program: &Program,
    deadline: Option<std::time::Instant>,
) -> WorkerResult {
    // Sub-phase 1: propagate. Union incoming deltas into the owned
    // points-to sets; route genuinely new elements to the successors'
    // owning shards.
    let mut out: Vec<Vec<(u32, Arc<PointsToSet>)>> = vec![Vec::new(); nshards as usize];
    let mut stmt: Vec<(PtrId, Arc<PointsToSet>)> = Vec::with_capacity(batch.len());
    let mut propagations = 0u64;
    let mut timed_out = false;
    for (rep, incoming) in batch {
        debug_assert_eq!(rep % nshards, me as u32);
        let local = (rep / nshards) as usize;
        if timed_out {
            // Restore the drained delta so the partial state stays
            // consistent (the coordinator aborts after this round).
            shard.pending[local].union_with(&incoming);
            continue;
        }
        let Some(delta) = shard.pts[local].union_delta(&incoming) else {
            continue;
        };
        propagations += 1;
        if let Some(d) = deadline {
            if propagations.is_multiple_of(1024) && std::time::Instant::now() > d {
                timed_out = true;
            }
        }
        let delta = Arc::new(delta);
        for &(t, filter) in &succ[rep as usize] {
            // Stored targets may be stale (merged away); canonicalize like
            // the sequential engine's enqueue does. A target canonicalizing
            // back onto the source is a no-op (the delta is already in the
            // shared set).
            let trep = reps.find(t.0);
            if trep == rep {
                continue;
            }
            let payload = match filter {
                None => Arc::clone(&delta),
                Some(class) => Arc::new(filter_pts(&delta, class, obj_keys, program)),
            };
            if !payload.is_empty() {
                out[(trep % nshards) as usize].push((trep, payload));
            }
        }
        stmt.push((PtrId(rep), delta));
    }
    for (d, tx) in txs.iter().enumerate() {
        tx.send((me, std::mem::take(&mut out[d])))
            .expect("peer worker hung up");
    }
    drop(txs);

    // Sub-phase 2: merge. Receiving one packet from every shard (self
    // included) doubles as the round barrier; sorting by source shard
    // makes the merge order — and therefore the newly-queued order —
    // deterministic regardless of thread scheduling.
    let mut packets: Vec<Packet> = (0..nshards)
        .map(|_| rx.recv().expect("peer worker hung up"))
        .collect();
    packets.sort_unstable_by_key(|&(src, _)| src);
    let mut newly_queued: Vec<PtrId> = Vec::new();
    for (_, msgs) in packets {
        for (trep, payload) in msgs {
            debug_assert_eq!(trep % nshards, me as u32);
            let slot = &mut shard.pending[(trep / nshards) as usize];
            let was_empty = slot.is_empty();
            slot.union_with(&payload);
            if was_empty {
                newly_queued.push(PtrId(trep));
            }
        }
    }
    WorkerResult {
        stmt,
        newly_queued,
        propagations,
        timed_out,
    }
}
