//! Sharded pointer-slot storage, the sharded statement index, and the
//! parallel propagation workers.
//!
//! The multi-threaded engine partitions pointer slots across `N` shards by
//! SCC representative: slot `i` lives in shard `i % N`, and because every
//! member of a collapsed assign-SCC reads and writes through its
//! representative's slot, a collapsed cycle never straddles shards. Each
//! worker thread owns exactly one [`Shard`] — the points-to sets and the
//! pending-delta accumulators of its representatives — so the hot set
//! unions of a propagation round run without any locking at all.
//!
//! One bulk-synchronous round has three sub-phases per worker:
//!
//! 1. **propagate** — drain the round's batch of `(representative,
//!    incoming delta)` pairs: union each delta into the owned points-to
//!    set, and turn the genuinely new elements into outbox messages for
//!    the successors' owning shards (cast filters applied worker-side);
//! 2. **fan-out discovery** — replay statement fan-out for the committed
//!    deltas *worker-side*: walk the [`StmtIndex`] for every member of the
//!    delta's SCC and emit [`Derived`] packets — derived `[Load]`/`[Store]`
//!    edges (per new object), `[Call]` resolutions (virtual dispatch runs
//!    on the worker), and plugin reactions discovered through
//!    [`Plugin::discover`] against the per-shard obligation tables. The
//!    packets describe mutations by *key*, not by id, so this sub-phase
//!    touches no shared mutable state; it runs after the outboxes are sent,
//!    overlapping peers' propagate sub-phase;
//! 3. **merge** — receive one outbox from every peer (mpsc channels; the
//!    receive-from-all acts as the phase barrier), sort the packets by
//!    source shard so the merge order is deterministic, and union the
//!    payloads into the owned pending accumulators, recording which
//!    representatives became newly pending.
//!
//! The coordinator then *commits* the derived packets in deterministic
//! (shard, batch, packet) order: interning, PFG/call-graph mutation,
//! context selection, and plugin table updates all stay single-threaded,
//! which is what keeps runs deterministic per thread count and projections
//! bit-identical to the sequential engine's (see `solver.rs`).
//!
//! The statement index itself ([`StmtIndex`]) is built once per solve and
//! is read-only thereafter; it is "sharded by access" — each worker reads
//! the rows of the pointers it owns — rather than physically partitioned,
//! because its rows are keyed by variable while shard ownership is keyed
//! by (representative) pointer: one variable's row serves every context
//! qualification of that variable, and those pointers hash to different
//! shards.

use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;

use csc_ir::{CallKind, CallSiteId, ClassId, LoadId, ObjId, Program, StoreId};

use crate::context::CtxId;
use crate::fx::FxHashMap;
use crate::pts::PointsToSet;
use crate::scc::UnionFind;
use crate::solver::{DiscoverCtx, Plugin, PtrId, PtrKey, Reaction};

/// One shard of the pointer-slot plane: the points-to sets and pending
/// accumulators of every slot `i` with `i % nshards == shard_index`. Local
/// storage index is `i / nshards`.
#[derive(Default)]
pub(crate) struct Shard {
    /// Points-to sets (live at SCC representatives, like the sequential
    /// engine's flat vector).
    pub(crate) pts: Vec<PointsToSet>,
    /// Batched worklist accumulators, paired 1:1 with `pts`.
    pub(crate) pending: Vec<PointsToSet>,
}

/// The complete sharded slot plane: `pts` and `pending` for every interned
/// pointer, distributed round-robin across shards. With one shard this is
/// the sequential engine's flat storage behind an index indirection that
/// compiles to the identity.
pub(crate) struct ShardedSlots {
    n: u32,
    len: u32,
    pub(crate) shards: Vec<Shard>,
}

impl ShardedSlots {
    /// Creates an empty slot plane with `n` shards (at least one).
    pub(crate) fn new(n: usize) -> Self {
        let n = n.max(1);
        ShardedSlots {
            n: u32::try_from(n).expect("shard count fits u32"),
            len: 0,
            shards: (0..n).map(|_| Shard::default()).collect(),
        }
    }

    /// The shard owning slot `i`.
    #[inline]
    pub(crate) fn shard_of(&self, i: u32) -> usize {
        if self.n == 1 {
            0
        } else {
            (i % self.n) as usize
        }
    }

    #[inline]
    fn loc(&self, i: u32) -> (usize, usize) {
        if self.n == 1 {
            (0, i as usize)
        } else {
            ((i % self.n) as usize, (i / self.n) as usize)
        }
    }

    /// Appends one empty slot (the next dense id) and returns nothing; the
    /// caller assigns ids densely, so slot `len` goes to shard `len % n`.
    pub(crate) fn push(&mut self) {
        let (s, l) = self.loc(self.len);
        let shard = &mut self.shards[s];
        debug_assert_eq!(shard.pts.len(), l);
        shard.pts.push(PointsToSet::new());
        shard.pending.push(PointsToSet::new());
        self.len += 1;
    }

    /// Shared points-to set of slot `i`.
    #[inline]
    pub(crate) fn pts(&self, i: u32) -> &PointsToSet {
        let (s, l) = self.loc(i);
        &self.shards[s].pts[l]
    }

    /// Mutable points-to set of slot `i`.
    #[inline]
    pub(crate) fn pts_mut(&mut self, i: u32) -> &mut PointsToSet {
        let (s, l) = self.loc(i);
        &mut self.shards[s].pts[l]
    }

    /// Takes slot `i`'s points-to set out, leaving it empty (take/restore
    /// pattern for split borrows).
    #[inline]
    pub(crate) fn take_pts(&mut self, i: u32) -> PointsToSet {
        std::mem::take(self.pts_mut(i))
    }

    /// Restores a taken points-to set.
    #[inline]
    pub(crate) fn put_pts(&mut self, i: u32, set: PointsToSet) {
        *self.pts_mut(i) = set;
    }

    /// Mutable pending accumulator of slot `i`.
    #[inline]
    pub(crate) fn pending_mut(&mut self, i: u32) -> &mut PointsToSet {
        let (s, l) = self.loc(i);
        &mut self.shards[s].pending[l]
    }

    /// Takes slot `i`'s pending accumulator out, leaving it empty.
    #[inline]
    pub(crate) fn take_pending(&mut self, i: u32) -> PointsToSet {
        std::mem::take(self.pending_mut(i))
    }

    /// Restores a taken pending accumulator.
    #[inline]
    pub(crate) fn put_pending(&mut self, i: u32, set: PointsToSet) {
        *self.pending_mut(i) = set;
    }
}

/// Per-variable static usage index (which loads/stores/calls have the
/// variable as base/receiver), built once per solve and read-only
/// thereafter — the workers' fan-out discovery and the sequential engine's
/// statement processing both walk it.
#[derive(Default)]
pub(crate) struct StmtIndex {
    pub(crate) loads_with_base: Vec<Vec<LoadId>>,
    pub(crate) stores_with_base: Vec<Vec<StoreId>>,
    pub(crate) calls_with_recv: Vec<Vec<CallSiteId>>,
}

impl StmtIndex {
    pub(crate) fn build(program: &Program) -> Self {
        let n = program.vars().len();
        let mut idx = StmtIndex {
            loads_with_base: vec![Vec::new(); n],
            stores_with_base: vec![Vec::new(); n],
            calls_with_recv: vec![Vec::new(); n],
        };
        for (i, l) in program.loads().iter().enumerate() {
            idx.loads_with_base[l.base().index()].push(LoadId::from_usize(i));
        }
        for (i, s) in program.stores().iter().enumerate() {
            idx.stores_with_base[s.base().index()].push(StoreId::from_usize(i));
        }
        for (i, c) in program.call_sites().iter().enumerate() {
            if let Some(r) = c.recv() {
                idx.calls_with_recv[r.index()].push(CallSiteId::from_usize(i));
            }
        }
        idx
    }
}

/// Restricts a delta to the objects assignable to `class` (`checkcast`
/// semantics). Free function so the parallel workers can filter without a
/// `SolverState` borrow.
pub(crate) fn filter_pts(
    objs: &PointsToSet,
    class: ClassId,
    obj_keys: &[(CtxId, ObjId)],
    program: &Program,
) -> PointsToSet {
    objs.iter()
        .filter(|&o| {
            let (_, obj) = obj_keys[o as usize];
            program.is_subclass(program.obj(obj).class(), class)
        })
        .collect()
}

/// A work item a worker *derived* from a committed delta and hands to the
/// coordinator for commit. Mutation descriptions travel by key (context ×
/// site, object × field), never by pointer id the coordinator has not
/// interned yet — interning order therefore stays a coordinator-only
/// concern and runs in deterministic packet order.
///
/// Load/store fan-out is one packet per *site activation* — the committed
/// delta rides along with the packet group, and the coordinator iterates
/// it during commit exactly like the sequential `process_var_stmts` loop,
/// so a delta of `k` objects hitting `s` sites costs `s` packets, not
/// `s × k`. Call resolutions are per (site, object) because that is where
/// the worker does real work: virtual dispatch runs worker-side.
pub(crate) enum Derived {
    /// `[Load]` fan-out at one load site under one context: the edges
    /// `obj.field -> (ctx, lhs)` for every `obj` in the delta.
    LoadFan { site: LoadId, ctx: CtxId },
    /// `[Store]` fan-out at one store site under one context (cut stores
    /// were filtered worker-side through [`Plugin::is_store_cut`]): the
    /// edges `(ctx, rhs) -> obj.field` for every `obj` in the delta.
    StoreFan { site: StoreId, ctx: CtxId },
    /// A `[Call]`-rule resolution: virtual dispatch already performed on
    /// the worker; the coordinator selects the callee context and commits
    /// the call edge.
    Call {
        caller_ctx: CtxId,
        site: CallSiteId,
        recv: u32,
        callee: csc_ir::MethodId,
    },
    /// A plugin reaction discovered worker-side ([`Plugin::discover`]);
    /// committed through [`Plugin::apply`]. Boxed so the rare reaction
    /// variant (it can carry a whole points-to set) does not inflate every
    /// packet in the stream.
    React(Box<Reaction>),
}

/// Everything the workers share for the duration of one parallel round.
///
/// The coordinator *moves* these pieces out of the solver state into one
/// `Arc` per round, the workers read them, and the coordinator reclaims
/// them (`Arc::try_unwrap`) after the round barrier — safe Rust's way of
/// expressing "frozen during the round, mutable between rounds" without
/// cloning anything but an `Arc` header per round.
pub(crate) struct RoundShared<'p, P> {
    pub(crate) succ: Vec<Vec<(PtrId, Option<ClassId>)>>,
    pub(crate) reps: UnionFind,
    pub(crate) members: FxHashMap<u32, Vec<u32>>,
    pub(crate) ptr_keys: Vec<PtrKey>,
    pub(crate) obj_keys: Vec<(CtxId, ObjId)>,
    pub(crate) stmts: StmtIndex,
    pub(crate) program: &'p Program,
    pub(crate) plugin: P,
    /// Whether [`Plugin::discover`] runs worker-side this round.
    pub(crate) discovery: bool,
    pub(crate) nshards: u32,
    pub(crate) deadline: Option<std::time::Instant>,
}

/// An outbox packet: `(source shard, messages)` where each message is a
/// `(destination representative, delta)` pair. Deltas travel by `Arc` —
/// an unfiltered delta fanning out to many successors ships one shared
/// set plus per-edge pointer clones, mirroring the sequential engine's
/// propagate-by-reference invariant; only the receiving shard's pending
/// union copies elements.
pub(crate) type Packet = (usize, Vec<(u32, Arc<PointsToSet>)>);

/// One round's input to a pooled worker (see `crate::pool`).
pub(crate) struct RoundJob<'p, P> {
    pub(crate) shared: Arc<RoundShared<'p, P>>,
    pub(crate) shard: Shard,
    pub(crate) batch: Vec<(u32, PointsToSet)>,
    /// `txs[d]` reaches shard `d`'s worker (including self).
    pub(crate) txs: Vec<Sender<Packet>>,
    /// This worker's inbox for the round.
    pub(crate) rx: Receiver<Packet>,
}

/// One committed delta with its worker-derived packets:
/// `(representative, committed delta, derived work)`.
pub(crate) type DeltaCommit = (PtrId, Arc<PointsToSet>, u32);

/// What one worker hands back to the coordinator after a round.
pub(crate) struct WorkerResult {
    /// Committed deltas in batch order — the coordinator commits the
    /// derived packets and (for plugins without worker-side discovery)
    /// replays `NewPointsTo` events from these. The third element is the
    /// *exclusive end* of the delta's packet range in `derived` (ranges
    /// are contiguous and start where the previous delta's ended), so the
    /// whole round's packet stream lives in one allocation per worker. By
    /// the time the coordinator runs, all outbox clones of a delta have
    /// been merged and dropped, so the `Arc` is unique again and unwraps
    /// without a copy.
    pub(crate) stmt: Vec<DeltaCommit>,
    /// The round's derived packets, all deltas concatenated in batch
    /// order; `stmt` carries the range boundaries.
    pub(crate) derived: Vec<Derived>,
    /// Representatives whose pending accumulator went from empty to
    /// non-empty during the merge sub-phase, in deterministic order.
    pub(crate) newly_queued: Vec<PtrId>,
    /// Worklist propagations with a non-empty delta.
    pub(crate) propagations: u64,
    /// Whether this worker hit the wall-clock deadline mid-batch (its
    /// remaining deltas were restored to pending; the coordinator aborts
    /// the solve).
    pub(crate) timed_out: bool,
}

/// Replays statement fan-out and plugin discovery for one committed delta,
/// worker-side. Mirrors the member enumeration of the sequential engine's
/// `fan_out`: every member of a collapsed SCC sees the shared set's growth
/// exactly as it would uncollapsed. Emits packets in the deterministic
/// order the coordinator commits them: per member (ascending,
/// representative first) — loads, stores, calls, then plugin reactions.
fn discover_fan_out<P: Plugin>(
    shared: &RoundShared<'_, P>,
    rep: u32,
    delta: &PointsToSet,
    out: &mut Vec<Derived>,
) {
    let group: &[u32] = shared
        .members
        .get(&rep)
        .map(Vec::as_slice)
        .unwrap_or(std::slice::from_ref(&rep));
    let dctx = DiscoverCtx {
        obj_keys: &shared.obj_keys,
        program: shared.program,
    };
    for &m in group {
        if let PtrKey::Var(ctx, v) = shared.ptr_keys[m as usize] {
            // [Load]
            for &l in &shared.stmts.loads_with_base[v.index()] {
                out.push(Derived::LoadFan { site: l, ctx });
            }
            // [Store] (cut-aware; `is_store_cut` is a pure predicate, so
            // evaluating it worker-side matches the sequential engine).
            for &s in &shared.stmts.stores_with_base[v.index()] {
                if shared.plugin.is_store_cut(s) {
                    continue;
                }
                out.push(Derived::StoreFan { site: s, ctx });
            }
            // [Call]: virtual dispatch resolves worker-side; spurious
            // receivers (no concrete impl) are dropped here, like the
            // sequential engine's early return.
            for &site in &shared.stmts.calls_with_recv[v.index()] {
                let cs = shared.program.call_site(site);
                for recv in delta.iter() {
                    let (_, obj) = shared.obj_keys[recv as usize];
                    let callee = match cs.kind() {
                        CallKind::Virtual => {
                            let class = shared.program.obj(obj).class();
                            match shared.program.dispatch(class, cs.target()) {
                                Some(m) => m,
                                None => continue,
                            }
                        }
                        CallKind::Special => cs.target(),
                        CallKind::Static => unreachable!("static calls have no receiver"),
                    };
                    out.push(Derived::Call {
                        caller_ctx: ctx,
                        site,
                        recv,
                        callee,
                    });
                }
            }
        }
        if shared.discovery {
            let mut reactions = Vec::new();
            shared
                .plugin
                .discover(PtrId(m), delta, &dctx, &mut reactions);
            out.extend(reactions.into_iter().map(|r| Derived::React(Box::new(r))));
        }
    }
}

/// Runs one worker's share of a bulk-synchronous propagation round. See
/// the module docs for the three sub-phases. `shared.deadline` is the
/// wall-clock budget's cutoff: checked every 1024 propagations like the
/// sequential engine, so a single oversized round cannot overshoot the
/// budget unboundedly — on expiry the worker restores its remaining
/// deltas to pending and still completes the channel protocol (all
/// sub-phases must run or peers would deadlock).
pub(crate) fn run_worker<P: Plugin>(
    me: usize,
    shared: &RoundShared<'_, P>,
    shard: &mut Shard,
    batch: Vec<(u32, PointsToSet)>,
    txs: Vec<Sender<Packet>>,
    rx: Receiver<Packet>,
) -> WorkerResult {
    let nshards = shared.nshards;
    // Sub-phase 1: propagate. Union incoming deltas into the owned
    // points-to sets; route genuinely new elements to the successors'
    // owning shards.
    let mut out: Vec<Vec<(u32, Arc<PointsToSet>)>> = vec![Vec::new(); nshards as usize];
    let mut stmt: Vec<DeltaCommit> = Vec::with_capacity(batch.len());
    let mut propagations = 0u64;
    let mut timed_out = false;
    for (rep, incoming) in batch {
        debug_assert_eq!(rep % nshards, me as u32);
        let local = (rep / nshards) as usize;
        if timed_out {
            // Restore the drained delta so the partial state stays
            // consistent (the coordinator aborts after this round).
            shard.pending[local].union_with(&incoming);
            continue;
        }
        let Some(delta) = shard.pts[local].union_delta(&incoming) else {
            continue;
        };
        propagations += 1;
        if let Some(d) = shared.deadline {
            if propagations.is_multiple_of(1024) && std::time::Instant::now() > d {
                timed_out = true;
            }
        }
        let delta = Arc::new(delta);
        for &(t, filter) in &shared.succ[rep as usize] {
            // Stored targets may be stale (merged away); canonicalize like
            // the sequential engine's enqueue does. A target canonicalizing
            // back onto the source is a no-op (the delta is already in the
            // shared set).
            let trep = shared.reps.find(t.0);
            if trep == rep {
                continue;
            }
            let payload = match filter {
                None => Arc::clone(&delta),
                Some(class) => {
                    Arc::new(filter_pts(&delta, class, &shared.obj_keys, shared.program))
                }
            };
            if !payload.is_empty() {
                out[(trep % nshards) as usize].push((trep, payload));
            }
        }
        stmt.push((PtrId(rep), delta, 0));
    }
    for (d, tx) in txs.iter().enumerate() {
        tx.send((me, std::mem::take(&mut out[d])))
            .expect("peer worker hung up");
    }
    drop(txs);

    // Sub-phase 2: fan-out discovery, overlapping the peers' propagate
    // sub-phase (the outboxes are already on the wire). Reads only the
    // frozen round state — packets carry keys, not interned ids. All
    // deltas share one flat packet vector; `stmt` records each delta's
    // exclusive range end.
    let mut derived: Vec<Derived> = Vec::new();
    for (rep, delta, end) in &mut stmt {
        discover_fan_out(shared, rep.0, delta, &mut derived);
        *end = u32::try_from(derived.len()).expect("packet count fits u32");
    }

    // Sub-phase 3: merge. Receiving one packet from every shard (self
    // included) doubles as the round barrier; sorting by source shard
    // makes the merge order — and therefore the newly-queued order —
    // deterministic regardless of thread scheduling.
    let mut packets: Vec<Packet> = (0..nshards)
        .map(|_| rx.recv().expect("peer worker hung up"))
        .collect();
    packets.sort_unstable_by_key(|&(src, _)| src);
    let mut newly_queued: Vec<PtrId> = Vec::new();
    for (_, msgs) in packets {
        for (trep, payload) in msgs {
            debug_assert_eq!(trep % nshards, me as u32);
            let slot = &mut shard.pending[(trep / nshards) as usize];
            let was_empty = slot.is_empty();
            slot.union_with(&payload);
            if was_empty {
                newly_queued.push(PtrId(trep));
            }
        }
    }
    WorkerResult {
        stmt,
        derived,
        newly_queued,
        propagations,
        timed_out,
    }
}
