//! Arena-backed PFG edge storage.
//!
//! The pointer flow graph's per-source successor lists used to be one
//! `Vec<(PtrId, Option<ClassId>)>` per slot — three pointers of `Vec`
//! header per row (most rows hold zero or one edge), 12-byte entries
//! padded to 16 by the `Option<ClassId>` niche-less layout, and one heap
//! allocation per row that ever grows. At freecol/2obj scale (~3.7M edges
//! over ~84k pointers) that is death by a hundred thousand small
//! allocations.
//!
//! [`SuccTable`] replaces it with a *segment arena*: all rows of a shard
//! share one `Vec<SuccSeg>` of fixed six-entry segments chained by index,
//! plus a 12-byte [`RowMeta`] per row. Appends go to the tail segment;
//! rows cleared by SCC collapse return their segments to a freelist, so
//! condensation churn recycles instead of reallocating. Cast filters are
//! stored as a `u32` code (`0` = none, `class + 1` otherwise), which packs
//! an entry into 8 bytes.
//!
//! Segments are `Copy`: the solver's hot propagation loop walks a row by
//! *copying* one 56-byte segment at a time out of the arena (a
//! [`SuccSeg`] fetch), releasing the arena borrow before it mutates
//! pending accumulators — the arena equivalent of the old take/put split
//! borrow, without moving any storage.
//!
//! [`PairSet`] compacts the per-representative edge-dedup sets the same
//! way: a `(src, dst)` pair packs into one `u64`, small groups stay a
//! sorted inline vector, and large groups use an open-addressing table at
//! ~half the bytes-per-entry of the previous hashset of tuples.

use csc_ir::ClassId;

/// Null segment index (end of a row's chain / empty freelist).
pub(crate) const NONE: u32 = u32::MAX;

/// Entries per segment. Six 8-byte entries plus the header make a segment
/// 56 bytes — one row of edges per cache line and a bit, and small enough
/// that single-edge rows (the common case) waste at most five entries.
pub(crate) const SEG_ENTRIES: usize = 6;

/// Encodes an optional cast filter into the per-entry `u32` code.
#[inline]
pub(crate) fn encode_filter(f: Option<ClassId>) -> u32 {
    match f {
        None => 0,
        Some(c) => c.raw() + 1,
    }
}

/// Decodes a per-entry filter code.
#[inline]
pub(crate) fn decode_filter(code: u32) -> Option<ClassId> {
    if code == 0 {
        None
    } else {
        Some(ClassId::new(code - 1))
    }
}

/// One fixed-width successor segment: up to [`SEG_ENTRIES`] edges as
/// `(dst, filter code)` pairs, chained by arena index.
#[derive(Copy, Clone)]
pub(crate) struct SuccSeg {
    pub(crate) entries: [(u32, u32); SEG_ENTRIES],
    pub(crate) len: u32,
    pub(crate) next: u32,
}

impl SuccSeg {
    #[inline]
    fn empty() -> Self {
        SuccSeg {
            entries: [(0, 0); SEG_ENTRIES],
            len: 0,
            next: NONE,
        }
    }
}

/// Per-row chain bookkeeping: first and last segment plus the edge count.
#[derive(Copy, Clone)]
struct RowMeta {
    head: u32,
    tail: u32,
    len: u32,
}

impl RowMeta {
    #[inline]
    fn empty() -> Self {
        RowMeta {
            head: NONE,
            tail: NONE,
            len: 0,
        }
    }
}

/// A shard's successor-edge arena: one segment pool shared by all rows.
pub(crate) struct SuccTable {
    rows: Vec<RowMeta>,
    segs: Vec<SuccSeg>,
    /// Head of the freed-segment chain (linked through `SuccSeg::next`).
    free: u32,
}

impl Default for SuccTable {
    fn default() -> Self {
        SuccTable {
            rows: Vec::new(),
            segs: Vec::new(),
            free: NONE,
        }
    }
}

impl SuccTable {
    /// Appends one empty row (parallel to the shard's `pts` rows).
    #[inline]
    pub(crate) fn push_row(&mut self) {
        self.rows.push(RowMeta::empty());
    }

    /// Grows the table to `target` rows with empty rows.
    pub(crate) fn resize_rows(&mut self, target: usize) {
        debug_assert!(self.rows.len() <= target);
        self.rows.resize(target, RowMeta::empty());
    }

    /// Number of rows.
    #[inline]
    pub(crate) fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of edges in `row`.
    #[inline]
    pub(crate) fn row_len(&self, row: usize) -> usize {
        self.rows[row].len as usize
    }

    /// First segment index of `row`'s chain ([`NONE`] when empty).
    #[inline]
    pub(crate) fn head(&self, row: usize) -> u32 {
        self.rows[row].head
    }

    /// Fetches segment `idx` *by value* — the cursor step that lets a
    /// caller walk a row while mutating everything else in the shard.
    #[inline]
    pub(crate) fn seg(&self, idx: u32) -> SuccSeg {
        self.segs[idx as usize]
    }

    fn alloc_seg(&mut self) -> u32 {
        if self.free != NONE {
            let idx = self.free;
            self.free = self.segs[idx as usize].next;
            self.segs[idx as usize] = SuccSeg::empty();
            return idx;
        }
        let idx = u32::try_from(self.segs.len()).expect("segment count fits u32");
        assert!(idx != NONE, "segment arena full");
        self.segs.push(SuccSeg::empty());
        idx
    }

    /// Appends one edge to `row`.
    pub(crate) fn push_entry(&mut self, row: usize, dst: u32, filter: Option<ClassId>) {
        let code = encode_filter(filter);
        let meta = self.rows[row];
        let tail = if meta.tail == NONE || self.segs[meta.tail as usize].len as usize == SEG_ENTRIES
        {
            let idx = self.alloc_seg();
            if meta.tail == NONE {
                self.rows[row].head = idx;
            } else {
                self.segs[meta.tail as usize].next = idx;
            }
            self.rows[row].tail = idx;
            idx
        } else {
            meta.tail
        };
        let seg = &mut self.segs[tail as usize];
        seg.entries[seg.len as usize] = (dst, code);
        seg.len += 1;
        self.rows[row].len += 1;
    }

    /// Iterates `row`'s edges in insertion order (borrowing the table —
    /// use the [`head`](Self::head)/[`seg`](Self::seg) cursor when the
    /// shard must be mutated mid-walk).
    pub(crate) fn iter_row(&self, row: usize) -> SuccIter<'_> {
        SuccIter {
            table: self,
            seg: self.rows[row].head,
            at: 0,
        }
    }

    /// Clears `row`, returning its segments to the freelist.
    pub(crate) fn clear_row(&mut self, row: usize) {
        let meta = std::mem::replace(&mut self.rows[row], RowMeta::empty());
        if meta.head == NONE {
            return;
        }
        // Splice the whole chain onto the freelist in one step.
        self.segs[meta.tail as usize].next = self.free;
        self.free = meta.head;
    }

    /// Removes and returns `row`'s edges as a vector (the cold-path form
    /// of take/put: SCC collapse and reconciliation rebuild rows wholesale).
    pub(crate) fn take_row(&mut self, row: usize) -> Vec<(PtrIdRaw, Option<ClassId>)> {
        let out: Vec<_> = self.iter_row(row).collect();
        self.clear_row(row);
        out
    }

    /// Appends a batch of edges to `row`.
    pub(crate) fn extend_row<I: IntoIterator<Item = (u32, Option<ClassId>)>>(
        &mut self,
        row: usize,
        edges: I,
    ) {
        for (d, f) in edges {
            self.push_entry(row, d, f);
        }
    }

    /// Heap bytes owned by the arena (segments + row metadata), counting
    /// freelisted segments too — they are real resident memory.
    pub(crate) fn bytes(&self) -> u64 {
        (self.rows.capacity() * std::mem::size_of::<RowMeta>()
            + self.segs.capacity() * std::mem::size_of::<SuccSeg>()) as u64
    }
}

/// Raw `u32` destination id (the caller wraps it into `PtrId`).
pub(crate) type PtrIdRaw = u32;

/// Borrowing iterator over one row's edges.
pub(crate) struct SuccIter<'a> {
    table: &'a SuccTable,
    seg: u32,
    at: usize,
}

impl Iterator for SuccIter<'_> {
    type Item = (u32, Option<ClassId>);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        while self.seg != NONE {
            let seg = &self.table.segs[self.seg as usize];
            if self.at < seg.len as usize {
                let (d, code) = seg.entries[self.at];
                self.at += 1;
                return Some((d, decode_filter(code)));
            }
            self.seg = seg.next;
            self.at = 0;
        }
        None
    }
}

/// Packs a `(src, dst)` edge-endpoint pair into one `u64`.
#[inline]
fn pack(src: u32, dst: u32) -> u64 {
    (u64::from(src) << 32) | u64::from(dst)
}

#[inline]
fn unpack(p: u64) -> (u32, u32) {
    ((p >> 32) as u32, p as u32)
}

/// Open-addressing sentinels. Both decode to `src == u32::MAX`, which is
/// the solver's reserved `ABSENT` id and never a real edge endpoint.
const EMPTY: u64 = u64::MAX;
const TOMB: u64 = u64::MAX - 1;

/// Pairs kept in the sorted inline vector before promoting to a table.
const PAIR_SMALL_MAX: usize = 16;

#[inline]
fn pair_hash(p: u64) -> usize {
    // fx-style multiply then fold the high half down: the multiply mixes
    // low bits upward, so the high half is the well-mixed one.
    let h = p.wrapping_mul(0x517c_c1b7_2722_0a95);
    (h ^ (h >> 32)) as usize
}

/// A set of PFG edge pairs `(src, dst)`, packed to 8 bytes per entry:
/// sorted inline vector while small, linear-probe open addressing past
/// [`PAIR_SMALL_MAX`].
#[derive(Clone)]
pub(crate) enum PairSet {
    /// Sorted packed pairs.
    Small(Vec<u64>),
    /// Open-addressing table (power-of-two capacity).
    Table {
        slots: Vec<u64>,
        len: u32,
        /// Occupied-or-tombstoned slots (drives the growth trigger).
        used: u32,
    },
}

impl Default for PairSet {
    fn default() -> Self {
        PairSet::Small(Vec::new())
    }
}

impl PairSet {
    /// Number of pairs.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        match self {
            PairSet::Small(v) => v.len(),
            PairSet::Table { len, .. } => *len as usize,
        }
    }

    /// Whether the set is empty.
    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test.
    pub(crate) fn contains(&self, src: u32, dst: u32) -> bool {
        let p = pack(src, dst);
        match self {
            PairSet::Small(v) => v.binary_search(&p).is_ok(),
            PairSet::Table { slots, .. } => {
                let mask = slots.len() - 1;
                let mut i = pair_hash(p) & mask;
                loop {
                    match slots[i] {
                        EMPTY => return false,
                        x if x == p => return true,
                        _ => i = (i + 1) & mask,
                    }
                }
            }
        }
    }

    /// Inserts a pair; returns whether it was new.
    pub(crate) fn insert(&mut self, src: u32, dst: u32) -> bool {
        debug_assert!(src != u32::MAX, "ABSENT is not a valid edge source");
        let p = pack(src, dst);
        match self {
            PairSet::Small(v) => match v.binary_search(&p) {
                Ok(_) => false,
                Err(i) => {
                    v.insert(i, p);
                    if v.len() > PAIR_SMALL_MAX {
                        *self = Self::table_from(v);
                    }
                    true
                }
            },
            PairSet::Table { slots, len, used } => {
                // Grow at 7/8 load (counting tombstones — probe chains run
                // through them).
                if (*used as usize + 1) * 8 >= slots.len() * 7 {
                    let pairs: Vec<u64> = slots
                        .iter()
                        .copied()
                        .filter(|&x| x != EMPTY && x != TOMB)
                        .collect();
                    let cap = (pairs.len().max(8) * 2).next_power_of_two();
                    let mut fresh = vec![EMPTY; cap];
                    for &x in &pairs {
                        Self::raw_insert(&mut fresh, x);
                    }
                    *slots = fresh;
                    *used = *len;
                }
                let mask = slots.len() - 1;
                let mut i = pair_hash(p) & mask;
                let mut slot = None;
                loop {
                    match slots[i] {
                        EMPTY => {
                            let at = slot.unwrap_or(i);
                            if slots[at] == EMPTY {
                                *used += 1;
                            }
                            slots[at] = p;
                            *len += 1;
                            return true;
                        }
                        TOMB => {
                            // Remember the first tombstone, keep probing in
                            // case the pair exists further along.
                            if slot.is_none() {
                                slot = Some(i);
                            }
                            i = (i + 1) & mask;
                        }
                        x if x == p => return false,
                        _ => i = (i + 1) & mask,
                    }
                }
            }
        }
    }

    /// Removes a pair; returns whether it was present.
    pub(crate) fn remove(&mut self, src: u32, dst: u32) -> bool {
        let p = pack(src, dst);
        match self {
            PairSet::Small(v) => match v.binary_search(&p) {
                Ok(i) => {
                    v.remove(i);
                    true
                }
                Err(_) => false,
            },
            PairSet::Table { slots, len, .. } => {
                let mask = slots.len() - 1;
                let mut i = pair_hash(p) & mask;
                loop {
                    match slots[i] {
                        EMPTY => return false,
                        x if x == p => {
                            slots[i] = TOMB;
                            *len -= 1;
                            return true;
                        }
                        _ => i = (i + 1) & mask,
                    }
                }
            }
        }
    }

    /// Iterates the pairs (deterministic for a given insertion history:
    /// sorted while small, slot order once tabled).
    pub(crate) fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        let (small, table): (&[u64], &[u64]) = match self {
            PairSet::Small(v) => (v.as_slice(), &[]),
            PairSet::Table { slots, .. } => (&[], slots.as_slice()),
        };
        small
            .iter()
            .copied()
            .chain(table.iter().copied().filter(|&x| x != EMPTY && x != TOMB))
            .map(unpack)
    }

    /// Merges another set in (condensation epochs fold merged members'
    /// groups onto the surviving representative).
    pub(crate) fn merge(&mut self, other: &PairSet) {
        for (s, d) in other.iter() {
            self.insert(s, d);
        }
    }

    /// Heap bytes owned.
    pub(crate) fn bytes(&self) -> u64 {
        (match self {
            PairSet::Small(v) => v.capacity(),
            PairSet::Table { slots, .. } => slots.capacity(),
        } * std::mem::size_of::<u64>()) as u64
    }

    fn table_from(v: &[u64]) -> PairSet {
        let cap = (v.len().max(8) * 2).next_power_of_two();
        let mut slots = vec![EMPTY; cap];
        for &p in v {
            Self::raw_insert(&mut slots, p);
        }
        PairSet::Table {
            slots,
            len: v.len() as u32,
            used: v.len() as u32,
        }
    }

    /// Inserts into a fresh (tombstone-free) slot array.
    fn raw_insert(slots: &mut [u64], p: u64) {
        let mask = slots.len() - 1;
        let mut i = pair_hash(p) & mask;
        while slots[i] != EMPTY {
            i = (i + 1) & mask;
        }
        slots[i] = p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn succ_table_push_iter_clear() {
        let mut t = SuccTable::default();
        t.push_row();
        t.push_row();
        for d in 0..20u32 {
            t.push_entry(
                0,
                d,
                if d % 3 == 0 {
                    Some(ClassId::new(d))
                } else {
                    None
                },
            );
        }
        t.push_entry(1, 99, None);
        assert_eq!(t.row_len(0), 20);
        let got: Vec<_> = t.iter_row(0).collect();
        assert_eq!(got.len(), 20);
        for (i, &(d, f)) in got.iter().enumerate() {
            assert_eq!(d, i as u32);
            assert_eq!(
                f,
                if d % 3 == 0 {
                    Some(ClassId::new(d))
                } else {
                    None
                }
            );
        }
        assert_eq!(t.iter_row(1).collect::<Vec<_>>(), vec![(99, None)]);
        // Clearing recycles segments: the next pushes reuse them.
        let segs_before = t.segs.len();
        t.clear_row(0);
        assert_eq!(t.row_len(0), 0);
        assert_eq!(t.iter_row(0).count(), 0);
        for d in 0..20u32 {
            t.push_entry(0, d + 100, None);
        }
        assert_eq!(t.segs.len(), segs_before, "freelist reuse, no new segments");
        assert_eq!(t.iter_row(0).count(), 20);
        assert_eq!(t.iter_row(1).collect::<Vec<_>>(), vec![(99, None)]);
    }

    #[test]
    fn succ_table_take_row_roundtrip() {
        let mut t = SuccTable::default();
        t.push_row();
        t.extend_row(0, (0..10u32).map(|d| (d, None)));
        let taken = t.take_row(0);
        assert_eq!(taken.len(), 10);
        assert_eq!(t.row_len(0), 0);
        t.extend_row(0, taken.iter().map(|&(d, f)| (d, f)));
        assert_eq!(t.iter_row(0).count(), 10);
    }

    #[test]
    fn pair_set_insert_contains_remove() {
        let mut s = PairSet::default();
        // Through the small tier and past promotion.
        for i in 0..200u32 {
            assert!(s.insert(i * 7, i * 13 + 1));
            assert!(!s.insert(i * 7, i * 13 + 1));
        }
        assert_eq!(s.len(), 200);
        assert!(matches!(s, PairSet::Table { .. }));
        for i in 0..200u32 {
            assert!(s.contains(i * 7, i * 13 + 1));
        }
        assert!(!s.contains(3, 3));
        assert!(s.remove(7, 14));
        assert!(!s.remove(7, 14));
        assert!(!s.contains(7, 14));
        assert_eq!(s.len(), 199);
        // Reinsert over the tombstone.
        assert!(s.insert(7, 14));
        assert_eq!(s.len(), 200);
        let mut collected: Vec<_> = s.iter().collect();
        collected.sort_unstable();
        let mut expect: Vec<_> = (0..200u32).map(|i| (i * 7, i * 13 + 1)).collect();
        expect.sort_unstable();
        assert_eq!(collected, expect);
    }

    #[test]
    fn pair_set_tombstone_churn_keeps_probing_sound() {
        let mut s = PairSet::default();
        for round in 0..50u32 {
            for i in 0..40u32 {
                s.insert(round, i);
            }
            for i in 0..40u32 {
                assert!(s.remove(round, i));
            }
        }
        assert!(s.is_empty());
        assert!(s.insert(1, 1));
        assert!(s.contains(1, 1));
    }

    #[test]
    fn pair_set_merge() {
        let mut a = PairSet::default();
        a.insert(1, 2);
        let mut b = PairSet::default();
        for i in 0..30u32 {
            b.insert(i, i);
        }
        a.merge(&b);
        assert_eq!(a.len(), 31);
        assert!(a.contains(1, 2));
        assert!(a.contains(29, 29));
    }
}
