//! The Cut-Shortcut analysis (the paper's contribution), as a solver plugin.
//!
//! Cut-Shortcut runs the ordinary context-insensitive solver, but on a
//! transformed pointer flow graph PFG′ (§3.1): edges that would carry merged
//! object flows out of a method are never added (*cut*, via the
//! `cutStores` / `cutReturns` checks wired into the solver's `[Store]` /
//! `[Return]` rules), and sound replacement edges are added from precise
//! source pointers to target pointers (*shortcut*, the `E_SC` set of rule
//! `[Shortcut]`).
//!
//! The three program patterns are implemented exactly as formalized:
//!
//! * **field access** (Fig. 8 + Fig. 9): static `cutStores` and the
//!   `tempStores` / `tempLoads` propagation along call chains
//!   (`[CutStore]`, `[PropStore]`, `[ShortcutStore]`, `[CutPropLoad]`,
//!   `[ShortcutLoad]`), plus the `[RelayEdge]` soundness rule driven by the
//!   `returnLoadEdges` classification;
//! * **container access** (Fig. 10): `Entrances` / `Exits` / `Transfers`
//!   API annotations, the pointer-host map `ptH` with its own propagation
//!   (`[ColHost]`, `[MapHost]`, `[TransferHost]`, `[PropHost]`), and
//!   source/target matching (`[HostSource]`, `[HostTarget]`,
//!   `[ShortcutContainer]`, `[CutContainer]`);
//! * **local flow** (Fig. 11): the static `↣` relation (`[Param2Var]`,
//!   `[Param2VarRec]`) with `[CutLFlow]` / `[ShortcutLFlow]`.
//!
//! Each pattern can be disabled independently ([`CscConfig`]) to reproduce
//! the paper's §5.1 ablation.

mod container;
mod prep;

pub use container::{Category, ContainerSpec, ResolvedContainerSpec};
pub use prep::{cha_targets, StaticInfo};

use std::collections::{HashSet, VecDeque};

use csc_ir::{CallSiteId, DeltaEffects, FieldId, MethodId, Program, StoreId, VarId};

use crate::context::CtxId;
use crate::fx::{FxHashMap, FxHashSet};
use crate::pts::PointsToSet;
use crate::solver::{
    CsObjId, DiscoverCtx, EdgeKind, Event, Plugin, PtrId, PtrKey, Reaction, ShortcutKind,
    SolverState,
};
use crate::table::ShardedTable;

/// Which patterns are enabled. The default enables all three, matching the
/// paper's Tai-e configuration; `CscConfig::doop()` disables the load half
/// of the field pattern, matching the paper's Doop configuration (Datalog
/// cannot express `[CutPropLoad]`'s negation-in-recursion).
#[derive(Clone, Debug)]
pub struct CscConfig {
    /// Field access pattern, store half (Fig. 8).
    pub field_store: bool,
    /// Field access pattern, load half (Fig. 9).
    pub field_load: bool,
    /// Container access pattern (Fig. 10).
    pub container: bool,
    /// Local flow pattern (Fig. 11).
    pub local_flow: bool,
    /// Container API annotations.
    pub container_spec: ContainerSpec,
}

impl Default for CscConfig {
    fn default() -> Self {
        CscConfig {
            field_store: true,
            field_load: true,
            container: true,
            local_flow: true,
            container_spec: ContainerSpec::mini_jdk(),
        }
    }
}

impl CscConfig {
    /// All patterns (the paper's Tai-e configuration).
    pub fn all() -> Self {
        Self::default()
    }

    /// The paper's Doop configuration: load handling omitted.
    pub fn doop() -> Self {
        CscConfig {
            field_load: false,
            ..Self::default()
        }
    }

    /// Only the field access pattern (ablation experiment).
    pub fn only_field() -> Self {
        CscConfig {
            container: false,
            local_flow: false,
            ..Self::default()
        }
    }

    /// Only the container access pattern (ablation experiment).
    pub fn only_container() -> Self {
        CscConfig {
            field_store: false,
            field_load: false,
            local_flow: false,
            ..Self::default()
        }
    }

    /// Only the local flow pattern (ablation experiment).
    pub fn only_local_flow() -> Self {
        CscConfig {
            field_store: false,
            field_load: false,
            container: false,
            ..Self::default()
        }
    }
}

/// Counters and the involved-method set (Table 3 reports the latter).
#[derive(Clone, Debug, Default)]
pub struct CscStats {
    /// Store sites in `cutStores`.
    pub cut_store_sites: usize,
    /// Methods whose returns are cut (any pattern).
    pub cut_return_methods: usize,
    /// Shortcut edges added, per kind.
    pub shortcut_store_edges: u64,
    /// `[ShortcutLoad]` edges.
    pub shortcut_load_edges: u64,
    /// `[RelayEdge]` edges.
    pub relay_edges: u64,
    /// `[ShortcutContainer]` edges.
    pub container_edges: u64,
    /// `[ShortcutLFlow]` edges.
    pub local_flow_edges: u64,
    /// Temp stores derived.
    pub temp_stores: usize,
    /// Temp loads derived.
    pub temp_loads: usize,
    /// Methods involved in cut or shortcut edges (Table 3).
    pub involved_methods: HashSet<MethodId>,
}

impl CscStats {
    /// Total shortcut edges across kinds.
    pub fn shortcut_edges(&self) -> u64 {
        self.shortcut_store_edges
            + self.shortcut_load_edges
            + self.relay_edges
            + self.container_edges
            + self.local_flow_edges
    }
}

/// The methods whose PFG edges the enabled Cut-Shortcut patterns touch
/// (statically over-approximated): cut-store owners, load-cut methods,
/// local-flow methods, and container entrance/exit/transfer methods.
///
/// The §3.4 hybrid combination applies contexts only to methods *outside*
/// this set.
pub fn pattern_methods(program: &Program, cfg: &CscConfig) -> HashSet<MethodId> {
    let info = StaticInfo::compute(program);
    let spec = cfg.container_spec.resolve(program);
    let mut out = HashSet::new();
    if cfg.field_store {
        out.extend(info.prop_store_seeds.keys().copied());
    }
    if cfg.field_load {
        out.extend(info.cut_load_returns.iter().copied());
    }
    if cfg.local_flow {
        out.extend(info.lflow.keys().copied());
    }
    if cfg.container {
        out.extend(spec.entrances.keys().copied());
        out.extend(spec.exits.keys().copied());
        out.extend(spec.transfers.iter().copied());
    }
    out
}

/// Whether a Cut-Shortcut plugin built for `base` would rebase onto
/// `patched` (the [`crate::FallbackReason::CscObligations`] gate of the
/// incremental driver), recomputed from scratch on both programs. This is
/// the pure oracle behind [`CutShortcut`]'s [`Plugin::rebase`]
/// implementation, exposed so the incremental proptest harness can assert
/// the fallback fires exactly when this predicate is false.
pub fn rebase_compatible(
    base: &Program,
    patched: &Program,
    fx: &DeltaEffects,
    cfg: &CscConfig,
) -> bool {
    if !fx.additions_only() {
        return false;
    }
    let old_info = StaticInfo::compute(base);
    let new_info = StaticInfo::compute(patched);
    let old_spec = cfg.container_spec.resolve(base);
    let new_spec = cfg.container_spec.resolve(patched);
    old_info.compatible_extension(&new_info, &fx.base)
        && old_spec.compatible_extension(&new_spec, &fx.base)
}

/// A host watch attached to the receiver pointer of a container call site.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Watch {
    /// `[HostSource]`: the argument is a Source for each host of the recv.
    Source { arg: PtrId, cat: Category },
    /// `[HostTarget]`: the lhs is a Target for each host of the recv.
    Target { lhs: PtrId, cat: Category },
    /// `[TransferHost]`: hosts transfer from receiver to lhs.
    Transfer { lhs: PtrId },
}

/// Propagatable temp-store seeds `(k_base, field, k_from)` per unit.
type PropStores = FxHashMap<(MethodId, CtxId), Vec<(u32, FieldId, u32)>>;

/// The Cut-Shortcut solver plugin.
///
/// Run it with the context-insensitive selector to get the paper's
/// Cut-Shortcut analysis (no contexts anywhere, §3.1). The plugin is also
/// *context-compatible*: all of its bookkeeping is keyed by
/// context-qualified pointers and (method, context) analysis units, so it
/// composes with a [`crate::SelectiveSelector`] — the combination the paper
/// sketches as future work in §3.4 (contexts only for methods the patterns
/// do not cover), exposed as [`crate::Analysis::CscHybrid`].
#[derive(Debug)]
pub struct CutShortcut {
    cfg: CscConfig,
    info: StaticInfo,
    spec: ResolvedContainerSpec,
    /// §4.2.2 recursion: methods cut dynamically by `[CutPropLoad]`, beyond
    /// the static closure.
    dyn_cut_load: HashSet<MethodId>,
    /// Propagatable temp stores registered per callee *analysis unit*
    /// (method × context): `(k_base, f, k_from)`.
    prop_stores: PropStores,
    /// Propagatable temp loads registered per callee unit: `(k_base, f)`.
    prop_loads: FxHashMap<(MethodId, CtxId), Vec<(u32, FieldId)>>,
    temp_stores_seen: FxHashSet<(CtxId, VarId, FieldId, VarId)>,
    temp_loads_seen: FxHashSet<(CtxId, VarId, VarId, FieldId)>,
    /// Grounded `[ShortcutStore]` obligations: on growth of `pt(base)`, add
    /// `from → o.f`. Sharded by base pointer so the parallel workers'
    /// discovery reads stay shard-local ([`ShardedTable`]).
    store_obls: ShardedTable<PtrId, Vec<(FieldId, PtrId)>>,
    /// `[ShortcutLoad]` obligations: on growth of `pt(base)`, add `o.f → to`.
    /// Sharded like `store_obls`.
    load_obls: ShardedTable<PtrId, Vec<(FieldId, PtrId)>>,
    /// All PFG edges into each method-unit's return variable, with the
    /// `returnLoadEdges` classification.
    ret_in: FxHashMap<(MethodId, CtxId), Vec<(PtrId, bool)>>,
    /// `[RelayEdge]` targets (call-site lhs pointers) per cut method unit.
    relay_targets: FxHashMap<(MethodId, CtxId), Vec<PtrId>>,
    /// The pointer-host map `ptH`, sharded by pointer; worker-discovered
    /// host deltas ([`Reaction::Hosts`]) are committed into it through
    /// keyed accesses, in deterministic packet order, on the coordinator.
    pth: ShardedTable<PtrId, PointsToSet>,
    host_succ: FxHashMap<PtrId, Vec<PtrId>>,
    host_edges: FxHashSet<(PtrId, PtrId)>,
    host_worklist: VecDeque<(PtrId, PointsToSet)>,
    /// Container watches per receiver pointer, sharded like the obligation
    /// tables.
    watches: ShardedTable<PtrId, Vec<Watch>>,
    host_sources: FxHashMap<(u32, Category), Vec<PtrId>>,
    host_targets: FxHashMap<(u32, Category), Vec<PtrId>>,
    source_seen: FxHashSet<(u32, Category, PtrId)>,
    target_seen: FxHashSet<(u32, Category, PtrId)>,
    /// Counters.
    pub stats: CscStats,
}

impl CutShortcut {
    /// Prepares Cut-Shortcut for a program: computes the static information
    /// (`cutStores`, level-0 + CHA-closed load cuts, the `↣` relation) and
    /// resolves the container spec.
    pub fn new(program: &Program, cfg: CscConfig) -> Self {
        let info = StaticInfo::compute(program);
        let spec = cfg.container_spec.resolve(program);
        let mut stats = CscStats::default();
        if cfg.field_store {
            stats.cut_store_sites = info.cut_stores.iter().filter(|&&c| c).count();
            for (i, st) in program.stores().iter().enumerate() {
                if info.cut_stores[i] {
                    stats.involved_methods.insert(st.method());
                }
            }
        }
        let mut cut_ret: HashSet<MethodId> = HashSet::new();
        if cfg.field_load {
            cut_ret.extend(info.cut_load_returns.iter().copied());
        }
        if cfg.container {
            cut_ret.extend(spec.exits.keys().copied());
        }
        if cfg.local_flow {
            cut_ret.extend(info.lflow.keys().copied());
        }
        stats.cut_return_methods = cut_ret.len();
        stats.involved_methods.extend(cut_ret);

        let mut plugin = CutShortcut {
            cfg,
            info,
            spec,
            dyn_cut_load: HashSet::new(),
            prop_stores: FxHashMap::default(),
            prop_loads: FxHashMap::default(),
            temp_stores_seen: FxHashSet::default(),
            temp_loads_seen: FxHashSet::default(),
            store_obls: ShardedTable::new(1),
            load_obls: ShardedTable::new(1),
            ret_in: FxHashMap::default(),
            relay_targets: FxHashMap::default(),
            pth: ShardedTable::new(1),
            host_succ: FxHashMap::default(),
            host_edges: FxHashSet::default(),
            host_worklist: VecDeque::new(),
            watches: ShardedTable::new(1),
            host_sources: FxHashMap::default(),
            host_targets: FxHashMap::default(),
            source_seen: FxHashSet::default(),
            target_seen: FxHashSet::default(),
            stats: CscStats::default(),
        };
        std::mem::swap(&mut plugin.stats, &mut stats);
        // Seed propagatable temp stores/loads from the static cut sites
        // ([CutStore] and level-0 [CutPropLoad]).
        // Static seeds ([CutStore] / level-0 [CutPropLoad]) are registered
        // lazily per analysis unit (method × context) in `on_call_edge`,
        // which keeps the plugin correct under selective context
        // sensitivity (the paper's §3.4 combination idea).
        plugin
    }

    /// The final statistics (valid after solving).
    pub fn stats(&self) -> &CscStats {
        &self.stats
    }

    fn is_load_cut(&self, m: MethodId) -> bool {
        self.info.cut_load_returns.contains(&m) || self.dyn_cut_load.contains(&m)
    }

    fn record_involved(&mut self, st: &SolverState<'_>, p: PtrId) {
        if let PtrKey::Var(_, v) = st.ptr_key(p) {
            self.stats
                .involved_methods
                .insert(st.program.var(v).method());
        }
    }

    fn add_shortcut(
        &mut self,
        st: &mut SolverState<'_>,
        src: PtrId,
        dst: PtrId,
        kind: ShortcutKind,
    ) {
        if src == dst || st.has_edge(src, dst) {
            return;
        }
        match kind {
            ShortcutKind::Store => self.stats.shortcut_store_edges += 1,
            ShortcutKind::Load => self.stats.shortcut_load_edges += 1,
            ShortcutKind::Relay => self.stats.relay_edges += 1,
            ShortcutKind::Container => self.stats.container_edges += 1,
            ShortcutKind::LocalFlow => self.stats.local_flow_edges += 1,
        }
        self.record_involved(st, src);
        self.record_involved(st, dst);
        st.add_edge(src, dst, EdgeKind::Shortcut(kind));
    }

    // ---- field access pattern: stores (Fig. 8) ---------------------------

    /// Derives a temp store at a call site ([CutStore] conclusion /
    /// [PropStore]); classifies it as propagatable or grounded.
    fn derive_temp_store(
        &mut self,
        st: &mut SolverState<'_>,
        site: CallSiteId,
        caller_ctx: CtxId,
        k_base: u32,
        f: FieldId,
        k_from: u32,
    ) {
        let cs = st.program.call_site(site);
        let (Some(b), Some(fr)) = (cs.arg_k(k_base as usize), cs.arg_k(k_from as usize)) else {
            return;
        };
        if !self.temp_stores_seen.insert((caller_ctx, b, f, fr)) {
            return;
        }
        self.stats.temp_stores += 1;
        let caller = cs.method();
        let (kb2, kf2) = (
            self.info.unredefined_param_k[b.index()],
            self.info.unredefined_param_k[fr.index()],
        );
        if let (Some(kb2), Some(kf2)) = (kb2, kf2) {
            // [PropStore]: both ends come from the caller's arguments —
            // propagate one level up, for existing and future call edges
            // onto this caller unit.
            let entry = self.prop_stores.entry((caller, caller_ctx)).or_default();
            if !entry.contains(&(kb2, f, kf2)) {
                entry.push((kb2, f, kf2));
                let edges: Vec<(CtxId, CallSiteId)> = st
                    .call_edges_of(caller)
                    .iter()
                    .filter(|&&(_, _, cctx)| cctx == caller_ctx)
                    .map(|&(up_ctx, s, _)| (up_ctx, s))
                    .collect();
                for (up_ctx, s2) in edges {
                    self.derive_temp_store(st, s2, up_ctx, kb2, f, kf2);
                }
            }
        } else {
            // [ShortcutStore]: grounded — connect `from` to `o.f` for every
            // object the base may point to, now and in the future.
            let base_ptr = st.var_ptr(caller_ctx, b);
            let from_ptr = st.var_ptr(caller_ctx, fr);
            self.store_obls.or_default(base_ptr).push((f, from_ptr));
            let current: Vec<u32> = st.pt(base_ptr).iter().collect();
            for o in current {
                let t = st.field_ptr(CsObjId(o), f);
                self.add_shortcut(st, from_ptr, t, ShortcutKind::Store);
            }
        }
    }

    // ---- field access pattern: loads (Fig. 9) ----------------------------

    /// Derives a temp load at a call site ([CutPropLoad] conclusion); always
    /// registers the [ShortcutLoad] obligation, and recurses when the lhs is
    /// the caller's return variable fed by an unredefined parameter.
    fn derive_temp_load(
        &mut self,
        st: &mut SolverState<'_>,
        site: CallSiteId,
        caller_ctx: CtxId,
        lhs: VarId,
        k_base: u32,
        f: FieldId,
    ) {
        let cs = st.program.call_site(site);
        let Some(b) = cs.arg_k(k_base as usize) else {
            return;
        };
        if !self.temp_loads_seen.insert((caller_ctx, lhs, b, f)) {
            return;
        }
        self.stats.temp_loads += 1;
        // [ShortcutLoad]
        let base_ptr = st.var_ptr(caller_ctx, b);
        let to_ptr = st.var_ptr(caller_ctx, lhs);
        self.load_obls.or_default(base_ptr).push((f, to_ptr));
        let current: Vec<u32> = st.pt(base_ptr).iter().collect();
        for o in current {
            let s = st.field_ptr(CsObjId(o), f);
            self.add_shortcut(st, s, to_ptr, ShortcutKind::Load);
        }
        // [CutPropLoad] recursion up the call chain.
        let caller = cs.method();
        let caller_m = st.program.method(caller);
        if caller_m.ret_var() == Some(lhs) {
            if let Some(k2) = self.info.unredefined_param_k[b.index()] {
                self.mark_load_cut(st, caller);
                let entry = self.prop_loads.entry((caller, caller_ctx)).or_default();
                if !entry.contains(&(k2, f)) {
                    entry.push((k2, f));
                    let edges: Vec<(CtxId, CallSiteId)> = st
                        .call_edges_of(caller)
                        .iter()
                        .filter(|&&(_, _, cctx)| cctx == caller_ctx)
                        .map(|&(up_ctx, s, _)| (up_ctx, s))
                        .collect();
                    for (up_ctx, s2) in edges {
                        if let Some(r) = st.program.call_site(s2).lhs() {
                            self.derive_temp_load(st, s2, up_ctx, r, k2, f);
                        }
                    }
                }
            }
        }
    }

    /// Adds `m` to the load-pattern `cutReturns` (dynamically) and replays
    /// relay registration for its existing call edges.
    fn mark_load_cut(&mut self, st: &mut SolverState<'_>, m: MethodId) {
        if self.info.cut_load_returns.contains(&m) || !self.dyn_cut_load.insert(m) {
            return;
        }
        self.stats.cut_return_methods += 1;
        self.stats.involved_methods.insert(m);
        let edges: Vec<(CtxId, CallSiteId, CtxId)> = st.call_edges_of(m).to_vec();
        for (caller_ctx, site, callee_ctx) in edges {
            self.register_relay_target(st, site, caller_ctx, callee_ctx, m);
        }
    }

    /// `[RelayEdge]`: registers the call-site lhs as a relay target of the
    /// cut method and replays all non-`returnLoadEdges` inflows seen so far.
    fn register_relay_target(
        &mut self,
        st: &mut SolverState<'_>,
        site: CallSiteId,
        caller_ctx: CtxId,
        callee_ctx: CtxId,
        callee: MethodId,
    ) {
        let Some(lhs) = st.program.call_site(site).lhs() else {
            return;
        };
        let t = st.var_ptr(caller_ctx, lhs);
        let targets = self.relay_targets.entry((callee, callee_ctx)).or_default();
        if targets.contains(&t) {
            return;
        }
        targets.push(t);
        let replay: Vec<PtrId> = self
            .ret_in
            .get(&(callee, callee_ctx))
            .map(|v| {
                v.iter()
                    .filter(|&&(_, rle)| !rle)
                    .map(|&(s, _)| s)
                    .collect()
            })
            .unwrap_or_default();
        for s in replay {
            self.add_shortcut(st, s, t, ShortcutKind::Relay);
        }
    }

    // ---- container access pattern (Fig. 10) -------------------------------

    fn register_watch(&mut self, st: &mut SolverState<'_>, ctx: CtxId, recv: VarId, w: Watch) {
        let recv_ptr = st.var_ptr(ctx, recv);
        let list = self.watches.or_default(recv_ptr);
        if list.contains(&w) {
            return;
        }
        list.push(w);
        // Replay hosts already known for the receiver.
        if let Some(hosts) = self.pth.get(&recv_ptr) {
            let hosts: Vec<u32> = hosts.iter().collect();
            for h in hosts {
                self.fire_watch(st, w, h);
            }
        }
    }

    fn fire_watch(&mut self, st: &mut SolverState<'_>, w: Watch, h: u32) {
        match w {
            Watch::Source { arg, cat } => {
                // [HostSource] + [ShortcutContainer]
                if self.source_seen.insert((h, cat, arg)) {
                    self.host_sources.entry((h, cat)).or_default().push(arg);
                    let targets = self
                        .host_targets
                        .get(&(h, cat))
                        .cloned()
                        .unwrap_or_default();
                    for t in targets {
                        self.add_shortcut(st, arg, t, ShortcutKind::Container);
                    }
                }
            }
            Watch::Target { lhs, cat } => {
                // [HostTarget] + [ShortcutContainer]
                if self.target_seen.insert((h, cat, lhs)) {
                    self.host_targets.entry((h, cat)).or_default().push(lhs);
                    let sources = self
                        .host_sources
                        .get(&(h, cat))
                        .cloned()
                        .unwrap_or_default();
                    for s in sources {
                        self.add_shortcut(st, s, lhs, ShortcutKind::Container);
                    }
                }
            }
            Watch::Transfer { lhs } => {
                // [TransferHost]
                self.queue_hosts(lhs, PointsToSet::singleton(h));
            }
        }
    }

    fn queue_hosts(&mut self, ptr: PtrId, hosts: PointsToSet) {
        if !hosts.is_empty() {
            self.host_worklist.push_back((ptr, hosts));
        }
    }

    /// Drains the `ptH` worklist: commits host deltas, fires watches, and
    /// propagates along the host graph (`[PropHost]`).
    fn drain_hosts(&mut self, st: &mut SolverState<'_>) {
        while let Some((ptr, hosts)) = self.host_worklist.pop_front() {
            let entry = self.pth.or_default(ptr);
            let Some(delta) = entry.union_delta(&hosts) else {
                continue;
            };
            if let Some(watches) = self.watches.get(&ptr).cloned() {
                for w in watches {
                    for h in delta.iter() {
                        self.fire_watch(st, w, h);
                    }
                }
            }
            if let Some(succ) = self.host_succ.get(&ptr).cloned() {
                for t in succ {
                    self.host_worklist.push_back((t, delta.clone()));
                }
            }
        }
    }

    fn host_add_edge(&mut self, src: PtrId, dst: PtrId) {
        if src == dst || !self.host_edges.insert((src, dst)) {
            return;
        }
        self.host_succ.entry(src).or_default().push(dst);
        if let Some(hosts) = self.pth.get(&src) {
            let hosts = hosts.clone();
            self.queue_hosts(dst, hosts);
        }
    }

    // ---- event dispatch ----------------------------------------------------

    fn on_call_edge(
        &mut self,
        st: &mut SolverState<'_>,
        caller_ctx: CtxId,
        site: CallSiteId,
        callee_ctx: CtxId,
        callee: MethodId,
    ) {
        let cs = st.program.call_site(site);
        let (lhs, recv) = (cs.lhs(), cs.recv());

        // [ShortcutLFlow]
        if self.cfg.local_flow {
            if let (Some(ks), Some(lhs)) = (self.info.lflow.get(&callee).cloned(), lhs) {
                let t = st.var_ptr(caller_ctx, lhs);
                for k in ks {
                    if let Some(arg) = st.program.call_site(site).arg_k(k as usize) {
                        let s = st.var_ptr(caller_ctx, arg);
                        self.add_shortcut(st, s, t, ShortcutKind::LocalFlow);
                    }
                }
            }
        }

        // Field store propagation: static seeds of the callee plus any
        // propagatable temp stores registered for this callee unit.
        if self.cfg.field_store {
            let mut seeds: Vec<(u32, FieldId, u32)> = self
                .info
                .prop_store_seeds
                .get(&callee)
                .cloned()
                .unwrap_or_default();
            if let Some(extra) = self.prop_stores.get(&(callee, callee_ctx)) {
                seeds.extend(extra.iter().copied());
            }
            for (kb, f, kf) in seeds {
                self.derive_temp_store(st, site, caller_ctx, kb, f, kf);
            }
        }

        // Field load propagation + relay registration.
        if self.cfg.field_load {
            if let Some(lhs) = lhs {
                let mut seeds: Vec<(u32, FieldId)> = self
                    .info
                    .prop_load_seeds
                    .get(&callee)
                    .cloned()
                    .unwrap_or_default();
                if let Some(extra) = self.prop_loads.get(&(callee, callee_ctx)) {
                    seeds.extend(extra.iter().copied());
                }
                for (k, f) in seeds {
                    self.derive_temp_load(st, site, caller_ctx, lhs, k, f);
                }
                if self.is_load_cut(callee) {
                    self.register_relay_target(st, site, caller_ctx, callee_ctx, callee);
                }
            }
        }

        // Container roles.
        if self.cfg.container {
            if let Some(recv) = recv {
                if let Some(roles) = self.spec.entrances.get(&callee).cloned() {
                    for (k, cat) in roles {
                        if let Some(arg) = st.program.call_site(site).arg_k(k) {
                            let arg_ptr = st.var_ptr(caller_ctx, arg);
                            self.register_watch(
                                st,
                                caller_ctx,
                                recv,
                                Watch::Source { arg: arg_ptr, cat },
                            );
                        }
                    }
                }
                if let Some(&cat) = self.spec.exits.get(&callee) {
                    if let Some(lhs) = lhs {
                        let lhs_ptr = st.var_ptr(caller_ctx, lhs);
                        self.register_watch(
                            st,
                            caller_ctx,
                            recv,
                            Watch::Target { lhs: lhs_ptr, cat },
                        );
                    }
                }
                if self.spec.transfers.contains(&callee) {
                    if let Some(lhs) = lhs {
                        let lhs_ptr = st.var_ptr(caller_ctx, lhs);
                        self.register_watch(st, caller_ctx, recv, Watch::Transfer { lhs: lhs_ptr });
                    }
                }
            }
            self.drain_hosts(st);
        }
    }

    fn on_points_to(&mut self, st: &mut SolverState<'_>, ptr: PtrId, delta: &PointsToSet) {
        // The sequential event path shares the discover/apply split with
        // the parallel engine: read the obligation tables into reactions,
        // then commit them — one code path to trust, two schedules to run
        // it on.
        let mut reactions = Vec::new();
        Plugin::discover(self, ptr, delta, &st.discover_ctx(), &mut reactions);
        for r in reactions {
            self.apply(st, delta, r);
        }
    }

    fn on_edge(&mut self, st: &mut SolverState<'_>, src: PtrId, dst: PtrId, kind: EdgeKind) {
        // returnLoadEdges bookkeeping + [RelayEdge].
        if self.cfg.field_load {
            if let PtrKey::Var(ctx, v) = st.ptr_key(dst) {
                if let Some(&m) = self.info.ret_var_owner.get(&v) {
                    let is_rle = match kind {
                        EdgeKind::Load(l) => self.info.is_qualifying_ret_load(l),
                        EdgeKind::Shortcut(ShortcutKind::Load) => true,
                        _ => false,
                    };
                    self.ret_in.entry((m, ctx)).or_default().push((src, is_rle));
                    if !is_rle && self.is_load_cut(m) {
                        let targets = self
                            .relay_targets
                            .get(&(m, ctx))
                            .cloned()
                            .unwrap_or_default();
                        for t in targets {
                            self.add_shortcut(st, src, t, ShortcutKind::Relay);
                        }
                    }
                }
            }
        }
        // [PropHost] — all PFG edges except return edges of Transfer
        // methods participate in host propagation.
        if self.cfg.container {
            let excluded = matches!(kind, EdgeKind::Return(m) if self.spec.transfers.contains(&m));
            if !excluded {
                self.host_add_edge(src, dst);
                self.drain_hosts(st);
            }
        }
    }
}

impl Plugin for CutShortcut {
    fn init(&mut self, st: &mut SolverState<'_>) {
        // Size the obligation tables to the worker count so worker-side
        // discovery reads stay shard-local on the parallel engine (one
        // shard — a plain map — when sequential).
        let n = st.threads();
        self.store_obls.set_shards(n);
        self.load_obls.set_shards(n);
        self.watches.set_shards(n);
        self.pth.set_shards(n);
    }

    fn wants_events(&self) -> bool {
        true
    }

    fn handle(&mut self, st: &mut SolverState<'_>, ev: Event) {
        match ev {
            Event::NewCallEdge {
                caller_ctx,
                site,
                callee_ctx,
                callee,
            } => self.on_call_edge(st, caller_ctx, site, callee_ctx, callee),
            Event::NewPointsTo { ptr, delta } => self.on_points_to(st, ptr, &delta),
            Event::NewEdge { src, dst, kind } => self.on_edge(st, src, dst, kind),
            Event::NewReachable { .. } => {}
        }
    }

    /// Cut-Shortcut survives a delta exactly when it is additions-only and
    /// the freshly computed static tables agree with the old ones on the
    /// base entity domain (removals would invalidate derived shortcut
    /// edges and registered obligations; a changed pattern classification
    /// on a base entity means existing call edges were processed against
    /// the wrong tables). On success the *dynamic* state (obligations,
    /// temp-prop registrations, host maps) carries over and the fresh
    /// tables are swapped in — the old ones would index out of bounds on
    /// appended sites.
    fn rebase(&mut self, _base: &Program, patched: &Program, fx: &DeltaEffects) -> bool {
        if !fx.additions_only() {
            return false;
        }
        let info = StaticInfo::compute(patched);
        let spec = self.cfg.container_spec.resolve(patched);
        if !self.info.compatible_extension(&info, &fx.base)
            || !self.spec.compatible_extension(&spec, &fx.base)
        {
            return false;
        }
        self.info = info;
        self.spec = spec;
        true
    }

    fn is_store_cut(&self, site: StoreId) -> bool {
        self.cfg.field_store && self.info.is_cut_store(site)
    }

    fn is_return_cut(&self, m: MethodId) -> bool {
        (self.cfg.field_load && self.is_load_cut(m))
            || (self.cfg.container && self.spec.exits.contains_key(&m))
            || (self.cfg.local_flow && self.info.lflow.contains_key(&m))
    }

    fn parallel_discovery(&self) -> bool {
        true
    }

    /// The read-only half of [`CutShortcut::on_points_to`]: grounded
    /// `[ShortcutStore]` / `[ShortcutLoad]` obligation lookups and the
    /// `[ColHost]` / `[MapHost]` classification, emitted as reactions. On
    /// the parallel engines this runs on the shard workers against
    /// phase-frozen tables — frozen for one BSP round, or for one entire
    /// async work-stealing phase (many drained deltas between two pause
    /// points). Obligations registered later replay the full current
    /// points-to set at registration time, so no reaction is lost to a
    /// round or pause boundary, however long the frozen window was.
    fn discover(
        &self,
        ptr: PtrId,
        delta: &PointsToSet,
        dctx: &DiscoverCtx<'_>,
        out: &mut Vec<Reaction>,
    ) {
        // Grounded [ShortcutStore] obligations — one reaction per
        // obligation; `apply` fans it out over the delta at commit time.
        if let Some(obls) = self.store_obls.get(&ptr) {
            for &(f, from) in obls {
                out.push(Reaction::ShortcutToFields {
                    src: from,
                    field: f,
                    kind: ShortcutKind::Store,
                });
            }
        }
        // [ShortcutLoad] obligations.
        if let Some(obls) = self.load_obls.get(&ptr) {
            for &(f, to) in obls {
                out.push(Reaction::ShortcutFromFields {
                    field: f,
                    dst: to,
                    kind: ShortcutKind::Load,
                });
            }
        }
        // [ColHost] / [MapHost].
        if self.cfg.container
            && !(self.spec.collection_roots.is_empty() && self.spec.map_roots.is_empty())
        {
            let mut hosts = PointsToSet::new();
            for o in delta.iter() {
                let (_, obj) = dctx.obj_key(CsObjId(o));
                let class = dctx.program.obj(obj).class();
                if self.spec.is_host_class(dctx.program, class) {
                    hosts.insert(o);
                }
            }
            if !hosts.is_empty() {
                out.push(Reaction::Hosts { ptr, hosts });
            }
        }
    }

    fn apply(&mut self, st: &mut SolverState<'_>, delta: &PointsToSet, reaction: Reaction) {
        match reaction {
            Reaction::ShortcutToFields { src, field, kind } => {
                // Same shape as the pre-split obligation loop: one edge
                // per new object of the delta.
                for o in delta.iter() {
                    let t = st.field_ptr(CsObjId(o), field);
                    self.add_shortcut(st, src, t, kind);
                }
            }
            Reaction::ShortcutFromFields { field, dst, kind } => {
                for o in delta.iter() {
                    let s = st.field_ptr(CsObjId(o), field);
                    self.add_shortcut(st, s, dst, kind);
                }
            }
            Reaction::Hosts { ptr, hosts } => {
                self.queue_hosts(ptr, hosts);
                self.drain_hosts(st);
            }
        }
    }
}
