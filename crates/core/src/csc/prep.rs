//! Static (pre-solving) computations for Cut-Shortcut.
//!
//! Everything here depends only on the program text, not on points-to
//! facts:
//!
//! * per-variable definition counts and the *unredefined parameter*
//!   property (the `↦` side condition of `[Arg2Var]`, Fig. 8);
//! * `cutStores` (`[CutStore]`): stores `x.f = y` whose base and value are
//!   both unredefined parameters;
//! * the level-0 qualifying return-loads (`[CutPropLoad]`): loads
//!   `m_ret = base.f` with `base` an unredefined parameter, plus a
//!   CHA-style closure that over-approximates the nested-call recursion so
//!   that return edges can be suppressed from the start ("we never add
//!   edges that should be cut off", §3.1) — over-cutting is sound because
//!   `[RelayEdge]` re-routes every non-load inflow;
//! * the local-flow `↣` relation (`[Param2Var]`, `[Param2VarRec]`, Fig. 11)
//!   and the resulting `cutReturns` of `[CutLFlow]`.

use std::collections::{HashMap, HashSet};

use csc_ir::{CallKind, LoadId, MethodId, Program, Stmt, StoreId, VarId};

/// Static information shared by all Cut-Shortcut pattern handlers.
#[derive(Debug)]
pub struct StaticInfo {
    /// Number of defining statements per variable.
    pub def_count: Vec<u32>,
    /// If the variable is a parameter (paper numbering: 0 = `this`) of its
    /// method and is never redefined, its parameter index.
    pub unredefined_param_k: Vec<Option<u32>>,
    /// `cutStores`: store sites whose PFG edges are suppressed.
    pub cut_stores: Vec<bool>,
    /// Seed temp-stores per method: `(k_base, field, k_from)` — the store
    /// base/value parameter indices of each cut store in the method.
    pub prop_store_seeds: HashMap<MethodId, Vec<(u32, csc_ir::FieldId, u32)>>,
    /// Level-0 qualifying return-loads: `lhs == m_ret` and base is an
    /// unredefined parameter. Indexed per load site; used to classify load
    /// edges as `returnLoadEdges`.
    pub qualifying_ret_load: Vec<bool>,
    /// Seed temp-loads per method: `(k_base, field)` for each level-0
    /// qualifying return-load.
    pub prop_load_seeds: HashMap<MethodId, Vec<(u32, csc_ir::FieldId)>>,
    /// Methods whose returns are cut by the field-load pattern (level-0
    /// plus the static CHA closure of the nested-call recursion).
    pub cut_load_returns: HashSet<MethodId>,
    /// Local flow: `⟨m, k⟩ ↣ m_ret` parameter indices per method
    /// (`[CutLFlow]` cuts exactly these methods' returns).
    pub lflow: HashMap<MethodId, Vec<u32>>,
    /// Map from a method's synthetic return variable to the method.
    pub ret_var_owner: HashMap<VarId, MethodId>,
}

/// How a variable is defined, for the local-flow fixpoint.
#[derive(Clone, Debug)]
enum Def {
    /// `x = y` — candidate for parameter derivation.
    Assign(VarId),
    /// Any other defining statement (load, call result, allocation, …).
    Other,
}

impl StaticInfo {
    /// Computes all static information for a program.
    pub fn compute(program: &Program) -> Self {
        let nvars = program.vars().len();
        let mut def_count = vec![0u32; nvars];
        let mut defs_by_var: HashMap<VarId, Vec<Def>> = HashMap::new();

        let mut record = |v: VarId, d: Def, def_count: &mut Vec<u32>| {
            def_count[v.index()] += 1;
            defs_by_var.entry(v).or_default().push(d);
        };

        for m in program.methods() {
            m.visit_stmts(|s| match s {
                Stmt::New { lhs, .. }
                | Stmt::ConstInt { lhs, .. }
                | Stmt::ConstBool { lhs, .. }
                | Stmt::ConstNull { lhs }
                | Stmt::BinOp { lhs, .. } => record(*lhs, Def::Other, &mut def_count),
                Stmt::Assign { lhs, rhs } => record(*lhs, Def::Assign(*rhs), &mut def_count),
                Stmt::Cast(id) => record(program.cast(*id).lhs(), Def::Other, &mut def_count),
                Stmt::Load(id) => record(program.load(*id).lhs(), Def::Other, &mut def_count),
                Stmt::Call(id) => {
                    if let Some(lhs) = program.call_site(*id).lhs() {
                        record(lhs, Def::Other, &mut def_count);
                    }
                }
                Stmt::Store(_) | Stmt::Return | Stmt::If { .. } | Stmt::While { .. } => {}
            });
        }

        // Unredefined parameters ([Arg2Var] side condition).
        let mut unredefined_param_k = vec![None; nvars];
        for method in program.methods() {
            for k in 0..method.param_k_bound() {
                if let Some(p) = method.param_k(k) {
                    if def_count[p.index()] == 0 {
                        unredefined_param_k[p.index()] = Some(k as u32);
                    }
                }
            }
        }

        // [CutStore]: both base and value are unredefined parameters of the
        // containing method (and the field is reference-typed — primitive
        // stores carry no objects).
        let mut cut_stores = vec![false; program.stores().len()];
        let mut prop_store_seeds: HashMap<MethodId, Vec<(u32, csc_ir::FieldId, u32)>> =
            HashMap::new();
        for (i, st) in program.stores().iter().enumerate() {
            if !program.field(st.field()).ty().is_reference() {
                continue;
            }
            let (kb, kf) = (
                unredefined_param_k[st.base().index()],
                unredefined_param_k[st.rhs().index()],
            );
            if let (Some(kb), Some(kf)) = (kb, kf) {
                cut_stores[i] = true;
                prop_store_seeds
                    .entry(st.method())
                    .or_default()
                    .push((kb, st.field(), kf));
            }
        }

        // Return-variable ownership.
        let mut ret_var_owner = HashMap::new();
        for (i, method) in program.methods().iter().enumerate() {
            if let Some(rv) = method.ret_var() {
                ret_var_owner.insert(rv, MethodId::from_usize(i));
            }
        }

        // Level-0 qualifying return-loads ([CutPropLoad] base case).
        let mut qualifying_ret_load = vec![false; program.loads().len()];
        let mut prop_load_seeds: HashMap<MethodId, Vec<(u32, csc_ir::FieldId)>> = HashMap::new();
        let mut cut_load_returns: HashSet<MethodId> = HashSet::new();
        // Per cut method: parameter indices that act as load bases (used by
        // the CHA closure below).
        let mut base_params: HashMap<MethodId, HashSet<u32>> = HashMap::new();
        for (i, ld) in program.loads().iter().enumerate() {
            let m = ld.method();
            let method = program.method(m);
            if method.ret_var() != Some(ld.lhs()) {
                continue;
            }
            if !program.field(ld.field()).ty().is_reference() {
                continue;
            }
            if let Some(k) = unredefined_param_k[ld.base().index()] {
                qualifying_ret_load[i] = true;
                prop_load_seeds.entry(m).or_default().push((k, ld.field()));
                cut_load_returns.insert(m);
                base_params.entry(m).or_default().insert(k);
            }
        }

        // CHA closure of the nested-call recursion in [CutPropLoad]: if a
        // method n returns the result of a call that may dispatch to a
        // cut method m, and the argument feeding m's load base is itself an
        // unredefined parameter of n, then n's return is cut as well.
        // Over-approximation is sound: [RelayEdge] re-routes every inflow
        // that the load shortcuts do not cover.
        loop {
            let mut changed = false;
            for cs in program.call_sites() {
                let n = cs.method();
                let method_n = program.method(n);
                if cs.lhs().is_none() || cs.lhs() != method_n.ret_var() {
                    continue;
                }
                let chas = cha_targets(program, cs);
                for m in chas {
                    if !cut_load_returns.contains(&m) {
                        continue;
                    }
                    let Some(ks) = base_params.get(&m).cloned() else {
                        continue;
                    };
                    for k in ks {
                        let Some(arg) = cs.arg_k(k as usize) else {
                            continue;
                        };
                        if let Some(kn) = unredefined_param_k[arg.index()] {
                            let newly = cut_load_returns.insert(n);
                            let set = base_params.entry(n).or_default();
                            let added = set.insert(kn);
                            if newly || added {
                                changed = true;
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Local flow ([Param2Var] / [Param2VarRec]): least fixpoint of
        // "all defs are assignments from parameter-derived variables".
        let mut lflow: HashMap<MethodId, Vec<u32>> = HashMap::new();
        for (mi, method) in program.methods().iter().enumerate() {
            let m = MethodId::from_usize(mi);
            let Some(ret) = method.ret_var() else {
                continue;
            };
            if !method.ret_ty().is_reference() {
                continue;
            }
            let mut derived: HashMap<VarId, HashSet<u32>> = HashMap::new();
            for k in 0..method.param_k_bound() {
                if let Some(p) = method.param_k(k) {
                    if def_count[p.index()] == 0 {
                        derived.insert(p, HashSet::from([k as u32]));
                    }
                }
            }
            loop {
                let mut changed = false;
                for &v in method.vars() {
                    if derived.contains_key(&v) || def_count[v.index()] == 0 {
                        continue;
                    }
                    let Some(defs) = defs_by_var.get(&v) else {
                        continue;
                    };
                    let mut ks: HashSet<u32> = HashSet::new();
                    let mut ok = true;
                    for d in defs {
                        match d {
                            Def::Assign(y) => match derived.get(y) {
                                Some(yk) => ks.extend(yk.iter().copied()),
                                None => {
                                    ok = false;
                                    break;
                                }
                            },
                            Def::Other => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if ok && !ks.is_empty() {
                        derived.insert(v, ks);
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            if let Some(ks) = derived.get(&ret) {
                let mut ks: Vec<u32> = ks.iter().copied().collect();
                ks.sort_unstable();
                lflow.insert(m, ks);
            }
        }

        StaticInfo {
            def_count,
            unredefined_param_k,
            cut_stores,
            prop_store_seeds,
            qualifying_ret_load,
            prop_load_seeds,
            cut_load_returns,
            lflow,
            ret_var_owner,
        }
    }

    /// Whether `site` is in `cutStores`.
    pub fn is_cut_store(&self, site: StoreId) -> bool {
        self.cut_stores[site.index()]
    }

    /// Whether the load site is a level-0 qualifying return-load (its edges
    /// belong to `returnLoadEdges`).
    pub fn is_qualifying_ret_load(&self, site: LoadId) -> bool {
        self.qualifying_ret_load[site.index()]
    }
}

/// Class-hierarchy-analysis approximation of the possible concrete callees
/// of a call site.
pub fn cha_targets(program: &Program, cs: &csc_ir::CallSite) -> Vec<MethodId> {
    match cs.kind() {
        CallKind::Static | CallKind::Special => vec![cs.target()],
        CallKind::Virtual => {
            let target = cs.target();
            let tsig = program.method(target).sig();
            let tclass = program.method(target).class();
            let mut out = Vec::new();
            for (i, m) in program.methods().iter().enumerate() {
                if m.sig() == tsig
                    && !m.is_abstract()
                    && m.kind() != csc_ir::MethodKind::Static
                    && (program.is_subclass(m.class(), tclass)
                        || program.is_subclass(tclass, m.class()))
                {
                    out.push(MethodId::from_usize(i));
                }
            }
            out
        }
    }
}

/// Restricted-domain map equality for rebase-compatibility checks: `old`
/// and `new` must agree exactly on every key in the base entity domain
/// (`in_base`); `new` may add entries outside it freely.
pub(crate) fn map_restricted_eq<K, V>(
    old: &HashMap<K, V>,
    new: &HashMap<K, V>,
    in_base: impl Fn(&K) -> bool,
) -> bool
where
    K: Eq + std::hash::Hash,
    V: PartialEq,
{
    old.iter().all(|(k, v)| new.get(k) == Some(v))
        && new.keys().all(|k| !in_base(k) || old.contains_key(k))
}

impl StaticInfo {
    /// Whether `new` (computed on a patched, additions-only extension of
    /// the base program) agrees with `self` (computed on the base) on the
    /// base entity domain — the precondition for carrying the plugin's
    /// *dynamic* cut/shortcut state across a delta while swapping in the
    /// freshly computed tables (old tables would index out of bounds on
    /// appended sites).
    ///
    /// Every solve-time-consulted field is compared over the base ids:
    /// `cut_stores` / `qualifying_ret_load` / `unredefined_param_k` as
    /// prefixes, the method- and variable-keyed maps and sets restricted to
    /// base ids in both directions (an added pattern entry *on a base
    /// method* means existing call edges missed its obligations — not
    /// rebasable). `def_count` is compile-time-only input and is deliberately
    /// excluded: an added redefinition that matters surfaces through
    /// `unredefined_param_k` or the derived tables.
    pub fn compatible_extension(&self, new: &StaticInfo, base: &csc_ir::EntityCounts) -> bool {
        let in_m = |m: &MethodId| m.index() < base.methods;
        self.cut_stores[..] == new.cut_stores[..self.cut_stores.len()]
            && self.qualifying_ret_load[..]
                == new.qualifying_ret_load[..self.qualifying_ret_load.len()]
            && self.unredefined_param_k[..]
                == new.unredefined_param_k[..self.unredefined_param_k.len()]
            && map_restricted_eq(&self.prop_store_seeds, &new.prop_store_seeds, in_m)
            && map_restricted_eq(&self.prop_load_seeds, &new.prop_load_seeds, in_m)
            && map_restricted_eq(&self.lflow, &new.lflow, in_m)
            && self
                .cut_load_returns
                .iter()
                .all(|m| new.cut_load_returns.contains(m))
            && new
                .cut_load_returns
                .iter()
                .all(|m| !in_m(m) || self.cut_load_returns.contains(m))
            && map_restricted_eq(&self.ret_var_owner, &new.ret_var_owner, |v: &VarId| {
                v.index() < base.vars
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prep(src: &str) -> (Program, StaticInfo) {
        let p = csc_frontend::compile(src).expect("compiles");
        let info = StaticInfo::compute(&p);
        (p, info)
    }

    #[test]
    fn setter_store_is_cut() {
        let (p, info) = prep(
            r#"
            class Carton {
                Item item;
                void setItem(Item item) { this.item = item; }
            }
            class Item { }
            class Main { static void main() { new Carton(); } }
            "#,
        );
        assert_eq!(p.stores().len(), 1);
        assert!(info.is_cut_store(StoreId::new(0)));
        let set = p.method_by_qualified_name("Carton.setItem").unwrap();
        assert_eq!(
            info.prop_store_seeds[&set],
            vec![(0, p.stores()[0].field(), 1)]
        );
    }

    #[test]
    fn store_with_redefined_value_not_cut() {
        let (_, info) = prep(
            r#"
            class Carton {
                Item item;
                void setItem(Item item) { item = new Item(); this.item = item; }
            }
            class Item { }
            class Main { static void main() { new Carton(); } }
            "#,
        );
        assert!(!info.is_cut_store(StoreId::new(0)));
    }

    #[test]
    fn getter_return_is_cut() {
        let (p, info) = prep(
            r#"
            class Carton {
                Item item;
                Item getItem() { Item r; r = this.item; return r; }
            }
            class Item { }
            class Main { static void main() { new Carton(); } }
            "#,
        );
        // `Item r; r = this.item; return r;` lowers the return through the
        // synthetic @ret variable; the load target is `r`, not @ret, so the
        // getter is caught by... the *local flow* of r? No: r's def is a
        // load, so the lflow condition fails; and the load lhs is r, not
        // @ret. The paper's formalism works on a three-address IR where
        // `return this.item` loads straight into the return slot. Writing
        // the getter that way:
        let _ = (p, info);
        let (p2, info2) = prep(
            r#"
            class Carton {
                Item item;
                Item getItem() { return this.item; }
            }
            class Item { }
            class Main { static void main() { new Carton(); } }
            "#,
        );
        let get = p2.method_by_qualified_name("Carton.getItem").unwrap();
        assert!(
            info2.cut_load_returns.contains(&get),
            "direct `return this.item` must be a level-0 ret-load cut"
        );
        assert!(info2.prop_load_seeds.contains_key(&get));
    }

    #[test]
    fn select_method_is_local_flow() {
        let (p, info) = prep(
            r#"
            class A { }
            class Main {
                static A select(A p1, A p2) {
                    A r;
                    if (true) { r = p1; } else { r = p2; }
                    return r;
                }
                static void main() { select(new A(), new A()); }
            }
            "#,
        );
        let sel = p.method_by_qualified_name("Main.select").unwrap();
        // static method: no `this`, so params are k=1,2... wait: static
        // methods have no param 0; param_k(0) is None and declared params
        // start at k=1.
        assert_eq!(info.lflow[&sel], vec![1, 2]);
    }

    #[test]
    fn method_with_field_load_source_is_not_local_flow() {
        let (p, info) = prep(
            r#"
            class A { A f; }
            class Main {
                static A pick(A p) {
                    A r;
                    r = p;
                    r = p.f;
                    return r;
                }
                static void main() { pick(new A()); }
            }
            "#,
        );
        let pick = p.method_by_qualified_name("Main.pick").unwrap();
        assert!(!info.lflow.contains_key(&pick));
    }

    #[test]
    fn identity_returning_this_is_local_flow_k0() {
        let (p, info) = prep(
            r#"
            class A {
                A self() { return this; }
            }
            class Main { static void main() { A a = new A(); a.self(); } }
            "#,
        );
        let m = p.method_by_qualified_name("A.self").unwrap();
        assert_eq!(info.lflow[&m], vec![0]);
    }

    #[test]
    fn nested_load_cha_closure() {
        let (p, info) = prep(
            r#"
            class Box {
                Object f;
                Object getDirect() { return this.f; }
                Object get() { return this.getDirect(); }
            }
            class Main { static void main() { Box b = new Box(); b.get(); } }
            "#,
        );
        let direct = p.method_by_qualified_name("Box.getDirect").unwrap();
        let get = p.method_by_qualified_name("Box.get").unwrap();
        assert!(info.cut_load_returns.contains(&direct));
        assert!(
            info.cut_load_returns.contains(&get),
            "nested call closure must cut the wrapper too"
        );
    }

    #[test]
    fn unredefined_params_detected() {
        let (p, info) = prep(
            r#"
            class C {
                void m(Object a, Object b) { a = b; }
            }
            class Main { static void main() { new C(); } }
            "#,
        );
        let m = p.method_by_qualified_name("C.m").unwrap();
        let method = p.method(m);
        let a = method.param_k(1).unwrap();
        let b = method.param_k(2).unwrap();
        let this = method.param_k(0).unwrap();
        assert_eq!(info.unredefined_param_k[a.index()], None, "a is redefined");
        assert_eq!(info.unredefined_param_k[b.index()], Some(2));
        assert_eq!(info.unredefined_param_k[this.index()], Some(0));
    }
}
