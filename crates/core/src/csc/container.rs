//! Container API specification for the container access pattern (§3.3, §4.3).
//!
//! The paper annotates JDK container APIs with three roles — `Entrances`
//! (methods that add elements), `Exits` (methods that return elements), and
//! `Transfers` (methods that return host-dependent objects such as iterators
//! and map views). The spec is given by class/method *names* and resolved
//! against a concrete program; resolution expands each entry over the class
//! hierarchy so that subclasses inheriting or overriding a container method
//! are covered.

use std::collections::{HashMap, HashSet};

use csc_ir::{ClassId, EntityCounts, MethodId, Program};

/// Which kind of container element a role manipulates. Distinguishing map
/// keys from map values lets `keySet()` iterators match `put`'s key argument
/// rather than its value argument.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Values of a collection.
    Col,
    /// Keys of a map.
    MapKey,
    /// Values of a map.
    MapVal,
}

/// A name-based container API specification.
#[derive(Clone, Debug, Default)]
pub struct ContainerSpec {
    /// Root classes whose instances are host (container) objects, with the
    /// category family they belong to (`true` = map).
    pub host_roots: Vec<(String, bool)>,
    /// `(class, method, k, category)`: the `k`-th argument (paper numbering,
    /// 0 = receiver) of calls to `class.method` flows into the container.
    pub entrances: Vec<(String, String, usize, Category)>,
    /// `(class, method, category)`: calls to `class.method` return container
    /// elements.
    pub exits: Vec<(String, String, Category)>,
    /// `(class, method)`: calls transfer the host from the receiver to the
    /// result (iterators, map views).
    pub transfers: Vec<(String, String)>,
}

impl ContainerSpec {
    /// The specification matching the `csc-workloads` mini-JDK. Mirrors the
    /// paper's five-hour JDK annotation effort at mini scale.
    pub fn mini_jdk() -> Self {
        let e = |c: &str, m: &str, k: usize, cat| (c.to_owned(), m.to_owned(), k, cat);
        let x = |c: &str, m: &str, cat| (c.to_owned(), m.to_owned(), cat);
        let t = |c: &str, m: &str| (c.to_owned(), m.to_owned());
        ContainerSpec {
            host_roots: vec![("Collection".to_owned(), false), ("Map".to_owned(), true)],
            entrances: vec![
                e("Collection", "add", 1, Category::Col),
                e("Collection", "addFirst", 1, Category::Col),
                e("List", "set", 2, Category::Col),
                e("Map", "put", 1, Category::MapKey),
                e("Map", "put", 2, Category::MapVal),
            ],
            exits: vec![
                x("List", "get", Category::Col),
                x("List", "removeFirst", Category::Col),
                x("Iterator", "next", Category::Col),
                x("KeyIterator", "next", Category::MapKey),
                x("ValueIterator", "next", Category::MapVal),
                x("Map", "get", Category::MapVal),
                x("Map", "remove", Category::MapVal),
            ],
            transfers: vec![
                t("Collection", "iterator"),
                t("Map", "keySet"),
                t("Map", "values"),
                t("KeySetView", "iterator"),
                t("ValuesView", "iterator"),
            ],
        }
    }

    /// Resolves names against a program, expanding entries over the class
    /// hierarchy. Entries whose classes or methods are absent from the
    /// program are silently skipped (programs need not link the whole
    /// mini-JDK).
    pub fn resolve(&self, program: &Program) -> ResolvedContainerSpec {
        let mut resolved = ResolvedContainerSpec::default();
        for (name, is_map) in &self.host_roots {
            if let Some(c) = program.class_by_name(name) {
                if *is_map {
                    resolved.map_roots.push(c);
                } else {
                    resolved.collection_roots.push(c);
                }
            }
        }
        // For entry (C, m): every concrete method that a call on any
        // subclass of C may dispatch to.
        let concrete_impls = |class_name: &str, method_name: &str| -> Vec<MethodId> {
            let Some(base) = program.class_by_name(class_name) else {
                return Vec::new();
            };
            let Some(decl) = program.resolve_method(base, method_name) else {
                return Vec::new();
            };
            let mut out = HashSet::new();
            for c in 0..program.classes().len() {
                let c = ClassId::from_usize(c);
                if program.is_subclass(c, base) {
                    if let Some(m) = program.dispatch(c, decl) {
                        out.insert(m);
                    }
                }
            }
            let mut v: Vec<MethodId> = out.into_iter().collect();
            v.sort_unstable();
            v
        };
        for (c, m, k, cat) in &self.entrances {
            for id in concrete_impls(c, m) {
                resolved.entrances.entry(id).or_default().push((*k, *cat));
            }
        }
        for (c, m, cat) in &self.exits {
            for id in concrete_impls(c, m) {
                resolved.exits.entry(id).or_insert(*cat);
            }
        }
        for (c, m) in &self.transfers {
            for id in concrete_impls(c, m) {
                resolved.transfers.insert(id);
            }
        }
        resolved
    }
}

/// A [`ContainerSpec`] resolved against a concrete program.
#[derive(Clone, Debug, Default)]
pub struct ResolvedContainerSpec {
    /// Classes whose instances are collection hosts (`[ColHost]`).
    pub collection_roots: Vec<ClassId>,
    /// Classes whose instances are map hosts (`[MapHost]`).
    pub map_roots: Vec<ClassId>,
    /// Entrance methods with their `(arg index, category)` annotations.
    pub entrances: HashMap<MethodId, Vec<(usize, Category)>>,
    /// Exit methods with the category they return.
    pub exits: HashMap<MethodId, Category>,
    /// Transfer methods.
    pub transfers: HashSet<MethodId>,
}

impl ResolvedContainerSpec {
    /// Whether objects of `class` are hosts ([ColHost]/[MapHost] premise).
    pub fn is_host_class(&self, program: &Program, class: ClassId) -> bool {
        self.collection_roots
            .iter()
            .chain(self.map_roots.iter())
            .any(|&root| program.is_subclass(class, root))
    }

    /// Whether `new` (resolved against a patched, additions-only extension
    /// of the base program) agrees with `self` (resolved against the base)
    /// on the base entity domain. Root class lists must be exactly equal —
    /// host classification is hierarchy-wide, so a delta-added root class
    /// is conservatively not rebasable — while entrance/exit/transfer
    /// annotations may gain entries for appended methods only (an added
    /// annotation on a *base* method means existing call edges missed its
    /// container obligations).
    pub fn compatible_extension(&self, new: &ResolvedContainerSpec, base: &EntityCounts) -> bool {
        let in_m = |m: &MethodId| m.index() < base.methods;
        self.collection_roots == new.collection_roots
            && self.map_roots == new.map_roots
            && super::prep::map_restricted_eq(&self.entrances, &new.entrances, in_m)
            && super::prep::map_restricted_eq(&self.exits, &new.exits, in_m)
            && self.transfers.iter().all(|m| new.transfers.contains(m))
            && new
                .transfers
                .iter()
                .all(|m| !in_m(m) || self.transfers.contains(m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_skips_missing_classes() {
        let program =
            csc_frontend::compile("class Main { static void main() { Object o = new Object(); } }")
                .unwrap();
        let spec = ContainerSpec::mini_jdk().resolve(&program);
        assert!(spec.entrances.is_empty());
        assert!(spec.exits.is_empty());
        assert!(spec.transfers.is_empty());
        assert!(spec.collection_roots.is_empty());
    }

    #[test]
    fn resolve_expands_over_hierarchy() {
        let program = csc_frontend::compile(
            r#"
            abstract class Collection {
                abstract void add(Object e);
                abstract Iterator iterator();
            }
            class Node { Object item; Node next; }
            class Iterator {
                Node cur;
                Object next() { Node n; n = this.cur; this.cur = n.next; return n.item; }
                boolean hasNext() { return true; }
            }
            class ArrayList extends Collection {
                Node head;
                void add(Object e) { Node n = new Node(); n.item = e; n.next = this.head; this.head = n; }
                Iterator iterator() { Iterator it = new Iterator(); it.cur = this.head; return it; }
            }
            class SubList extends ArrayList { }
            class Main {
                static void main() {
                    ArrayList l = new ArrayList();
                    l.add(new Object());
                }
            }
            "#,
        )
        .unwrap();
        let spec = ContainerSpec::mini_jdk().resolve(&program);
        let add = program.method_by_qualified_name("ArrayList.add").unwrap();
        let iter = program
            .method_by_qualified_name("ArrayList.iterator")
            .unwrap();
        let next = program.method_by_qualified_name("Iterator.next").unwrap();
        assert_eq!(spec.entrances[&add], vec![(1, Category::Col)]);
        assert!(spec.transfers.contains(&iter));
        assert_eq!(spec.exits[&next], Category::Col);
        let al = program.class_by_name("ArrayList").unwrap();
        let sub = program.class_by_name("SubList").unwrap();
        assert!(spec.is_host_class(&program, al));
        assert!(spec.is_host_class(&program, sub));
        let node = program.class_by_name("Node").unwrap();
        assert!(!spec.is_host_class(&program, node));
    }
}
