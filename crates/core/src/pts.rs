//! Points-to sets.
//!
//! A [`PointsToSet`] is a set of dense u32 ids (context-sensitive abstract
//! objects, [`crate::solver::CsObjId`]) with a *hybrid* representation:
//! small sets are sorted vectors (cache-friendly, cheap to clone while the
//! vast majority of pointers stay small), and sets that grow past
//! [`SMALL_MAX`] elements promote to a dense bitmap whose union/membership
//! cost is word-parallel — the classic sparse/dense split of production
//! Andersen solvers.
//!
//! The solver propagates *deltas*: [`PointsToSet::union_delta`] merges a set
//! in and returns exactly the elements that were new, which is what gets
//! pushed further along pointer-flow-graph edges. Both representations
//! preserve the exact-delta contract, and iteration is always in ascending
//! id order regardless of representation.

use std::fmt;

/// Elements before a small sorted vector promotes to a dense bitmap.
///
/// 64 keeps every small set within a few cache lines while bounding the
/// quadratic insertion-sort regime; beyond it, word-parallel bitmap unions
/// win decisively.
const SMALL_MAX: usize = 64;

/// A dense bitmap with a cached population count.
#[derive(Clone, Default)]
struct BitSet {
    words: Vec<u64>,
    len: u32,
}

impl BitSet {
    fn with_capacity_for(max_elem: u32) -> Self {
        BitSet {
            words: vec![0; (max_elem as usize / 64) + 1],
            len: 0,
        }
    }

    fn contains(&self, e: u32) -> bool {
        let w = (e / 64) as usize;
        w < self.words.len() && self.words[w] & (1u64 << (e % 64)) != 0
    }

    /// Sets a bit; returns whether it was newly set.
    fn insert(&mut self, e: u32) -> bool {
        let w = (e / 64) as usize;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let mask = 1u64 << (e % 64);
        if self.words[w] & mask != 0 {
            return false;
        }
        self.words[w] |= mask;
        self.len += 1;
        true
    }

    fn iter(&self) -> BitIter<'_> {
        BitIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

struct BitIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for BitIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros();
        self.current &= self.current - 1;
        Some(self.word_idx as u32 * 64 + bit)
    }
}

#[derive(Clone)]
enum Repr {
    /// Sorted, deduplicated vector.
    Small(Vec<u32>),
    /// Dense bitmap.
    Bits(BitSet),
}

impl Default for Repr {
    fn default() -> Self {
        Repr::Small(Vec::new())
    }
}

/// A set of dense u32 ids with delta-union support and a hybrid
/// sorted-vec / bitmap representation.
#[derive(Clone, Default)]
pub struct PointsToSet {
    repr: Repr,
}

impl PointsToSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a set holding a single element.
    pub fn singleton(e: u32) -> Self {
        PointsToSet {
            repr: Repr::Small(vec![e]),
        }
    }

    /// Builds a set from an already sorted, deduplicated vector.
    fn from_sorted(elems: Vec<u32>) -> Self {
        let mut s = PointsToSet {
            repr: Repr::Small(elems),
        };
        s.maybe_promote();
        s
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Small(v) => v.len(),
            Repr::Bits(b) => b.len as usize,
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test.
    pub fn contains(&self, e: u32) -> bool {
        match &self.repr {
            Repr::Small(v) => v.binary_search(&e).is_ok(),
            Repr::Bits(b) => b.contains(e),
        }
    }

    /// Inserts one element; returns whether it was new.
    pub fn insert(&mut self, e: u32) -> bool {
        match &mut self.repr {
            Repr::Small(v) => match v.binary_search(&e) {
                Ok(_) => false,
                Err(i) => {
                    v.insert(i, e);
                    self.maybe_promote();
                    true
                }
            },
            Repr::Bits(b) => b.insert(e),
        }
    }

    fn maybe_promote(&mut self) {
        if let Repr::Small(v) = &self.repr {
            if v.len() > SMALL_MAX {
                let mut bits = BitSet::with_capacity_for(*v.last().unwrap());
                for &e in v {
                    bits.insert(e);
                }
                self.repr = Repr::Bits(bits);
            }
        }
    }

    /// Merges `other` in and returns the elements that were not yet present
    /// (`None` when nothing changed — the common case, kept allocation-free).
    pub fn union_delta(&mut self, other: &PointsToSet) -> Option<PointsToSet> {
        let mut delta = Vec::new();
        if !self.union_impl(other, Some(&mut delta)) {
            return None;
        }
        debug_assert!(!delta.is_empty());
        Some(PointsToSet::from_sorted(delta))
    }

    /// Merges `other` in without materializing the delta; returns whether
    /// the set changed. This is the cheap path for accumulator sets (the
    /// solver's pending-delta batches) where the caller does not need to
    /// know *which* elements were new.
    pub fn union_with(&mut self, other: &PointsToSet) -> bool {
        self.union_impl(other, None)
    }

    /// The single union core behind [`union_delta`](Self::union_delta) and
    /// [`union_with`](Self::union_with): merges `other` in, pushes the new
    /// elements (in ascending order) into `delta` when one is supplied, and
    /// returns whether the set changed.
    fn union_impl(&mut self, other: &PointsToSet, mut delta: Option<&mut Vec<u32>>) -> bool {
        if other.is_empty() || other.is_subset(self) {
            // No-op union: the common case at fixpoint, kept allocation-free
            // for every representation pairing.
            return false;
        }
        match (&mut self.repr, &other.repr) {
            (Repr::Small(sv), Repr::Small(ov)) => {
                let mut merged = Vec::with_capacity(sv.len() + ov.len());
                let (mut i, mut j) = (0usize, 0usize);
                while i < sv.len() && j < ov.len() {
                    match sv[i].cmp(&ov[j]) {
                        std::cmp::Ordering::Less => {
                            merged.push(sv[i]);
                            i += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            merged.push(ov[j]);
                            if let Some(d) = delta.as_deref_mut() {
                                d.push(ov[j]);
                            }
                            j += 1;
                        }
                        std::cmp::Ordering::Equal => {
                            merged.push(sv[i]);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                merged.extend_from_slice(&sv[i..]);
                for &e in &ov[j..] {
                    merged.push(e);
                    if let Some(d) = delta.as_deref_mut() {
                        d.push(e);
                    }
                }
                *sv = merged;
                self.maybe_promote();
                true
            }
            (Repr::Bits(sb), Repr::Small(ov)) => {
                let mut changed = false;
                for &e in ov {
                    if sb.insert(e) {
                        changed = true;
                        if let Some(d) = delta.as_deref_mut() {
                            d.push(e);
                        }
                    }
                }
                changed
            }
            (Repr::Small(_), Repr::Bits(_)) => {
                // The incoming set is already dense; promote and do the
                // word-parallel union.
                let Repr::Small(sv) = std::mem::take(&mut self.repr) else {
                    unreachable!()
                };
                let mut bits = BitSet::with_capacity_for(sv.last().copied().unwrap_or(0));
                for &e in &sv {
                    bits.insert(e);
                }
                self.repr = Repr::Bits(bits);
                self.union_impl(other, delta)
            }
            (Repr::Bits(sb), Repr::Bits(ob)) => {
                if ob.words.len() > sb.words.len() {
                    sb.words.resize(ob.words.len(), 0);
                }
                if let Some(d) = delta {
                    // Delta extraction is inherently serial (bit positions
                    // must come out in ascending order), so this path keeps
                    // the word-at-a-time scan.
                    let mut changed = false;
                    for (w, (&ow, sw)) in ob.words.iter().zip(sb.words.iter_mut()).enumerate() {
                        let mut new = ow & !*sw;
                        if new == 0 {
                            continue;
                        }
                        *sw |= ow;
                        sb.len += new.count_ones();
                        changed = true;
                        while new != 0 {
                            let bit = new.trailing_zeros();
                            new &= new - 1;
                            d.push(w as u32 * 64 + bit);
                        }
                    }
                    changed
                } else {
                    // Widen-only union (the accumulator path): branchless
                    // or-and-popcount over exact-size eight-word chunks.
                    // The equal-length reslice and the fixed-size inner
                    // loop keep the hot loop free of bounds checks, which
                    // is what lets it compile to SIMD or/popcnt batches.
                    let m = ob.words.len();
                    let dst = &mut sb.words[..m];
                    let src = &ob.words[..m];
                    let mut added = 0u32;
                    let mut d8 = dst.chunks_exact_mut(8);
                    let mut s8 = src.chunks_exact(8);
                    for (dw, sw) in (&mut d8).zip(&mut s8) {
                        for k in 0..8 {
                            added += (sw[k] & !dw[k]).count_ones();
                            dw[k] |= sw[k];
                        }
                    }
                    for (dw, &sw) in d8.into_remainder().iter_mut().zip(s8.remainder()) {
                        added += (sw & !*dw).count_ones();
                        *dw |= sw;
                    }
                    sb.len += added;
                    added != 0
                }
            }
        }
    }

    /// Iterates the elements in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        match &self.repr {
            Repr::Small(v) => Iter(IterInner::Small(v.iter())),
            Repr::Bits(b) => Iter(IterInner::Bits(b.iter())),
        }
    }

    /// Whether every element of `self` is in `other` — word-parallel when
    /// both sides are bitmaps, early-exiting at the first missing element
    /// otherwise. This is the union fast path: most unions a fixpoint
    /// solver performs are no-ops, and a subset test answers that without
    /// touching the merge machinery.
    pub fn is_subset(&self, other: &PointsToSet) -> bool {
        if self.len() > other.len() {
            return false;
        }
        match (&self.repr, &other.repr) {
            (Repr::Bits(a), Repr::Bits(b)) => a
                .words
                .iter()
                .enumerate()
                .all(|(i, &w)| w & !b.words.get(i).copied().unwrap_or(0) == 0),
            _ => self.iter().all(|e| other.contains(e)),
        }
    }

    /// Whether the two sets share at least one element.
    pub fn intersects(&self, other: &PointsToSet) -> bool {
        match (&self.repr, &other.repr) {
            (Repr::Small(a), Repr::Small(b)) => {
                let (mut i, mut j) = (0usize, 0usize);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => return true,
                    }
                }
                false
            }
            (Repr::Bits(a), Repr::Bits(b)) => a
                .words
                .iter()
                .zip(b.words.iter())
                .any(|(&x, &y)| x & y != 0),
            (Repr::Small(v), Repr::Bits(b)) | (Repr::Bits(b), Repr::Small(v)) => {
                v.iter().any(|&e| b.contains(e))
            }
        }
    }
}

/// Iterator over a [`PointsToSet`], ascending.
pub struct Iter<'a>(IterInner<'a>);

enum IterInner<'a> {
    Small(std::slice::Iter<'a, u32>),
    Bits(BitIter<'a>),
}

impl Iterator for Iter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        match &mut self.0 {
            IterInner::Small(it) => it.next().copied(),
            IterInner::Bits(it) => it.next(),
        }
    }
}

impl PartialEq for PointsToSet {
    fn eq(&self, other: &Self) -> bool {
        // Representation-independent: sets are equal iff their (ascending)
        // element sequences are.
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl Eq for PointsToSet {}

impl fmt::Debug for PointsToSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<u32> for PointsToSet {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        let mut elems: Vec<u32> = iter.into_iter().collect();
        elems.sort_unstable();
        elems.dedup();
        PointsToSet::from_sorted(elems)
    }
}

impl Extend<u32> for PointsToSet {
    fn extend<T: IntoIterator<Item = u32>>(&mut self, iter: T) {
        // Collect-sort-merge: one O(k log k) sort plus one linear union
        // instead of k O(n) insertions.
        let batch: PointsToSet = iter.into_iter().collect();
        self.union_with(&batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = PointsToSet::new();
        assert!(s.insert(5));
        assert!(s.insert(1));
        assert!(!s.insert(5));
        assert!(s.contains(1));
        assert!(s.contains(5));
        assert!(!s.contains(3));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn union_delta_reports_exactly_new_elements() {
        let mut a: PointsToSet = [1, 3, 5].into_iter().collect();
        let b: PointsToSet = [2, 3, 6].into_iter().collect();
        let delta = a.union_delta(&b).unwrap();
        assert_eq!(delta.iter().collect::<Vec<_>>(), vec![2, 6]);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2, 3, 5, 6]);
        assert!(a.union_delta(&b).is_none(), "second union is a no-op");
    }

    #[test]
    fn union_delta_empty_other() {
        let mut a: PointsToSet = [1].into_iter().collect();
        assert!(a.union_delta(&PointsToSet::new()).is_none());
    }

    #[test]
    fn intersects() {
        let a: PointsToSet = [1, 4, 9].into_iter().collect();
        let b: PointsToSet = [2, 4].into_iter().collect();
        let c: PointsToSet = [3, 5].into_iter().collect();
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(!a.intersects(&PointsToSet::new()));
    }

    #[test]
    fn from_iterator_sorts_and_dedups() {
        let s: PointsToSet = [5, 1, 5, 3].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 3, 5]);
    }

    #[test]
    fn promotion_preserves_contents_and_order() {
        let mut s = PointsToSet::new();
        for e in (0..400u32).rev().step_by(3) {
            s.insert(e);
        }
        assert!(
            matches!(s.repr, Repr::Bits(_)),
            "must promote past SMALL_MAX"
        );
        let got: Vec<u32> = s.iter().collect();
        let expect: Vec<u32> = (0..400u32).filter(|e| e % 3 == 0).collect();
        assert_eq!(got, expect);
        for &e in &got {
            assert!(s.contains(e));
        }
        assert!(!s.contains(1));
    }

    #[test]
    fn union_delta_across_representations() {
        // Small ∪ Bits, Bits ∪ Small, Bits ∪ Bits.
        let big_a: PointsToSet = (0..300u32).step_by(2).collect();
        let big_b: PointsToSet = (0..300u32).step_by(3).collect();
        let small: PointsToSet = [1, 2, 601].into_iter().collect();

        let mut s = small.clone();
        let delta = s.union_delta(&big_a).unwrap();
        let expect_delta: Vec<u32> = (0..300u32).step_by(2).filter(|e| *e != 2).collect();
        assert_eq!(delta.iter().collect::<Vec<u32>>(), expect_delta);
        assert_eq!(s.len(), 150 + 2);

        let mut s = big_a.clone();
        let delta = s.union_delta(&small).unwrap();
        assert_eq!(delta.iter().collect::<Vec<u32>>(), vec![1, 601]);

        let mut s = big_a.clone();
        let delta = s.union_delta(&big_b).unwrap();
        let expect: Vec<u32> = (0..300u32).filter(|e| e % 3 == 0 && e % 2 != 0).collect();
        assert_eq!(delta.iter().collect::<Vec<u32>>(), expect);
        assert!(s.union_delta(&big_b).is_none());
    }

    #[test]
    fn equality_is_representation_independent() {
        let big: PointsToSet = (0..200u32).collect();
        let mut grown = PointsToSet::new();
        for e in 0..200u32 {
            grown.insert(e);
        }
        assert_eq!(big, grown);
        let small: PointsToSet = [7].into_iter().collect();
        assert_ne!(big, small);
    }

    #[test]
    fn union_with_matches_union_delta() {
        let cases: Vec<(PointsToSet, PointsToSet)> = vec![
            ([1, 3].into_iter().collect(), [2, 3].into_iter().collect()),
            ((0..200u32).collect(), (100..300u32).collect()),
            ([5].into_iter().collect(), (0..200u32).collect()),
            ((0..200u32).collect(), [7, 500].into_iter().collect()),
            ((0..10u32).collect(), (0..10u32).collect()),
        ];
        for (a, b) in cases {
            let mut via_delta = a.clone();
            let changed_delta = via_delta.union_delta(&b).is_some();
            let mut via_with = a.clone();
            let changed_with = via_with.union_with(&b);
            assert_eq!(changed_delta, changed_with);
            assert_eq!(via_delta, via_with);
        }
    }

    #[test]
    fn is_subset_across_representations() {
        let small: PointsToSet = [2, 4].into_iter().collect();
        let big: PointsToSet = (0..200u32).step_by(2).collect();
        let other: PointsToSet = [2, 5].into_iter().collect();
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
        assert!(!other.is_subset(&big));
        assert!(PointsToSet::new().is_subset(&small));
        assert!(big.is_subset(&big));
        let shifted: PointsToSet = (0..200u32).collect();
        assert!(big.is_subset(&shifted));
        assert!(!shifted.is_subset(&big));
    }

    #[test]
    fn extend_merges_batches() {
        let mut s: PointsToSet = [10, 20].into_iter().collect();
        s.extend([5, 20, 15, 5]);
        assert_eq!(s.iter().collect::<Vec<u32>>(), vec![5, 10, 15, 20]);
        s.extend(0..200u32);
        assert_eq!(s.len(), 200);
    }
}
