//! Points-to sets.
//!
//! A [`PointsToSet`] is a sorted, deduplicated vector of dense u32 ids
//! (context-sensitive abstract objects, [`crate::solver::CsObjId`]).
//! The solver propagates *deltas*: [`PointsToSet::union_delta`] merges a set
//! in and returns exactly the elements that were new, which is what gets
//! pushed further along pointer-flow-graph edges.

use std::fmt;

/// A sorted set of dense u32 ids with delta-union support.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct PointsToSet {
    elems: Vec<u32>,
}

impl PointsToSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a set holding a single element.
    pub fn singleton(e: u32) -> Self {
        PointsToSet { elems: vec![e] }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, e: u32) -> bool {
        self.elems.binary_search(&e).is_ok()
    }

    /// Inserts one element; returns whether it was new.
    pub fn insert(&mut self, e: u32) -> bool {
        match self.elems.binary_search(&e) {
            Ok(_) => false,
            Err(i) => {
                self.elems.insert(i, e);
                true
            }
        }
    }

    /// Merges `other` in and returns the elements that were not yet present
    /// (`None` when nothing changed — the common case, kept allocation-free).
    pub fn union_delta(&mut self, other: &PointsToSet) -> Option<PointsToSet> {
        // Fast path: all of `other` already present.
        if other
            .elems
            .iter()
            .all(|&e| self.elems.binary_search(&e).is_ok())
        {
            return None;
        }
        let mut delta = Vec::new();
        let mut merged = Vec::with_capacity(self.elems.len() + other.elems.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.elems.len() && j < other.elems.len() {
            match self.elems[i].cmp(&other.elems[j]) {
                std::cmp::Ordering::Less => {
                    merged.push(self.elems[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(other.elems[j]);
                    delta.push(other.elems[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push(self.elems[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&self.elems[i..]);
        for &e in &other.elems[j..] {
            merged.push(e);
            delta.push(e);
        }
        self.elems = merged;
        if delta.is_empty() {
            None
        } else {
            Some(PointsToSet { elems: delta })
        }
    }

    /// Iterates the elements in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.elems.iter().copied()
    }

    /// Whether the two sets share at least one element.
    pub fn intersects(&self, other: &PointsToSet) -> bool {
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.elems.len() && j < other.elems.len() {
            match self.elems[i].cmp(&other.elems[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }
}

impl fmt::Debug for PointsToSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.elems.iter()).finish()
    }
}

impl FromIterator<u32> for PointsToSet {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        let mut elems: Vec<u32> = iter.into_iter().collect();
        elems.sort_unstable();
        elems.dedup();
        PointsToSet { elems }
    }
}

impl Extend<u32> for PointsToSet {
    fn extend<T: IntoIterator<Item = u32>>(&mut self, iter: T) {
        for e in iter {
            self.insert(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = PointsToSet::new();
        assert!(s.insert(5));
        assert!(s.insert(1));
        assert!(!s.insert(5));
        assert!(s.contains(1));
        assert!(s.contains(5));
        assert!(!s.contains(3));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn union_delta_reports_exactly_new_elements() {
        let mut a: PointsToSet = [1, 3, 5].into_iter().collect();
        let b: PointsToSet = [2, 3, 6].into_iter().collect();
        let delta = a.union_delta(&b).unwrap();
        assert_eq!(delta.iter().collect::<Vec<_>>(), vec![2, 6]);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2, 3, 5, 6]);
        assert!(a.union_delta(&b).is_none(), "second union is a no-op");
    }

    #[test]
    fn union_delta_empty_other() {
        let mut a: PointsToSet = [1].into_iter().collect();
        assert!(a.union_delta(&PointsToSet::new()).is_none());
    }

    #[test]
    fn intersects() {
        let a: PointsToSet = [1, 4, 9].into_iter().collect();
        let b: PointsToSet = [2, 4].into_iter().collect();
        let c: PointsToSet = [3, 5].into_iter().collect();
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(!a.intersects(&PointsToSet::new()));
    }

    #[test]
    fn from_iterator_sorts_and_dedups() {
        let s: PointsToSet = [5, 1, 5, 3].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 3, 5]);
    }
}
